//! **rsqp** — a reproduction of *"RSQP: Problem-specific Architectural
//! Customization for Accelerated Convex Quadratic Optimization"*
//! (ISCA 2023).
//!
//! This facade crate re-exports the whole workspace. The layering:
//!
//! * [`sparse`] — CSR/CSC/COO matrices and vector kernels,
//! * [`linsys`] — LDLᵀ factorization, KKT assembly, PCG,
//! * [`solver`] — the OSQP-style ADMM solver with pluggable KKT backends,
//! * [`problems`] — the 6-domain, 120-problem benchmark generators,
//! * [`encode`] — sparsity-string encoding and MAC-structure search (`E_p`),
//! * [`cvb`] — compressed-vector-buffer First-Fit compression (`E_c`),
//! * [`arch`] — the cycle-level simulator of the FPGA architecture,
//! * [`core`] — the customization pipeline, η metric, simulated-FPGA
//!   backend, and performance/power models.
//!
//! # Quickstart
//!
//! ```
//! use rsqp::solver::{QpProblem, Settings, Solver, Status};
//! use rsqp::sparse::CsrMatrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = CsrMatrix::from_dense(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
//! let a = CsrMatrix::from_dense(&[vec![1.0, 1.0]]);
//! let qp = QpProblem::new(p, vec![-2.0, -6.0], a, vec![1.0], vec![1.0])?;
//! let mut solver = Solver::new(&qp, Settings::default())?;
//! let result = solver.solve()?;
//! assert_eq!(result.status, Status::Solved);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the accelerator-customization flow and the paper's
//! application scenarios, and `crates/bench` for the per-figure harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rsqp_arch as arch;
pub use rsqp_core as core;
pub use rsqp_cvb as cvb;
pub use rsqp_encode as encode;
pub use rsqp_linsys as linsys;
pub use rsqp_problems as problems;
pub use rsqp_runtime as runtime;
pub use rsqp_solver as solver;
pub use rsqp_sparse as sparse;
