//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the property-testing
//! surface this workspace uses is vendored here: the [`proptest!`] macro,
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range/tuple/`Just`/`select`/`oneof`/`collection::vec` strategies, and
//! the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are reported (with the case
//! index and the test's deterministic seed) but **not shrunk**, and value
//! generation is deterministic per test name, so failures always reproduce.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic value source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Creates a runner seeded from the test name (deterministic).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { state: h | 1 }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn next_index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot pick from an empty set");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRunner;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).new_value(runner)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (self.f)(self.inner.new_value(runner)).new_value(runner)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            let i = runner.next_index(self.options.len());
            self.options[i].new_value(runner)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let wide = ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
                    self.start.wrapping_add((wide % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        let wide = ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
                        return wide as $t;
                    }
                    let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                    let wide = ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
                    lo.wrapping_add((wide % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // u128 needs its own expansion: the i128 span trick overflows.
    impl Strategy for std::ops::Range<u128> {
        type Value = u128;
        fn new_value(&self, runner: &mut TestRunner) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            let wide = ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
            self.start + wide % span
        }
    }

    impl Strategy for std::ops::RangeInclusive<u128> {
        type Value = u128;
        fn new_value(&self, runner: &mut TestRunner) -> u128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            if lo == 0 && hi == u128::MAX {
                return ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
            }
            let span = hi - lo + 1;
            let wide = ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
            lo + wide % span
        }
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start
                        + runner.next_unit_f64() as $t * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + runner.next_unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(runner: &mut TestRunner) -> Self {
            // Any bit pattern: exercises subnormals, infinities, and NaNs,
            // like upstream's full `f64` domain.
            f64::from_bits(runner.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(runner: &mut TestRunner) -> Self {
            f32::from_bits((runner.next_u64() >> 32) as u32)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary_value(runner)
        }
    }

    /// The canonical strategy for `T` (`any::<f64>()`, `any::<bool>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + runner.next_index(self.size.hi - self.size.lo)
            };
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.options[runner.next_index(self.options.len())].clone()
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests. See the crate docs for the supported grammar:
/// an optional `#![proptest_config(...)]` header followed by `#[test] fn`
/// items whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut runner,
                        );
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::deterministic("x");
        let mut b = TestRunner::deterministic("x");
        let mut c = TestRunner::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, f in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u64..10, prop::sample::select(vec![1i32, 2, 3])),
            v in prop::collection::vec(0usize..5, 2..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..=3).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_maps_compose(
            x in prop_oneof![
                (0usize..4).prop_map(|v| v * 2),
                Just(99usize),
            ],
            exact in prop::collection::vec(any::<bool>(), 7),
        ) {
            prop_assert!(x == 99 || x % 2 == 0);
            prop_assert_eq!(exact.len(), 7);
        }
    }
}
