//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the benchmarking
//! surface the workspace's `[[bench]]` targets use is vendored here:
//! [`Criterion`], benchmark groups with `sample_size`/`bench_function`/
//! `bench_with_input`, [`BenchmarkId`], and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple — each benchmark closure is timed
//! over a fixed number of iterations with `std::time::Instant` and the
//! mean per-iteration time is printed. There is no statistical analysis,
//! HTML report, or warm-up phase; the point is that `cargo bench` runs
//! and produces comparable wall-clock numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard hint, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, e.g. `BenchmarkId::new("spmv", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into one display id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Uses the parameter alone as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!("bench {}/{}: {:.3} µs/iter ({} iters)", self.name, id, per_iter * 1e6, b.iters);
        let _ = self.criterion;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collects benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each group, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 10);
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| b.iter(|| k * 2));
        group.finish();
    }
}
