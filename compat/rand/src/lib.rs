//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the generators rely on — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`/`gen_range` — are provided by
//! this vendored shim. The generator is xoshiro256++ seeded through
//! SplitMix64, the same algorithm family `rand 0.8` uses for `SmallRng` on
//! 64-bit targets, so statistical quality matches what the generators were
//! written against. Exact value streams are not guaranteed to match the
//! upstream crate; everything in-repo only depends on determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" generator; aliased to the same engine in this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng(SmallRng);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SmallRng::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = SmallRng::seed_from_u64(7).gen();
        let b: u64 = SmallRng::seed_from_u64(7).gen();
        let c: u64 = SmallRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_is_supported() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
