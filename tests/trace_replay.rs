//! Trace-replay regression tests.
//!
//! A solve with telemetry enabled must produce the **same trace, byte for
//! byte**, every time — across repeated runs and across kernel thread
//! counts (the PR 3 determinism contract extended to the observability
//! layer). The timing-free golden form ([`SolveTrace::golden_json`],
//! which drops wall-clock spans and per-iteration KKT nanoseconds) is
//! committed under `tests/golden/` for one control and one lasso
//! instance; any change to the per-iteration residual sequences, PCG
//! iteration counts, ρ updates, or event stream shows up as a diff
//! against those files.
//!
//! To regenerate after an *intentional* numerical change:
//!
//! ```text
//! RSQP_BLESS=1 cargo test --test trace_replay
//! ```
//!
//! [`SolveTrace::golden_json`]: rsqp::solver::SolveTrace::golden_json

use std::fs;
use std::path::PathBuf;

use rsqp::problems::{generate, Domain};
use rsqp::solver::{CgTolerance, LinSysKind, Settings, Solver};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn traced_settings(threads: usize) -> Settings {
    Settings {
        linsys: LinSysKind::CpuPcg,
        threads,
        cg_tolerance: CgTolerance::Fixed(1e-8),
        trace: true,
        ..Settings::default()
    }
}

fn golden_json(domain: Domain, size: usize, seed: u64, threads: usize) -> String {
    let problem = generate(domain, size, seed);
    let mut solver = Solver::new(&problem, traced_settings(threads)).unwrap();
    let result = solver.solve().unwrap();
    result.trace.expect("trace: true must yield a SolveTrace").golden_json()
}

fn check_replay(domain: Domain, size: usize, seed: u64, file: &str) {
    // Two repetitions at each of two thread counts: all four must agree
    // byte for byte before the committed golden file even enters the
    // picture.
    let runs: Vec<String> =
        [1usize, 1, 4, 4].iter().map(|&t| golden_json(domain, size, seed, t)).collect();
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            run, &runs[0],
            "{file}: trace differs between run 0 (threads=1) and run {i} — \
             the solve is not replay-stable"
        );
    }

    let path = golden_dir().join(file);
    if std::env::var_os("RSQP_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, &runs[0]).unwrap();
        return;
    }
    let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {}: {e}\nbless it with: RSQP_BLESS=1 cargo test --test trace_replay",
            path.display()
        )
    });
    assert_eq!(
        committed, runs[0],
        "{file}: trace diverged from the committed golden file; if the numerical \
         change is intentional, re-bless with RSQP_BLESS=1 cargo test --test trace_replay"
    );
}

#[test]
fn control_trace_replays_byte_stable() {
    check_replay(Domain::Control, 4, 7, "trace_control.json");
}

#[test]
fn lasso_trace_replays_byte_stable() {
    check_replay(Domain::Lasso, 6, 7, "trace_lasso.json");
}
