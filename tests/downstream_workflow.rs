//! The "downstream user" workflow, end to end through the public facade:
//! generate a problem, persist it to disk, reload it, customize an
//! accelerator, emit the hardware bundle, and solve on all three backends.

use rsqp::core::bundle;
use rsqp::core::{customize, FpgaPcgBackend};
use rsqp::problems::io::{load_problem, save_problem};
use rsqp::problems::{generate, Domain};
use rsqp::solver::{CgTolerance, LinSysKind, Settings, Solver, Status};

#[test]
fn save_load_customize_bundle_solve() {
    let qp = generate(Domain::Control, 4, 21);
    let dir = std::env::temp_dir().join("rsqp_downstream_workflow");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Persist and reload.
    save_problem(&qp, dir.join("problem")).expect("save");
    let loaded = load_problem(dir.join("problem")).expect("load");
    assert_eq!(loaded.p(), qp.p());
    assert_eq!(loaded.name(), qp.name());

    // 2. Customize and emit the hardware bundle.
    let custom = customize(&loaded, 16, 4);
    assert!(custom.eta_custom > custom.eta_baseline);
    let files = bundle::write_bundle(&loaded, &custom, dir.join("hw")).expect("bundle");
    assert_eq!(files, 8);
    assert!(bundle::validate_rom(dir.join("hw/pcg.rom")).expect("rom") > 20);

    // 3. Solve on all three backends and compare objectives.
    let settings =
        Settings { eps_abs: 1e-5, eps_rel: 1e-5, max_iter: 20_000, ..Default::default() };
    let mut objectives = Vec::new();
    for kind in [LinSysKind::DirectLdlt, LinSysKind::CpuPcg] {
        let mut s =
            Solver::new(&loaded, Settings { linsys: kind, ..settings.clone() }).expect("setup");
        let r = s.solve().expect("solve");
        assert_eq!(r.status, Status::Solved, "{kind:?}");
        objectives.push(r.objective);
    }
    let cfg = custom.config.clone();
    let mut s = Solver::with_backend(&loaded, settings, &mut |p, a, sigma, rho, st| {
        let eps = match st.cg_tolerance {
            CgTolerance::Fixed(e) => e,
            CgTolerance::Adaptive { start, .. } => start,
        };
        let (b, _h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, st.cg_max_iter);
        Ok(Box::new(b))
    })
    .expect("setup");
    let r = s.solve().expect("solve");
    assert_eq!(r.status, Status::Solved);
    objectives.push(r.objective);

    let scale = 1.0 + objectives[0].abs();
    for w in objectives.windows(2) {
        assert!((w[0] - w[1]).abs() < 5e-3 * scale, "backend objectives disagree: {objectives:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
