//! Cross-crate integration tests exercising the public facade: problem
//! generation → customization → all three solver backends → performance
//! models, i.e. the complete Figure 6 flow.

use rsqp::arch::{codegen, ArchConfig, ResourceModel};
use rsqp::core::perf::fpga::{FpgaPerfModel, FPGA_POWER_W};
use rsqp::core::perf::gpu::GpuPerfModel;
use rsqp::core::perf::power::throughput_per_watt;
use rsqp::core::{customize, FpgaPcgBackend};
use rsqp::problems::{generate, small_suite, Domain};
use rsqp::solver::{CgTolerance, LinSysKind, Settings, Solver, Status};

fn settings(kind: LinSysKind) -> Settings {
    Settings { linsys: kind, eps_abs: 1e-4, eps_rel: 1e-4, max_iter: 20_000, ..Default::default() }
}

#[test]
fn all_backends_solve_the_small_suite() {
    for bp in small_suite(3) {
        let qp = &bp.problem;
        let mut direct = Solver::new(qp, settings(LinSysKind::DirectLdlt)).unwrap();
        let rd = direct.solve().unwrap();
        assert_eq!(rd.status, Status::Solved, "{} (ldlt)", qp.name());

        let mut iterative = Solver::new(qp, settings(LinSysKind::CpuPcg)).unwrap();
        let ri = iterative.solve().unwrap();
        assert_eq!(ri.status, Status::Solved, "{} (cpu-pcg)", qp.name());

        let scale = 1.0 + rd.objective.abs();
        assert!(
            (rd.objective - ri.objective).abs() < 5e-3 * scale,
            "{}: objective mismatch {} vs {}",
            qp.name(),
            rd.objective,
            ri.objective
        );
    }
}

#[test]
fn customization_pipeline_end_to_end() {
    let qp = generate(Domain::Control, 4, 9);
    let r = customize(&qp, 32, 4);
    // η must improve and stay in range.
    assert!(r.eta_custom >= r.eta_baseline);
    assert!(r.eta_custom <= 1.0 + 1e-12);
    // Generated HLS snippet reflects the chosen structures.
    let code = codegen::alignment_switch(r.config.set());
    assert!(code.contains("align_out"));
    // Resource model produces a plausible design point.
    let est = ResourceModel.estimate(r.config.set());
    assert!(est.dsp == 160 && est.fmax_mhz > 50.0 && est.ff > 0);
}

#[test]
fn fpga_solve_and_performance_model_chain() {
    let qp = generate(Domain::Svm, 4, 5);
    let custom = customize(&qp, 16, 4);
    let cfg = custom.config.clone();

    let mut handle = None;
    let mut outer = 0u64;
    let mut solver =
        Solver::with_backend(&qp, settings(LinSysKind::CpuPcg), &mut |p, a, sigma, rho, s| {
            let eps = match s.cg_tolerance {
                CgTolerance::Fixed(e) => e,
                CgTolerance::Adaptive { start, .. } => start,
            };
            let (b, h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
            outer = b.outer_cycles_per_iteration();
            handle = Some(h);
            Ok(Box::new(b))
        })
        .unwrap();
    let r = solver.solve().unwrap();
    assert_eq!(r.status, Status::Solved);

    let stats = handle.unwrap().borrow().stats();
    let t_fpga = FpgaPerfModel::from_config(&custom.config).solve_time(
        stats,
        r.iterations,
        outer,
        qp.num_vars(),
        qp.num_constraints(),
    );
    assert!(t_fpga.as_secs_f64() > 0.0 && t_fpga.as_secs_f64() < 10.0);

    // GPU model and power chain.
    let gpu = GpuPerfModel::rtx3070();
    let t_gpu = gpu.solve_time(
        r.iterations,
        r.backend.cg_iterations,
        qp.num_vars(),
        qp.num_constraints(),
        qp.total_nnz(),
    );
    let eff_fpga = throughput_per_watt(t_fpga, FPGA_POWER_W);
    let eff_gpu = throughput_per_watt(t_gpu, gpu.power_w(qp.total_nnz()));
    assert!(eff_fpga > 0.0 && eff_gpu > 0.0);
    // The paper's headline: the FPGA is more power-efficient on these
    // small/mid problems.
    assert!(eff_fpga > eff_gpu, "fpga {eff_fpga} vs gpu {eff_gpu}");
}

#[test]
fn architecture_reuse_across_instances_of_one_structure() {
    // Two numeric instances of the same (domain, size): same structure,
    // one customization serves both (the §1 amortization argument).
    let qp1 = generate(Domain::Lasso, 5, 1);
    let qp2 = generate(Domain::Lasso, 5, 2);
    assert!(rsqp::sparse::pattern::same_structure(qp1.a(), qp2.a()));
    let custom = customize(&qp1, 16, 4);
    // The architecture built for qp1 must solve qp2.
    let cfg = custom.config.clone();
    let mut solver =
        Solver::with_backend(&qp2, settings(LinSysKind::CpuPcg), &mut |p, a, sigma, rho, s| {
            let eps = match s.cg_tolerance {
                CgTolerance::Fixed(e) => e,
                CgTolerance::Adaptive { start, .. } => start,
            };
            let (b, _h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
            Ok(Box::new(b))
        })
        .unwrap();
    assert_eq!(solver.solve().unwrap().status, Status::Solved);
}

#[test]
fn wider_datapath_reduces_device_cycles() {
    let qp = generate(Domain::Huber, 4, 3);
    let mut cycles = Vec::new();
    for c in [8usize, 32] {
        let cfg = ArchConfig::baseline(c);
        let mut handle = None;
        let mut solver =
            Solver::with_backend(&qp, settings(LinSysKind::CpuPcg), &mut |p, a, sigma, rho, s| {
                let (b, h) =
                    FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), 1e-6, s.cg_max_iter);
                handle = Some(h);
                Ok(Box::new(b))
            })
            .unwrap();
        let r = solver.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        cycles.push(handle.unwrap().borrow().stats().cycles);
    }
    assert!(
        cycles[1] < cycles[0],
        "C=32 ({}) should need fewer cycles than C=8 ({})",
        cycles[1],
        cycles[0]
    );
}
