//! Fill-reducing ordering behaviour on real benchmark KKT matrices.

use rsqp::linsys::{min_degree_ordering, rcm_ordering, KktMatrix, Ldlt, SymmetricPermutation};
use rsqp::problems::{generate, Domain};
use rsqp::solver::{KktOrdering, Settings, Solver, Status};

fn kkt_fill(domain: Domain, size: usize, ordering: KktOrdering) -> usize {
    let qp = generate(domain, size, 1);
    let rho = vec![0.1; qp.num_constraints()];
    let kkt = KktMatrix::assemble(qp.p(), qp.a(), 1e-6, &rho).unwrap();
    let mat = match ordering {
        KktOrdering::Natural => kkt.matrix().clone(),
        KktOrdering::Rcm => {
            SymmetricPermutation::new(kkt.matrix(), rcm_ordering(kkt.matrix()).unwrap())
                .unwrap()
                .matrix()
                .clone()
        }
        KktOrdering::MinDegree => {
            SymmetricPermutation::new(kkt.matrix(), min_degree_ordering(kkt.matrix()).unwrap())
                .unwrap()
                .matrix()
                .clone()
        }
    };
    Ldlt::factor(&mat).expect("KKT is quasi-definite").l_nnz()
}

#[test]
fn min_degree_reduces_fill_on_benchmark_kkt() {
    for (domain, size) in [(Domain::Control, 6), (Domain::Lasso, 8), (Domain::Svm, 8)] {
        let natural = kkt_fill(domain, size, KktOrdering::Natural);
        let md = kkt_fill(domain, size, KktOrdering::MinDegree);
        assert!(md <= natural, "{domain}: min-degree fill {md} vs natural {natural}");
    }
}

#[test]
fn all_orderings_give_identical_solutions() {
    let qp = generate(Domain::Control, 4, 5);
    let mut objectives = Vec::new();
    for ordering in [KktOrdering::Natural, KktOrdering::Rcm, KktOrdering::MinDegree] {
        let settings = Settings { ordering, eps_abs: 1e-6, eps_rel: 1e-6, ..Default::default() };
        let mut s = Solver::new(&qp, settings).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved, "{ordering:?}");
        objectives.push(r.objective);
    }
    for w in objectives.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-6, "objectives differ: {objectives:?}");
    }
}

#[test]
fn rho_update_refactorizes_correctly_under_permutation() {
    // An equality-heavy problem drives adaptive-rho updates through the
    // permuted refactorization path.
    let qp = generate(Domain::Eqqp, 20, 2);
    let settings = Settings {
        ordering: KktOrdering::MinDegree,
        eps_abs: 1e-6,
        eps_rel: 1e-6,
        ..Default::default()
    };
    let mut s = Solver::new(&qp, settings).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!(qp.primal_infeasibility(&r.x) < 1e-4);
}
