//! Cross-backend differential test suite.
//!
//! Every benchmark family is solved at its two smallest suite sizes with
//! four independent KKT paths:
//!
//! 1. sparse LDLᵀ direct factorization,
//! 2. matrix-free CPU PCG, serial,
//! 3. matrix-free CPU PCG on a 4-thread pool,
//! 4. the cycle-level simulated-FPGA machine (`rsqp-arch`).
//!
//! The paths share no linear-algebra code below the solver loop — the
//! direct backend factorizes the full KKT system, the PCG backends iterate
//! on the reduced operator, and the machine executes the PCG kernel
//! instruction by instruction on simulated hardware. Agreement between
//! them is therefore strong evidence that each is computing the right
//! thing: identical termination status, objectives matching to 1e-6, and
//! final residuals within the termination tolerance. The two PCG thread
//! counts must additionally agree **bit for bit** (the PR 3 determinism
//! contract).

use rsqp::arch::ArchConfig;
use rsqp::core::FpgaPcgBackend;
use rsqp::problems::{generate, Domain};
use rsqp::solver::{CgTolerance, LinSysKind, QpProblem, Settings, SolveResult, Solver, Status};

/// Relative objective agreement demanded across backends.
const OBJ_TOL: f64 = 1e-6;
/// Unscaled residual bound every converged solve must meet.
const RES_TOL: f64 = 1e-5;
/// Termination tolerance (tight, so the objectives have converged well
/// past `OBJ_TOL` by the time the solver stops).
const EPS: f64 = 1e-8;

fn settings(kind: LinSysKind, threads: usize) -> Settings {
    Settings {
        linsys: kind,
        threads,
        eps_abs: EPS,
        eps_rel: EPS,
        max_iter: 200_000,
        cg_tolerance: CgTolerance::Fixed(1e-12),
        ..Default::default()
    }
}

fn solve_direct(problem: &QpProblem) -> SolveResult {
    let mut solver = Solver::new(problem, settings(LinSysKind::DirectLdlt, 1)).unwrap();
    solver.solve().unwrap()
}

fn solve_pcg(problem: &QpProblem, threads: usize) -> SolveResult {
    let mut solver = Solver::new(problem, settings(LinSysKind::CpuPcg, threads)).unwrap();
    solver.solve().unwrap()
}

fn solve_machine(problem: &QpProblem) -> SolveResult {
    let cfg = ArchConfig::baseline(16);
    let mut solver = Solver::with_backend(
        problem,
        settings(LinSysKind::CpuPcg, 1),
        &mut |p, a, sigma, rho, s| {
            let eps = match s.cg_tolerance {
                CgTolerance::Fixed(e) => e,
                CgTolerance::Adaptive { start, .. } => start,
            };
            let (b, _handle) =
                FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
            Ok(Box::new(b))
        },
    )
    .unwrap();
    solver.solve().unwrap()
}

fn assert_agreement(problem: &QpProblem, results: &[(&str, SolveResult)]) {
    let name = problem.name();
    for (backend, r) in results {
        assert_eq!(
            r.status,
            Status::Solved,
            "{name} via {backend}: expected Solved, got {:?} after {} iterations",
            r.status,
            r.iterations
        );
        assert!(
            r.prim_res <= RES_TOL && r.dual_res <= RES_TOL,
            "{name} via {backend}: residuals ({:.3e}, {:.3e}) exceed {RES_TOL:.0e}",
            r.prim_res,
            r.dual_res
        );
        assert!(r.objective.is_finite(), "{name} via {backend}: non-finite objective");
    }
    let (ref_backend, reference) = &results[0];
    let scale = 1.0 + reference.objective.abs();
    for (backend, r) in &results[1..] {
        assert_eq!(
            r.status, reference.status,
            "{name}: {backend} and {ref_backend} disagree on termination status"
        );
        assert!(
            (r.objective - reference.objective).abs() <= OBJ_TOL * scale,
            "{name}: objective via {backend} ({:.12e}) differs from {ref_backend} \
             ({:.12e}) by more than {OBJ_TOL:.0e} relative",
            r.objective,
            reference.objective
        );
    }
}

fn differential(domain: Domain) {
    let sizes = domain.size_schedule(20);
    for (index, &size) in sizes[..2].iter().enumerate() {
        let problem = generate(domain, size, 1000 + index as u64);
        let direct = solve_direct(&problem);
        let pcg_t1 = solve_pcg(&problem, 1);
        let pcg_t4 = solve_pcg(&problem, 4);
        let machine = solve_machine(&problem);

        // The two pool sizes run the same reduction tree: bit-identical.
        assert_eq!(pcg_t1.iterations, pcg_t4.iterations, "{}", problem.name());
        for (i, (a, b)) in pcg_t1.x.iter().zip(&pcg_t4.x).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{}: x[{i}] differs between 1 and 4 threads: {a:?} vs {b:?}",
                problem.name()
            );
        }

        assert_agreement(
            &problem,
            &[
                ("direct-ldlt", direct),
                ("cpu-pcg/t1", pcg_t1),
                ("cpu-pcg/t4", pcg_t4),
                ("machine", machine),
            ],
        );
    }
}

#[test]
fn control_backends_agree() {
    differential(Domain::Control);
}

#[test]
fn portfolio_backends_agree() {
    differential(Domain::Portfolio);
}

#[test]
fn lasso_backends_agree() {
    differential(Domain::Lasso);
}

#[test]
fn huber_backends_agree() {
    differential(Domain::Huber);
}

#[test]
fn svm_backends_agree() {
    differential(Domain::Svm);
}

#[test]
fn eqqp_backends_agree() {
    differential(Domain::Eqqp);
}
