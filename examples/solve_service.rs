//! Serving a stream of QPs through the resilient runtime.
//!
//! Submits a batch of benchmark problems to a [`SolveService`] worker
//! pool, plus one job with a deliberately impossible deadline and one job
//! cancelled mid-flight — every job still ends with a definite outcome.
//!
//! ```sh
//! cargo run --release --example solve_service
//! ```

use std::time::Duration;

use rsqp::problems::{generate, Domain};
use rsqp::runtime::{JobBudget, JobSpec, RetryPolicy, ServiceConfig, SolveService};
use rsqp::solver::{Settings, Status};

fn main() {
    let service =
        SolveService::new(ServiceConfig { workers: 2, queue_capacity: 16, ..Default::default() });
    println!("service up: {} workers\n", service.worker_count());

    // A healthy batch across three problem domains.
    let mut handles = Vec::new();
    for (i, domain) in
        [Domain::Control, Domain::Lasso, Domain::Portfolio].into_iter().cycle().take(9).enumerate()
    {
        let spec = JobSpec::new(generate(domain, 2 + i % 3, i as u64))
            .with_budget(JobBudget::unbounded().with_timeout(Duration::from_secs(10)))
            .with_retry(RetryPolicy::default());
        handles.push((format!("{domain:?}#{i}"), service.submit(spec).expect("queue has room")));
    }

    // One job that cannot finish in time…
    let strict = Settings {
        eps_abs: 1e-300,
        eps_rel: 1e-300,
        max_iter: usize::MAX / 2,
        check_termination: 1,
        adaptive_rho: false,
        ..Default::default()
    };
    let hopeless = JobSpec::new(generate(Domain::Control, 3, 99))
        .with_settings(strict.clone())
        .with_budget(JobBudget::unbounded().with_timeout(Duration::from_millis(50)));
    handles.push(("deadline".into(), service.submit(hopeless).expect("room")));

    // …and one cancelled from outside while it runs.
    let endless = JobSpec::new(generate(Domain::Control, 3, 7)).with_settings(strict);
    let handle = service.submit(endless).expect("room");
    let token = handle.cancel_token();
    handles.push(("cancelled".into(), handle));
    std::thread::sleep(Duration::from_millis(30));
    token.cancel();

    for (label, handle) in handles {
        let report = handle.wait();
        match &report.outcome {
            Ok(result) => println!(
                "{label:>12}: {} in {} iterations ({} attempt(s))",
                result.status,
                result.iterations,
                report.attempts_used()
            ),
            Err(e) => println!("{label:>12}: error: {e}"),
        }
        match label.as_str() {
            "deadline" => assert_eq!(report.status(), Some(Status::TimeLimitReached)),
            "cancelled" => assert_eq!(report.status(), Some(Status::Cancelled)),
            _ => assert_eq!(report.status(), Some(Status::Solved)),
        }
    }
    service.shutdown();
    println!("\nall jobs reported definite outcomes; service drained cleanly");
}
