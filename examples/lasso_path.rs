//! Lasso regularization path: sweep λ on one lasso instance by updating the
//! linear cost, warm-starting each solve from the previous one.
//!
//! Run with `cargo run --release --example lasso_path`.

use rsqp::problems::lasso;
use rsqp::solver::{Settings, Solver, Status};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let qp = lasso::generate(n, 3);
    let ms = n * lasso::SAMPLES_PER_FEATURE;
    let t_off = n + ms;
    println!("lasso problem: {} features, {} samples, {} variables", n, ms, qp.num_vars());

    // The generated q has λ on the t-block; recover it.
    let lambda_max = qp.q()[t_off];
    let mut solver =
        Solver::new(&qp, Settings { eps_abs: 1e-5, eps_rel: 1e-5, ..Default::default() })?;

    println!("\n    λ/λ₀     nonzeros   |x|₁        iters");
    for step in 0..8 {
        let scale = 1.0 / (1.6f64).powi(step);
        let mut q = qp.q().to_vec();
        for qi in q.iter_mut().skip(t_off) {
            *qi = lambda_max * scale;
        }
        solver.update_q(q)?;
        let r = solver.solve()?;
        assert_eq!(r.status, Status::Solved);
        let nz = r.x[..n].iter().filter(|v| v.abs() > 1e-4).count();
        let l1: f64 = r.x[..n].iter().map(|v| v.abs()).sum();
        println!("  {scale:>7.4}    {nz:>6}     {l1:>8.5}   {:>6}", r.iterations);
    }
    println!("\nsmaller λ admits more non-zero coefficients, as expected");
    Ok(())
}
