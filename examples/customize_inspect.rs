//! Inspect the customization pipeline on each benchmark domain: sparsity
//! strings (Figure 2(g)), chosen structure sets, E_p/E_c, η, resources, and
//! the generated HLS routing snippet (Figures 4–5).
//!
//! Run with `cargo run --release --example customize_inspect`.

use rsqp::arch::codegen;
use rsqp::core::customize;
use rsqp::encode::SparsityString;
use rsqp::problems::{generate, Domain};

fn main() {
    let c = 16;
    for domain in Domain::all() {
        let size = domain.size_schedule(20)[2];
        let qp = generate(domain, size, 1);
        let r = customize(&qp, c, 4);

        println!("================================================================");
        println!(
            "{} (size knob {size}): n = {}, m = {}, nnz = {}",
            domain,
            qp.num_vars(),
            qp.num_constraints(),
            qp.total_nnz()
        );

        // Figure 2(g): an excerpt of the sparsity string of A.
        let s = SparsityString::encode(qp.a(), c);
        let excerpt: String = s.to_string().chars().take(72).collect();
        println!("  string(A)   : {excerpt}…");

        println!("  structures  : {}", r.notation());
        for m in &r.matrices {
            println!(
                "    {:>2}: cycles {} -> {}  E_p {} -> {}  E_c {:.1} -> {:.2}",
                m.name, m.cycles_baseline, m.cycles_custom, m.ep.0, m.ep.1, m.ec.0, m.ec.1
            );
        }
        println!(
            "  match score : η {:.3} -> {:.3}  (Δη = {:.3})",
            r.eta_baseline,
            r.eta_custom,
            r.eta_improvement()
        );
        println!(
            "  resources   : {} DSP, {} FF, {} LUT, {:.0} MHz (baseline {} FF at {:.0} MHz)",
            r.resources.dsp,
            r.resources.ff,
            r.resources.lut,
            r.resources.fmax_mhz,
            r.baseline_resources.ff,
            r.baseline_resources.fmax_mhz
        );
    }

    // Figure 4/5 analog: dump the generated routing snippet for one domain.
    let qp = generate(Domain::Svm, 6, 1);
    let r = customize(&qp, c, 4);
    println!("================================================================");
    println!("generated align_acc_cnt_switch.h for svm ({}):\n", r.notation());
    println!("{}", codegen::alignment_switch(r.config.set()));
}
