//! Sequential Quadratic Programming on top of the QP solver — the paper's
//! intro motivates general-purpose QP acceleration partly through "the
//! optimization subproblems solved when using the SQP method" (§1).
//!
//! We minimize the chained Rosenbrock function subject to a budget equality
//! and box constraints:
//!
//! ```text
//! minimize   Σ_{i<n-1} 100 (x_{i+1} − x_i²)² + (1 − x_i)²
//! subject to Σ x_i = n/2,   −2 ≤ x_i ≤ 2
//! ```
//!
//! Each SQP iteration solves a convexified QP subproblem
//! `min ½ dᵀHd + gᵀd  s.t.  A(x+d) ∈ [l, u]` with a Gershgorin-regularized
//! Hessian, re-using one `Solver` via `update_matrices`/`update_q` — the
//! same-structure parametric pattern RSQP's architecture reuse relies on.
//!
//! Run with `cargo run --release --example sqp_nonlinear`.

use rsqp::solver::{QpProblem, Settings, Solver, Status};
use rsqp::sparse::{CooMatrix, CsrMatrix};

fn rosenbrock(x: &[f64]) -> f64 {
    let n = x.len();
    (0..n - 1).map(|i| 100.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2)).sum()
}

fn gradient(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut g = vec![0.0; n];
    for i in 0..n - 1 {
        let t = x[i + 1] - x[i] * x[i];
        g[i] += -400.0 * t * x[i] - 2.0 * (1.0 - x[i]);
        g[i + 1] += 200.0 * t;
    }
    g
}

/// Tridiagonal Hessian of the chained Rosenbrock, regularized to be
/// positive definite via a Gershgorin shift.
fn hessian(x: &[f64]) -> CsrMatrix {
    let n = x.len();
    let mut diag = vec![0.0; n];
    let mut off = vec![0.0; n - 1];
    for i in 0..n - 1 {
        diag[i] += -400.0 * (x[i + 1] - 3.0 * x[i] * x[i]) + 2.0;
        diag[i + 1] += 200.0;
        off[i] = -400.0 * x[i];
    }
    // Gershgorin: lambda_min >= min_i (diag_i - |row off-diagonals|).
    let mut shift = 0.0f64;
    for i in 0..n {
        let mut radius = 0.0;
        if i > 0 {
            radius += off[i - 1].abs();
        }
        if i < n - 1 {
            radius += off[i].abs();
        }
        shift = shift.max(radius - diag[i]);
    }
    let shift = shift + 1.0;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, diag[i] + shift);
    }
    for i in 0..n - 1 {
        coo.push(i, i + 1, off[i]);
        coo.push(i + 1, i, off[i]);
    }
    coo.to_csr()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let budget = n as f64 / 2.0;
    let mut x = vec![0.0; n];
    // Start feasible: x_i = budget / n.
    for xi in &mut x {
        *xi = budget / n as f64;
    }

    // Constraint matrix is constant across SQP iterations: budget row + box.
    let mut a = CooMatrix::new(1 + n, n);
    for j in 0..n {
        a.push(0, j, 1.0);
    }
    for j in 0..n {
        a.push(1 + j, j, 1.0);
    }
    let a = a.to_csr();

    // Initial QP subproblem (values refreshed every iteration).
    let qp = QpProblem::new(
        hessian(&x),
        gradient(&x),
        a.clone(),
        bounds_l(&x, budget),
        bounds_u(&x, budget),
    )?;
    let mut solver = Solver::new(
        &qp,
        Settings {
            eps_abs: 1e-7,
            eps_rel: 1e-7,
            max_iter: 20_000,
            polish: true,
            ..Default::default()
        },
    )?;

    println!(" iter     f(x)        |step|      QP iters");
    let mut f_prev = rosenbrock(&x);
    for iter in 0..40 {
        solver.update_matrices(Some(hessian(&x)), None)?;
        solver.update_q(gradient(&x))?;
        solver.update_bounds(bounds_l(&x, budget), bounds_u(&x, budget))?;
        let r = solver.solve()?;
        assert_eq!(r.status, Status::Solved, "QP subproblem failed");
        let d = r.x;
        // Backtracking line search on f along d (constraints are linear, so
        // feasibility is preserved for t in [0, 1]).
        let mut t = 1.0;
        let f0 = rosenbrock(&x);
        let g0: f64 = gradient(&x).iter().zip(&d).map(|(g, d)| g * d).sum();
        let mut accepted = false;
        for _ in 0..30 {
            let xt: Vec<f64> = x.iter().zip(&d).map(|(xi, di)| xi + t * di).collect();
            if rosenbrock(&xt) <= f0 + 1e-4 * t * g0 {
                x = xt;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        let step: f64 = d.iter().map(|v| (t * v).abs()).fold(0.0, f64::max);
        let f = rosenbrock(&x);
        println!("  {iter:>3}  {f:>12.6}  {step:>9.2e}  {:>8}", r.iterations);
        if !accepted || (f_prev - f).abs() < 1e-12 && step < 1e-10 {
            break;
        }
        if step < 1e-10 {
            break;
        }
        f_prev = f;
    }
    let sum: f64 = x.iter().sum();
    println!(
        "\nfinal objective {:.8}, budget constraint: sum = {sum:.6} (target {budget})",
        rosenbrock(&x)
    );
    assert!((sum - budget).abs() < 1e-5, "budget must hold");
    Ok(())
}

fn bounds_l(x: &[f64], budget: f64) -> Vec<f64> {
    // Bounds on d: budget row equality sum(x+d)=budget -> sum d = budget-sum x;
    // box -2 <= x+d <= 2 -> -2-x <= d.
    let sum: f64 = x.iter().sum();
    let mut l = vec![budget - sum];
    l.extend(x.iter().map(|xi| -2.0 - xi));
    l
}

fn bounds_u(x: &[f64], budget: f64) -> Vec<f64> {
    let sum: f64 = x.iter().sum();
    let mut u = vec![budget - sum];
    u.extend(x.iter().map(|xi| 2.0 - xi));
    u
}
