//! Portfolio backtesting: the paper's motivating reuse scenario (§1).
//!
//! "Up to 120 000 QP problems with the same sparsity structure would need
//! to be solved with different sets of trading-strategy-dependent
//! parameters" — one customized architecture serves all of them. Here we
//! customize once, then re-solve the same structure with fresh expected
//! returns, accumulating simulated-FPGA cycles to show amortization.
//!
//! Run with `cargo run --release --example portfolio_backtest`.

use rsqp::core::perf::fpga::{FpgaPerfModel, FPGA_POWER_W};
use rsqp::core::perf::power::throughput_per_watt;
use rsqp::core::{customize, FpgaPcgBackend};
use rsqp::problems::portfolio;
use rsqp::solver::{CgTolerance, Settings, Solver, Status};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let factors = 2;
    let qp = portfolio::generate(factors, 1);
    println!(
        "portfolio problem: {} assets + {} factor variables, {} constraints",
        100 * factors,
        factors,
        qp.num_constraints()
    );

    // Customize the architecture once for this structure.
    let custom = customize(&qp, 32, 4);
    println!(
        "customized architecture {}: η {:.3} → {:.3}, est. {:.0} MHz, {} FF / {} LUT",
        custom.notation(),
        custom.eta_baseline,
        custom.eta_custom,
        custom.resources.fmax_mhz,
        custom.resources.ff,
        custom.resources.lut
    );

    let cfg = custom.config.clone();
    let mut handle = None;
    let mut outer = 0;
    let mut solver = Solver::with_backend(&qp, Settings::default(), &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            CgTolerance::Fixed(e) => e,
            CgTolerance::Adaptive { start, .. } => start,
        };
        let (b, h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
        outer = b.outer_cycles_per_iteration();
        handle = Some(h);
        Ok(Box::new(b))
    })?;
    let handle = handle.expect("backend built");
    let model = FpgaPerfModel::from_config(&custom.config);

    // Backtest: re-solve with fresh μ every "day" (warm-started).
    let days = 8;
    let mut total_time = 0.0;
    println!("\n  day   status    iters    device µs    best asset");
    for day in 0..days {
        let q = portfolio::resample_returns(&qp, 1000 + day as u64);
        solver.update_q(q)?;
        let before = handle.borrow().stats();
        let r = solver.solve()?;
        assert_eq!(r.status, Status::Solved);
        let after = handle.borrow().stats();
        let delta =
            rsqp::arch::RunStats { cycles: after.cycles - before.cycles, ..Default::default() };
        let t = model.solve_time(delta, r.iterations, outer, qp.num_vars(), qp.num_constraints());
        total_time += t.as_secs_f64();
        let best =
            r.x.iter()
                .take(100 * factors)
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
                .map(|(i, _)| i)
                .unwrap_or(0);
        println!(
            "  {day:>3}   {}    {:>5}    {:>9.1}    #{best}",
            r.status,
            r.iterations,
            t.as_secs_f64() * 1e6
        );
    }
    let per_solve = total_time / days as f64;
    println!(
        "\nmean simulated solve time {:.1} µs -> {:.1} instances/s/W at {} W board power",
        per_solve * 1e6,
        throughput_per_watt(std::time::Duration::from_secs_f64(per_solve), FPGA_POWER_W),
        FPGA_POWER_W
    );
    println!(
        "a 2-to-5-hour CAD run amortizes after ~{} solves at this rate (paper §1)",
        (3.5 * 3600.0 / per_solve).round()
    );
    Ok(())
}
