//! Accelerator trace: solve one benchmark problem on the simulated FPGA and
//! print where the cycles went (per instruction class), what the HBM
//! channel model says, and the hardware-generation bundle (§4.5).
//!
//! Run with `cargo run --release --example fpga_trace`.

use rsqp::arch::hbm::HbmModel;
use rsqp::arch::{rom, ResourceModel};
use rsqp::core::bundle;
use rsqp::core::{customize, FpgaPcgBackend};
use rsqp::problems::{generate, Domain};
use rsqp::solver::{CgTolerance, Settings, Solver, Status};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qp = generate(Domain::Huber, 6, 3);
    println!(
        "problem {}: n = {}, m = {}, nnz = {}",
        qp.name(),
        qp.num_vars(),
        qp.num_constraints(),
        qp.total_nnz()
    );

    // Customize and report the architecture.
    let custom = customize(&qp, 32, 4);
    let est = ResourceModel.estimate(custom.config.set());
    println!(
        "\narchitecture {}: {:.0} MHz, {} DSP / {} FF / {} LUT",
        custom.notation(),
        est.fmax_mhz,
        est.dsp,
        est.ff,
        est.lut
    );
    println!("match score η: {:.3} -> {:.3}", custom.eta_baseline, custom.eta_custom);

    // Check the HBM stream budget.
    let hbm = HbmModel::u50();
    let at = qp.a().transpose();
    println!(
        "HBM: needs {} of {} channels at this f_max; imbalance {:.3}; fits: {}",
        hbm.required_channels(custom.config.c(), est.fmax_mhz * 1e6),
        hbm.channels,
        HbmModel::imbalance(&hbm.partition(&[qp.p(), qp.a(), &at])),
        hbm.fits(&[qp.p(), qp.a(), &at]),
    );

    // Solve on the simulated machine.
    let cfg = custom.config.clone();
    let mut handle = None;
    let mut solver = Solver::with_backend(&qp, Settings::default(), &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            CgTolerance::Fixed(e) => e,
            CgTolerance::Adaptive { start, .. } => start,
        };
        let (b, h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
        handle = Some(h);
        Ok(Box::new(b))
    })?;
    let r = solver.solve()?;
    assert_eq!(r.status, Status::Solved);
    let stats = handle.expect("backend built").borrow().stats();

    println!(
        "\nsolved in {} ADMM iterations, {} CG iterations",
        r.iterations, r.backend.cg_iterations
    );
    println!(
        "device cycles: {} across {} instructions, {} loop trips",
        stats.cycles, stats.instructions, stats.loop_trips
    );
    let b = stats.breakdown;
    let total = b.total() as f64 / 100.0;
    println!("  spmv        {:>12}  ({:>5.1} %)", b.spmv, b.spmv as f64 / total);
    println!("  vector      {:>12}  ({:>5.1} %)", b.vector, b.vector as f64 / total);
    println!("  duplication {:>12}  ({:>5.1} %)", b.duplication, b.duplication as f64 / total);
    println!("  scalar      {:>12}  ({:>5.1} %)", b.scalar, b.scalar as f64 / total);
    println!("  control     {:>12}  ({:>5.1} %)", b.control, b.control as f64 / total);
    println!("  transfer    {:>12}  ({:>5.1} %)", b.transfer, b.transfer as f64 / total);

    // Emit the hardware-generation bundle.
    let dir = std::env::temp_dir().join("rsqp_fpga_trace_bundle");
    let files = bundle::write_bundle(&qp, &custom, &dir)?;
    let rom_len = bundle::validate_rom(dir.join("pcg.rom"))?;
    println!(
        "\nhardware bundle: {files} files in {} (PCG kernel: {} instructions, {} B of ROM)",
        dir.display(),
        rom_len,
        rom_len * rom::INSTR_BYTES
    );
    Ok(())
}
