//! Fault-tolerant solving: input validation, fault injection on the
//! cycle-level machine, and the numerical guard's recovery ladder.
//!
//! Three scenarios:
//! 1. malformed problem data is rejected at construction with typed errors,
//! 2. a clean solve on the simulated FPGA backend runs without guard activity,
//! 3. the same solve with every MAC output bit-flipped is detected and
//!    recovered by degrading from the on-device PCG to the direct LDLᵀ
//!    backend (or diagnosed as a numerical error — never a bogus `Solved`).
//!
//! Run with: `cargo run --release --example fault_recovery`

use rsqp::arch::{ArchConfig, FaultConfig};
use rsqp::core::FpgaPcgBackend;
use rsqp::problems::{generate, Domain};
use rsqp::solver::{CgTolerance, QpProblem, Settings, Solver};
use rsqp::sparse::CsrMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Validation at the boundary -----------------------------------
    println!("== 1. problem validation ==");
    let p = CsrMatrix::identity(2);
    let a = CsrMatrix::identity(2);
    let bad_q =
        QpProblem::new(p.clone(), vec![1.0, f64::NAN], a.clone(), vec![0.0; 2], vec![1.0; 2]);
    println!("NaN in q     -> {}", bad_q.unwrap_err());
    let bad_bounds = QpProblem::new(p, vec![0.0; 2], a, vec![2.0, 0.0], vec![1.0; 2]);
    println!("l[0] > u[0]  -> {}", bad_bounds.unwrap_err());

    // --- 2. Clean solve on the simulated FPGA ----------------------------
    let qp = generate(Domain::Control, 3, 11);
    println!("\n== 2. clean solve (control benchmark, {} vars) ==", qp.num_vars());
    let (clean, faults, backend) = solve_on_fpga(&qp, FaultConfig::new(7))?;
    println!(
        "status {:?} after {} iters, machine faults {}, final backend {}",
        clean.status, clean.iterations, faults, backend
    );
    println!("guard intervened: {}", clean.guard.intervened());

    // --- 3. Heavy fault injection ----------------------------------------
    println!("\n== 3. every MAC output corrupted (seed 2024) ==");
    let fault = FaultConfig::new(2024).with_mac_output_flips(1.0);
    let (hit, faults, backend) = solve_on_fpga(&qp, fault)?;
    println!("status {:?} after {} iters, machine faults {}", hit.status, hit.iterations, faults);
    println!(
        "guard report: {} faults detected, {} iterate resets, {} CG tightenings, {} backend fallbacks",
        hit.guard.faults_detected,
        hit.guard.iterate_resets,
        hit.guard.cg_tightenings,
        hit.guard.backend_fallbacks
    );
    println!("final backend: {backend}");
    assert!(hit.x.iter().all(|v| v.is_finite()), "solution must be finite whatever the outcome");
    Ok(())
}

/// Solves `qp` through the simulated-FPGA PCG backend with `fault` armed,
/// returning the result, the machine's fault count, and the name of the
/// backend that produced the final iterate.
fn solve_on_fpga(
    qp: &QpProblem,
    fault: FaultConfig,
) -> Result<(rsqp::solver::SolveResult, u64, String), Box<dyn std::error::Error>> {
    let config = ArchConfig::baseline(16).with_fault_injection(Some(fault));
    let settings = Settings { eps_abs: 1e-4, eps_rel: 1e-4, ..Default::default() };
    let mut machine = None;
    let mut solver = Solver::with_backend(qp, settings, &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            CgTolerance::Fixed(e) => e,
            CgTolerance::Adaptive { start, .. } => start,
        };
        let (backend, handle) =
            FpgaPcgBackend::new(p, a, sigma, rho, config.clone(), eps, s.cg_max_iter);
        machine = Some(handle);
        Ok(Box::new(backend))
    })?;
    let result = solver.solve()?;
    let faults = machine.expect("factory ran").borrow().stats().faults;
    Ok((result, faults, solver.backend_name().to_string()))
}
