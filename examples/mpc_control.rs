//! Model-predictive control: the receding-horizon loop the paper's control
//! benchmark comes from.
//!
//! A random linear system is regulated to the origin by re-solving the same
//! QP *structure* at every time step with a new initial state — exactly the
//! parametric-reuse pattern that amortizes RSQP's hardware generation.
//!
//! Run with `cargo run --release --example mpc_control`.

use rsqp::problems::control;
use rsqp::solver::{Settings, Solver, Status};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nx = 4;
    let qp = control::generate(nx, 7);
    println!(
        "MPC problem: {} variables, {} constraints, horizon {}",
        qp.num_vars(),
        qp.num_constraints(),
        control::HORIZON
    );

    let mut solver =
        Solver::new(&qp, Settings { eps_abs: 1e-5, eps_rel: 1e-5, ..Default::default() })?;

    // The first nx constraint rows pin x_0 = x_init; simulate a closed loop
    // by updating those bounds with the "measured" state each step.
    let mut state: Vec<f64> = (0..nx).map(|i| 0.8 - 0.3 * i as f64).collect();
    let mut total_iters = 0;
    println!("\n step   |x|_inf      solver iters (warm-started)");
    for step in 0..10 {
        let mut l = qp.l().to_vec();
        let mut u = qp.u().to_vec();
        l[..nx].copy_from_slice(&state);
        u[..nx].copy_from_slice(&state);
        solver.update_bounds(l, u)?;
        let r = solver.solve()?;
        assert_eq!(r.status, Status::Solved, "MPC step {step} failed");
        total_iters += r.iterations;

        // Apply the first predicted state transition: the optimizer's x_1.
        state = r.x[nx..2 * nx].to_vec();
        let norm = state.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        println!("  {step:>3}   {norm:>8.5}    {:>5}", r.iterations);
    }
    println!(
        "\nstate regulated toward origin; {total_iters} total ADMM iterations across 10 steps"
    );
    Ok(())
}
