//! Quickstart: solve one QP on all three backends (direct LDLᵀ, CPU PCG,
//! simulated FPGA) and print what the paper's Figure 1 pipeline produces
//! for it.
//!
//! Run with `cargo run --release --example quickstart`.

use rsqp::core::perf::fpga::FpgaPerfModel;
use rsqp::core::{customize, FpgaPcgBackend};
use rsqp::solver::{CgTolerance, LinSysKind, QpProblem, Settings, Solver};
use rsqp::sparse::CsrMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small portfolio-style QP:
    //   minimize (1/2) xᵀPx − μᵀx   s.t.  1ᵀx = 1, 0 ≤ x ≤ 0.6
    let p = CsrMatrix::from_dense(&[
        vec![0.20, 0.02, 0.00],
        vec![0.02, 0.10, 0.03],
        vec![0.00, 0.03, 0.15],
    ]);
    let q = vec![-0.10, -0.08, -0.12];
    let a = CsrMatrix::from_dense(&[
        vec![1.0, 1.0, 1.0],
        vec![1.0, 0.0, 0.0],
        vec![0.0, 1.0, 0.0],
        vec![0.0, 0.0, 1.0],
    ]);
    let l = vec![1.0, 0.0, 0.0, 0.0];
    let u = vec![1.0, 0.6, 0.6, 0.6];
    let qp = QpProblem::new(p, q, a, l, u)?.with_name("quickstart");

    println!(
        "problem: n = {}, m = {}, nnz(P)+nnz(A) = {}",
        qp.num_vars(),
        qp.num_constraints(),
        qp.total_nnz()
    );

    // 1. Direct LDLT (OSQP CPU default).
    let mut direct =
        Solver::new(&qp, Settings { linsys: LinSysKind::DirectLdlt, ..Default::default() })?;
    let rd = direct.solve()?;
    println!(
        "\n[ldlt]     {} in {} iters, objective {:.6}",
        rd.status, rd.iterations, rd.objective
    );
    println!(
        "           x = {:?}",
        rd.x.iter().map(|v| (v * 1e4).round() / 1e4).collect::<Vec<_>>()
    );

    // 2. CPU PCG (the algorithm cuOSQP/RSQP run).
    let mut pcg = Solver::new(&qp, Settings { linsys: LinSysKind::CpuPcg, ..Default::default() })?;
    let rp = pcg.solve()?;
    println!(
        "[cpu-pcg]  {} in {} iters, {} total CG iterations",
        rp.status, rp.iterations, rp.backend.cg_iterations
    );

    // 3. Simulated FPGA with a problem-customized architecture.
    let custom = customize(&qp, 16, 4);
    println!(
        "\n[customize] structure set {}  (baseline η = {:.3} → customized η = {:.3})",
        custom.notation(),
        custom.eta_baseline,
        custom.eta_custom
    );
    let cfg = custom.config.clone();
    let mut handle = None;
    let mut outer = 0;
    let mut fpga = Solver::with_backend(&qp, Settings::default(), &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            CgTolerance::Fixed(e) => e,
            CgTolerance::Adaptive { start, .. } => start,
        };
        let (b, h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
        outer = b.outer_cycles_per_iteration();
        handle = Some(h);
        Ok(Box::new(b))
    })?;
    let rf = fpga.solve()?;
    let stats = handle.expect("backend was built").borrow().stats();
    let model = FpgaPerfModel::from_config(&custom.config);
    let t = model.solve_time(stats, rf.iterations, outer, qp.num_vars(), qp.num_constraints());
    println!(
        "[fpga-sim] {} in {} iters, {} device cycles -> {:.1} µs at {:.0} MHz",
        rf.status,
        rf.iterations,
        stats.cycles,
        t.as_secs_f64() * 1e6,
        model.fmax_hz / 1e6
    );
    println!("           objective {:.6} (vs ldlt {:.6})", rf.objective, rd.objective);
    Ok(())
}
