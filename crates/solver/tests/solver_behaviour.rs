//! End-to-end behaviour tests for the ADMM solver: optimality conditions,
//! backend agreement, infeasibility detection, warm starting, and
//! parametric updates.

use rsqp_solver::{CgTolerance, LinSysKind, QpProblem, Settings, Solver, Status};
use rsqp_sparse::CsrMatrix;

const INF: f64 = f64::INFINITY;

fn box_qp() -> QpProblem {
    // minimize (1/2)||x - c||^2 over the box [0, 1]^3, c = (2, 0.5, -1)
    // -> solution (1, 0.5, 0)
    QpProblem::new(
        CsrMatrix::identity(3),
        vec![-2.0, -0.5, 1.0],
        CsrMatrix::identity(3),
        vec![0.0, 0.0, 0.0],
        vec![1.0, 1.0, 1.0],
    )
    .unwrap()
}

fn equality_qp() -> QpProblem {
    // minimize (1/2)(x0^2 + x1^2) s.t. x0 + x1 = 1 -> x = (0.5, 0.5)
    QpProblem::new(
        CsrMatrix::identity(2),
        vec![0.0, 0.0],
        CsrMatrix::from_dense(&[vec![1.0, 1.0]]),
        vec![1.0],
        vec![1.0],
    )
    .unwrap()
}

fn tight_settings(kind: LinSysKind) -> Settings {
    Settings { eps_abs: 1e-6, eps_rel: 1e-6, max_iter: 20_000, linsys: kind, ..Default::default() }
}

#[test]
fn box_qp_solution_is_projection() {
    let mut s = Solver::new(&box_qp(), tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    let want = [1.0, 0.5, 0.0];
    for (got, want) in r.x.iter().zip(&want) {
        assert!((got - want).abs() < 1e-4, "{got} vs {want}");
    }
}

#[test]
fn equality_qp_exact_solution() {
    for kind in [LinSysKind::DirectLdlt, LinSysKind::CpuPcg] {
        let mut s = Solver::new(&equality_qp(), tight_settings(kind)).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved, "backend {kind:?}");
        assert!((r.x[0] - 0.5).abs() < 1e-4);
        assert!((r.x[1] - 0.5).abs() < 1e-4);
        assert!((r.objective - 0.25).abs() < 1e-3);
    }
}

#[test]
fn backends_agree_on_random_qp() {
    // Deterministic pseudo-random strictly convex QP.
    let n = 20;
    let m = 30;
    let mut p_t = Vec::new();
    for i in 0..n {
        p_t.push((i, i, 2.0 + (i % 5) as f64));
        if i + 1 < n {
            p_t.push((i, i + 1, 0.4));
            p_t.push((i + 1, i, 0.4));
        }
    }
    let p = CsrMatrix::from_triplets(n, n, p_t);
    let q: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
    let mut a_t = Vec::new();
    for i in 0..m {
        a_t.push((i, i % n, 1.0));
        a_t.push((i, (i * 3 + 1) % n, -0.5));
    }
    let a = CsrMatrix::from_triplets(m, n, a_t);
    let l: Vec<f64> = (0..m).map(|i| -1.0 - (i % 3) as f64).collect();
    let u: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
    let problem = QpProblem::new(p, q, a, l, u).unwrap();

    let mut direct = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let rd = direct.solve().unwrap();
    let mut indirect = Solver::new(&problem, tight_settings(LinSysKind::CpuPcg)).unwrap();
    let ri = indirect.solve().unwrap();
    assert_eq!(rd.status, Status::Solved);
    assert_eq!(ri.status, Status::Solved);
    assert!(
        (rd.objective - ri.objective).abs() < 1e-3 * (1.0 + rd.objective.abs()),
        "objectives {} vs {}",
        rd.objective,
        ri.objective
    );
    for (a, b) in rd.x.iter().zip(&ri.x) {
        assert!((a - b).abs() < 1e-2, "{a} vs {b}");
    }
}

#[test]
fn kkt_conditions_hold_at_solution() {
    let problem = box_qp();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let r = s.solve().unwrap();
    // Stationarity: Px + q + Aᵀy ≈ 0.
    let mut grad = vec![0.0; 3];
    problem.p().spmv(&r.x, &mut grad).unwrap();
    let mut aty = vec![0.0; 3];
    problem.a().spmv_transpose(&r.y, &mut aty).unwrap();
    for i in 0..3 {
        let g = grad[i] + problem.q()[i] + aty[i];
        assert!(g.abs() < 1e-4, "stationarity violated: {g}");
    }
    // Primal feasibility.
    assert!(problem.primal_infeasibility(&r.x) < 1e-4);
    // Complementary slackness via sign conditions on y.
    for i in 0..3 {
        if r.z[i] < problem.u()[i] - 1e-3 {
            assert!(r.y[i] < 1e-3, "y[{i}] should be <= 0 at inactive upper bound");
        }
        if r.z[i] > problem.l()[i] + 1e-3 {
            assert!(r.y[i] > -1e-3, "y[{i}] should be >= 0 at inactive lower bound");
        }
    }
}

#[test]
fn detects_primal_infeasibility() {
    // x = 0 and x = 1 simultaneously.
    let problem = QpProblem::new(
        CsrMatrix::identity(1),
        vec![0.0],
        CsrMatrix::from_dense(&[vec![1.0], vec![1.0]]),
        vec![0.0, 1.0],
        vec![0.0, 1.0],
    )
    .unwrap();
    let mut s = Solver::new(&problem, Settings::default()).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::PrimalInfeasible);
}

#[test]
fn detects_dual_infeasibility() {
    // minimize -x with x >= 0: unbounded below.
    let problem = QpProblem::new(
        CsrMatrix::zeros(1, 1),
        vec![-1.0],
        CsrMatrix::identity(1),
        vec![0.0],
        vec![INF],
    )
    .unwrap();
    let mut s = Solver::new(&problem, Settings::default()).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::DualInfeasible);
}

#[test]
fn unconstrained_problem_solves() {
    // minimize (1/2)x'Px + q'x with no constraints: x = -P^{-1} q.
    let problem = QpProblem::new(
        CsrMatrix::from_diag(&[2.0, 4.0]),
        vec![-2.0, -4.0],
        CsrMatrix::zeros(0, 2),
        vec![],
        vec![],
    )
    .unwrap();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!((r.x[0] - 1.0).abs() < 1e-4);
    assert!((r.x[1] - 1.0).abs() < 1e-4);
}

#[test]
fn warm_start_reduces_iterations() {
    let problem = equality_qp();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let r1 = s.solve().unwrap();
    assert_eq!(r1.status, Status::Solved);
    // Re-solve warm-started at the solution.
    s.warm_start(&r1.x, &r1.y).unwrap();
    let r2 = s.solve().unwrap();
    assert_eq!(r2.status, Status::Solved);
    assert!(r2.iterations <= r1.iterations, "warm {} vs cold {}", r2.iterations, r1.iterations);
}

#[test]
fn parametric_bound_update_resolves() {
    let problem = box_qp();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let r1 = s.solve().unwrap();
    assert!((r1.x[0] - 1.0).abs() < 1e-3);
    // Widen the box: now the unconstrained minimizer (2, 0.5, -1) is inside.
    s.update_bounds(vec![-5.0; 3], vec![5.0; 3]).unwrap();
    let r2 = s.solve().unwrap();
    assert_eq!(r2.status, Status::Solved);
    assert!((r2.x[0] - 2.0).abs() < 1e-3, "{}", r2.x[0]);
    assert!((r2.x[2] + 1.0).abs() < 1e-3);
}

#[test]
fn parametric_q_update_resolves() {
    let problem = box_qp();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    s.solve().unwrap();
    s.update_q(vec![5.0, 5.0, 5.0]).unwrap(); // pushes everything to 0
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    for v in &r.x {
        assert!(v.abs() < 1e-3);
    }
}

#[test]
fn scaling_off_still_solves() {
    let settings =
        Settings { scaling_iters: 0, eps_abs: 1e-5, eps_rel: 1e-5, ..Default::default() };
    let mut s = Solver::new(&equality_qp(), settings).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!((r.x[0] - 0.5).abs() < 1e-3);
}

#[test]
fn fixed_cg_tolerance_solves() {
    let settings = Settings {
        linsys: LinSysKind::CpuPcg,
        cg_tolerance: CgTolerance::Fixed(1e-10),
        eps_abs: 1e-6,
        eps_rel: 1e-6,
        ..Default::default()
    };
    let mut s = Solver::new(&box_qp(), settings).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!(r.backend.cg_iterations > 0);
}

#[test]
fn timing_breakdown_is_consistent() {
    let mut s = Solver::new(&box_qp(), Settings::default()).unwrap();
    let r = s.solve().unwrap();
    assert!(r.timings.kkt_solve <= r.timings.solve);
    let f = r.timings.kkt_fraction();
    assert!((0.0..=1.0).contains(&f));
}

#[test]
fn max_iterations_status_when_cap_hit() {
    let settings = Settings {
        max_iter: 2,
        check_termination: 1,
        eps_abs: 1e-14,
        eps_rel: 1e-14,
        ..Default::default()
    };
    let mut s = Solver::new(&box_qp(), settings).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::MaxIterationsReached);
    assert_eq!(r.iterations, 2);
    assert!(r.prim_res.is_finite());
}

#[test]
fn ill_scaled_problem_benefits_from_ruiz() {
    // Wildly different magnitudes across variables.
    let p = CsrMatrix::from_diag(&[1e6, 1e-4]);
    let q = vec![-1e6, 1e-4];
    let a = CsrMatrix::from_dense(&[vec![1e3, 0.0], vec![0.0, 1e-3]]);
    let problem = QpProblem::new(p, q, a, vec![-1e3, -1e-3], vec![1e3, 1e-3]).unwrap();
    let mut s = Solver::new(
        &problem,
        Settings { eps_abs: 1e-5, eps_rel: 1e-5, max_iter: 10_000, ..Default::default() },
    )
    .unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    // Optimum of (1/2)*1e6 x0^2 - 1e6 x0 is x0 = 1 (inside |x0| <= 1000 via
    // constraint row 0 scaled by 1e3 -> |1e3*x0| <= 1e3).
    assert!((r.x[0] - 1.0).abs() < 1e-2, "{}", r.x[0]);
}

#[test]
fn time_limit_is_respected() {
    let settings = Settings {
        eps_abs: 1e-14,
        eps_rel: 1e-14,
        max_iter: 100_000_000,
        check_termination: 1,
        time_limit: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    let mut s = Solver::new(&box_qp(), settings).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::TimeLimitReached);
    assert_eq!(r.iterations, 0, "an already-expired limit fires before any iteration runs");
}

#[test]
fn matrix_value_update_resolves_correctly() {
    // minimize (1/2) x'P x - 1'x over [0,10]^2 with diagonal P: solution
    // x_i = 1/P_ii. Update P values (same structure) and re-solve.
    let p1 = CsrMatrix::from_diag(&[1.0, 2.0]);
    let problem = QpProblem::new(
        p1,
        vec![-1.0, -1.0],
        CsrMatrix::identity(2),
        vec![0.0, 0.0],
        vec![10.0, 10.0],
    )
    .unwrap();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    let r1 = s.solve().unwrap();
    assert!((r1.x[0] - 1.0).abs() < 1e-4);
    assert!((r1.x[1] - 0.5).abs() < 1e-4);

    s.update_matrices(Some(CsrMatrix::from_diag(&[4.0, 8.0])), None).unwrap();
    let r2 = s.solve().unwrap();
    assert_eq!(r2.status, Status::Solved);
    assert!((r2.x[0] - 0.25).abs() < 1e-4, "{}", r2.x[0]);
    assert!((r2.x[1] - 0.125).abs() < 1e-4);
}

#[test]
fn matrix_update_rejects_structure_changes() {
    let problem = QpProblem::new(
        CsrMatrix::from_diag(&[1.0, 2.0]),
        vec![0.0, 0.0],
        CsrMatrix::identity(2),
        vec![0.0, 0.0],
        vec![1.0, 1.0],
    )
    .unwrap();
    let mut s = Solver::new(&problem, Settings::default()).unwrap();
    // Different structure: off-diagonal entry appears.
    let bad = CsrMatrix::from_dense(&[vec![1.0, 0.5], vec![0.5, 2.0]]);
    assert!(s.update_matrices(Some(bad), None).is_err());
    // Different A structure.
    let bad_a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
    assert!(s.update_matrices(None, Some(bad_a)).is_err());
}

#[test]
fn matrix_update_works_on_pcg_backend_too() {
    let problem = QpProblem::new(
        CsrMatrix::from_diag(&[1.0, 2.0]),
        vec![-1.0, -1.0],
        CsrMatrix::identity(2),
        vec![0.0, 0.0],
        vec![10.0, 10.0],
    )
    .unwrap();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::CpuPcg)).unwrap();
    s.solve().unwrap();
    s.update_matrices(Some(CsrMatrix::from_diag(&[2.0, 4.0])), None).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!((r.x[0] - 0.5).abs() < 1e-4);
}

#[test]
fn solve_result_display_summarizes() {
    let mut s = Solver::new(&box_qp(), Settings { polish: true, ..Default::default() }).unwrap();
    let r = s.solve().unwrap();
    let text = r.to_string();
    assert!(text.contains("status: solved"));
    assert!(text.contains("iters:"));
    assert!(text.contains("polished"));
}

#[test]
fn manual_rho_update_changes_backend_and_still_solves() {
    let problem = box_qp();
    let mut s = Solver::new(&problem, tight_settings(LinSysKind::DirectLdlt)).unwrap();
    s.update_rho(10.0).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!((r.x[0] - 1.0).abs() < 1e-4);
    assert!(s.update_rho(0.0).is_err());
    assert!(s.update_rho(-1.0).is_err());
}
