//! Asserts the ADMM steady state is allocation-free: once a solver is set
//! up, extra iterations must not touch the heap.
//!
//! Strategy: a counting global allocator tallies every allocation. Two
//! identical cold solvers run the same problem with a tiny tolerance (so
//! neither converges), one capped at a short iteration count and one at a
//! much longer count. If per-iteration work allocated anything, the longer
//! run would count more allocations; equality proves the steady state runs
//! entirely out of the pre-sized workspaces.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rsqp_solver::{CgTolerance, LinSysKind, QpProblem, Settings, Solver, Status};
use rsqp_sparse::CsrMatrix;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// side effect with no aliasing or layout implications.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// A small strictly convex QP with box constraints; easy to iterate on
/// forever without converging at an unreachable tolerance.
fn problem() -> QpProblem {
    let n = 24;
    let mut p_rows = vec![vec![0.0; n]; n];
    for (i, row) in p_rows.iter_mut().enumerate() {
        row[i] = 2.0 + (i % 5) as f64;
        if i + 1 < n {
            row[i + 1] = -0.5;
        }
        if i > 0 {
            row[i - 1] = -0.5;
        }
    }
    let p = CsrMatrix::from_dense(&p_rows);
    let mut a_rows = vec![vec![0.0; n]; n + 2];
    for i in 0..n {
        a_rows[i][i] = 1.0;
    }
    for j in 0..n {
        a_rows[n][j] = 1.0;
        a_rows[n + 1][j] = if j % 2 == 0 { 1.0 } else { -1.0 };
    }
    let a = CsrMatrix::from_dense(&a_rows);
    let q: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
    let l = vec![-1.0; n + 2];
    let u = vec![1.0; n + 2];
    QpProblem::new(p, q, a, l, u).unwrap()
}

fn settings(max_iter: usize) -> Settings {
    Settings {
        linsys: LinSysKind::CpuPcg,
        threads: 1,
        max_iter,
        // Unreachable tolerance: every run ends at MaxIterationsReached, so
        // both solvers execute exactly `max_iter` full iterations.
        eps_abs: 1e-300,
        eps_rel: 1e-300,
        cg_tolerance: CgTolerance::Fixed(1e-10),
        polish: false,
        // Keep ρ adaptation on: its rebuild path must also be in-place.
        adaptive_rho: true,
        ..Settings::default()
    }
}

/// Runs a cold solve at `max_iter` iterations and returns the number of
/// allocations performed by `solve_with_control` itself (setup excluded).
fn allocs_for(max_iter: usize) -> usize {
    let prob = problem();
    let mut solver = Solver::new(&prob, settings(max_iter)).unwrap();
    let before = alloc_count();
    let result = solver.solve().unwrap();
    let during = alloc_count() - before;
    assert_eq!(result.status, Status::MaxIterationsReached);
    assert_eq!(result.iterations, max_iter);
    during
}

#[test]
fn admm_steady_state_is_allocation_free() {
    // Warm up lazy runtime allocations (stdout locks, etc.).
    let _ = allocs_for(5);
    let short = allocs_for(20);
    let long = allocs_for(220);
    assert_eq!(
        short, long,
        "a 220-iteration solve allocated {} times vs {} for 20 iterations — \
         the ADMM hot path is allocating per iteration",
        long, short
    );
}

#[test]
fn manual_rho_update_is_allocation_free() {
    // `update_rho` rebuilds the per-constraint ρ vector into the existing
    // buffers and the PCG backend copies the new values in place — the
    // whole call must never touch the heap once the solver exists.
    let prob = problem();
    let mut solver = Solver::new(&prob, settings(20)).unwrap();
    let _ = solver.solve().unwrap();
    let before = alloc_count();
    solver.update_rho(0.37).unwrap();
    solver.update_rho(1.93).unwrap();
    let during = alloc_count() - before;
    assert_eq!(
        during, 0,
        "update_rho allocated {during} times — the in-place ρ rebuild is \
         allocating"
    );
}

/// Allocation count of an update→re-solve loop (setup and warm-up solve
/// excluded): three ρ updates, each followed by a full `max_iter` solve.
fn allocs_for_update_loop(max_iter: usize) -> usize {
    let prob = problem();
    let mut solver = Solver::new(&prob, settings(max_iter)).unwrap();
    let _ = solver.solve().unwrap();
    let before = alloc_count();
    for k in 0..3usize {
        solver.update_rho(0.1 * (k + 1) as f64).unwrap();
        let result = solver.solve().unwrap();
        assert_eq!(result.status, Status::MaxIterationsReached);
        assert_eq!(result.iterations, max_iter);
    }
    alloc_count() - before
}

#[test]
fn update_resolve_loop_is_allocation_free_per_iteration() {
    // The parametric repeated-solve loop (MPC-style: update, re-solve,
    // repeat) must not accumulate allocations with iteration count: the
    // per-solve totals at 20 and 220 iterations agree exactly, so neither
    // the updates nor the extra 200 iterations per solve touched the heap.
    let _ = allocs_for_update_loop(5);
    let short = allocs_for_update_loop(20);
    let long = allocs_for_update_loop(220);
    assert_eq!(
        short, long,
        "an update→re-solve loop at 220 iterations allocated {} times vs {} \
         at 20 iterations — the parametric path is allocating per iteration",
        long, short
    );
}
