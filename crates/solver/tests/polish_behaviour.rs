//! Behaviour of the solution-polishing extension.

use rsqp_solver::{QpProblem, Settings, Solver, Status};
use rsqp_sparse::CsrMatrix;

fn box_qp() -> QpProblem {
    QpProblem::new(
        CsrMatrix::identity(3),
        vec![-2.0, -0.5, 1.0],
        CsrMatrix::identity(3),
        vec![0.0, 0.0, 0.0],
        vec![1.0, 1.0, 1.0],
    )
    .unwrap()
}

#[test]
fn polish_tightens_residuals() {
    // Loose ADMM tolerances + polish should still land near machine
    // precision.
    let settings = Settings { eps_abs: 1e-3, eps_rel: 1e-3, polish: true, ..Default::default() };
    let mut s = Solver::new(&box_qp(), settings).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!(r.polished, "polish should succeed on this problem");
    assert!(r.prim_res < 1e-8, "prim {}", r.prim_res);
    assert!(r.dual_res < 1e-8, "dual {}", r.dual_res);
    let want = [1.0, 0.5, 0.0];
    for (got, want) in r.x.iter().zip(&want) {
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }
}

#[test]
fn polish_off_keeps_admm_iterate() {
    let settings = Settings { polish: false, ..Default::default() };
    let mut s = Solver::new(&box_qp(), settings).unwrap();
    let r = s.solve().unwrap();
    assert!(!r.polished);
}

#[test]
fn polish_improves_objective_accuracy() {
    let qp = box_qp();
    let loose = Settings { eps_abs: 5e-3, eps_rel: 5e-3, ..Default::default() };
    let mut plain = Solver::new(&qp, loose.clone()).unwrap();
    let rp = plain.solve().unwrap();
    let mut polished = Solver::new(&qp, Settings { polish: true, ..loose }).unwrap();
    let rq = polished.solve().unwrap();
    // True optimum: x = (1, 0.5, 0): obj = 0.5*(1+0.25) - 2 - 0.25 = -1.625.
    let exact = -1.625;
    assert!((rq.objective - exact).abs() <= (rp.objective - exact).abs() + 1e-12);
    assert!((rq.objective - exact).abs() < 1e-9);
}

#[test]
fn polish_works_on_equality_constrained_problems() {
    let qp = QpProblem::new(
        CsrMatrix::identity(2),
        vec![0.0, 0.0],
        CsrMatrix::from_dense(&[vec![1.0, 1.0]]),
        vec![1.0],
        vec![1.0],
    )
    .unwrap();
    let mut s = Solver::new(&qp, Settings { polish: true, ..Default::default() }).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!(r.polished);
    assert!((r.x[0] - 0.5).abs() < 1e-9);
    assert!((r.x[1] - 0.5).abs() < 1e-9);
}
