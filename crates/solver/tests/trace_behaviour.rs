//! Behaviour of the `Settings::trace` telemetry hook: the trace is absent
//! when disabled, complete when enabled, and deterministic across runs and
//! thread counts.

use rsqp_problems::{generate, Domain};
use rsqp_solver::{LinSysKind, Settings, Solver, Status};

fn traced_settings(kind: LinSysKind, threads: usize) -> Settings {
    Settings { linsys: kind, threads, trace: true, ..Default::default() }
}

#[test]
fn trace_is_none_when_disabled() {
    let problem = generate(Domain::Control, 4, 7);
    let mut solver = Solver::new(&problem, Settings::default()).unwrap();
    let result = solver.solve().unwrap();
    assert!(result.trace.is_none(), "default settings must not collect a trace");
}

#[test]
fn trace_records_every_iteration() {
    let problem = generate(Domain::Control, 4, 7);
    let mut solver = Solver::new(&problem, traced_settings(LinSysKind::CpuPcg, 1)).unwrap();
    let result = solver.solve().unwrap();
    assert_eq!(result.status, Status::Solved);
    let trace = result.trace.expect("trace requested");
    assert_eq!(trace.problem, problem.name());
    assert_eq!(trace.n, problem.num_vars());
    assert_eq!(trace.m, problem.num_constraints());
    assert_eq!(trace.status, result.status.to_string());
    assert_eq!(trace.iterations, result.iterations as u64);
    // No guard recoveries in a clean solve, so one record per iteration,
    // numbered 1..=iterations.
    assert_eq!(trace.records.len(), result.iterations);
    for (i, r) in trace.records.iter().enumerate() {
        assert_eq!(r.iter, i as u64 + 1);
    }
    // The PCG backend does real inner work, and the trace's total must
    // agree with the backend counters.
    assert_eq!(trace.total_cg_iterations(), result.backend.cg_iterations as u64);
    // The final iteration converged, so its record carries the residuals
    // the solver reported.
    let last = trace.records.last().unwrap();
    assert_eq!(last.prim_res, result.prim_res);
    assert_eq!(last.dual_res, result.dual_res);
    // Residuals are only present on termination-check iterations.
    let checks = trace.checked_records().count();
    assert!(checks >= 1 && checks <= trace.records.len());
}

#[test]
fn trace_spans_cover_the_phase_hierarchy() {
    let problem = generate(Domain::Lasso, 8, 3);
    let mut solver = Solver::new(&problem, traced_settings(LinSysKind::DirectLdlt, 1)).unwrap();
    let result = solver.solve().unwrap();
    let trace = result.trace.unwrap();
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for phase in ["setup", "scaling", "admm_loop", "solve"] {
        assert!(names.contains(&phase), "missing span {phase} in {names:?}");
    }
    let setup = trace.spans.iter().find(|s| s.name == "setup").unwrap();
    let solve = trace.spans.iter().find(|s| s.name == "solve").unwrap();
    let scaling = trace.spans.iter().find(|s| s.name == "scaling").unwrap();
    // One shared time axis: setup precedes solve, scaling nests in setup.
    assert!(solve.start_ns >= setup.end_ns);
    assert_eq!(scaling.depth, 1);
    assert!(scaling.end_ns <= setup.end_ns);
    // Per-iteration KKT time lives on the records and sums to (at most)
    // the solve span.
    let kkt_total: u64 = trace.records.iter().map(|r| r.kkt_ns).sum();
    assert!(kkt_total <= solve.duration_ns());
}

#[test]
fn polish_outcome_is_an_event() {
    let problem = generate(Domain::Eqqp, 12, 5);
    let settings = Settings { polish: true, ..traced_settings(LinSysKind::DirectLdlt, 1) };
    let mut solver = Solver::new(&problem, settings).unwrap();
    let result = solver.solve().unwrap();
    assert_eq!(result.status, Status::Solved);
    let trace = result.trace.unwrap();
    let polish = trace
        .events
        .iter()
        .find(|e| e.kind == "polish")
        .expect("polish ran, so the trace must carry its outcome");
    let expected = if result.polished { "accepted" } else { "rejected" };
    assert_eq!(polish.detail, expected);
}

#[test]
fn golden_json_is_stable_across_runs_and_threads() {
    let problem = generate(Domain::Huber, 10, 11);
    let mut goldens = Vec::new();
    for threads in [1, 4] {
        for _rep in 0..2 {
            let mut solver =
                Solver::new(&problem, traced_settings(LinSysKind::CpuPcg, threads)).unwrap();
            let result = solver.solve().unwrap();
            goldens.push(result.trace.unwrap().golden_json());
        }
    }
    for g in &goldens[1..] {
        assert_eq!(
            g, &goldens[0],
            "golden trace must be byte-identical across runs and thread counts"
        );
    }
    // The timing-free export really is timing-free.
    assert!(!goldens[0].contains("kkt_ns"));
    assert!(!goldens[0].contains("start_ns"));
}
