//! Property-based solver tests: on random strictly convex box-constrained
//! QPs, the solver must converge and the KKT optimality conditions must
//! hold at the reported solution, for both backends and with/without
//! scaling.

use proptest::prelude::*;
use rsqp_solver::{LinSysKind, QpProblem, Settings, Solver, Status};
use rsqp_sparse::CsrMatrix;

/// Strategy: a random diagonally-dominant QP with box-ish constraints.
fn arb_qp() -> impl Strategy<Value = QpProblem> {
    (2usize..10, 1usize..10, 0u64..1_000_000).prop_map(|(n, m, seed)| {
        // Deterministic construction from the seed (proptest shrinks seed).
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
        };
        let mut pt = Vec::new();
        let mut row_abs = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if next() > 0.5 {
                    let v = next();
                    pt.push((i, j, v));
                    pt.push((j, i, v));
                    row_abs[i] += v.abs();
                    row_abs[j] += v.abs();
                }
            }
        }
        for (i, &ra) in row_abs.iter().enumerate() {
            pt.push((i, i, ra + 1.0 + next().abs()));
        }
        let p = CsrMatrix::from_triplets(n, n, pt);
        let q: Vec<f64> = (0..n).map(|_| 2.0 * next()).collect();
        let mut at = Vec::new();
        for r in 0..m {
            at.push((r, r % n, 1.0 + next().abs()));
            if n > 1 {
                at.push((r, (r + 1) % n, next()));
            }
        }
        let a = CsrMatrix::from_triplets(m, n, at);
        let l: Vec<f64> = (0..m).map(|_| -1.5 - next().abs()).collect();
        let u: Vec<f64> = (0..m).map(|_| 1.5 + next().abs()).collect();
        QpProblem::new(p, q, a, l, u).expect("constructed valid")
    })
}

fn check_kkt(problem: &QpProblem, x: &[f64], y: &[f64], z: &[f64], tol: f64) -> Result<(), String> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    // Stationarity.
    let mut grad = vec![0.0; n];
    problem.p().spmv(x, &mut grad).map_err(|e| e.to_string())?;
    let mut aty = vec![0.0; n];
    problem.a().spmv_transpose(y, &mut aty).map_err(|e| e.to_string())?;
    for j in 0..n {
        let g = grad[j] + problem.q()[j] + aty[j];
        if g.abs() > tol {
            return Err(format!("stationarity[{j}] = {g}"));
        }
    }
    // Primal feasibility.
    if problem.primal_infeasibility(x) > tol {
        return Err(format!("primal infeasibility {}", problem.primal_infeasibility(x)));
    }
    // Dual sign conditions.
    for i in 0..m {
        if z[i] < problem.u()[i] - tol && y[i] > tol {
            return Err(format!("y[{i}] > 0 at inactive upper bound"));
        }
        if z[i] > problem.l()[i] + tol && y[i] < -tol {
            return Err(format!("y[{i}] < 0 at inactive lower bound"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn direct_backend_satisfies_kkt(problem in arb_qp()) {
        let settings = Settings {
            eps_abs: 1e-6,
            eps_rel: 1e-6,
            max_iter: 50_000,
            polish: true,
            ..Default::default()
        };
        let mut solver = Solver::new(&problem, settings).expect("setup");
        let r = solver.solve().expect("solve");
        prop_assert_eq!(r.status, Status::Solved);
        if let Err(msg) = check_kkt(&problem, &r.x, &r.y, &r.z, 2e-4) {
            prop_assert!(false, "KKT violated: {}", msg);
        }
    }

    #[test]
    fn backends_agree_on_objective(problem in arb_qp()) {
        let tight = |kind| Settings {
            linsys: kind,
            eps_abs: 1e-6,
            eps_rel: 1e-6,
            max_iter: 50_000,
            ..Default::default()
        };
        let rd = Solver::new(&problem, tight(LinSysKind::DirectLdlt))
            .expect("setup")
            .solve()
            .expect("solve");
        let ri = Solver::new(&problem, tight(LinSysKind::CpuPcg))
            .expect("setup")
            .solve()
            .expect("solve");
        prop_assert_eq!(rd.status, Status::Solved);
        prop_assert_eq!(ri.status, Status::Solved);
        let scale = 1.0 + rd.objective.abs();
        prop_assert!(
            (rd.objective - ri.objective).abs() < 1e-3 * scale,
            "objectives {} vs {}", rd.objective, ri.objective
        );
    }

    #[test]
    fn scaling_does_not_change_the_answer(problem in arb_qp()) {
        let base = Settings { eps_abs: 1e-7, eps_rel: 1e-7, max_iter: 50_000, ..Default::default() };
        let with = Solver::new(&problem, base.clone()).expect("setup").solve().expect("solve");
        let without = Solver::new(&problem, Settings { scaling_iters: 0, ..base })
            .expect("setup")
            .solve()
            .expect("solve");
        prop_assert_eq!(with.status, Status::Solved);
        prop_assert_eq!(without.status, Status::Solved);
        let scale = 1.0 + with.objective.abs();
        prop_assert!(
            (with.objective - without.objective).abs() < 1e-4 * scale,
            "objectives {} vs {}", with.objective, without.objective
        );
    }
}
