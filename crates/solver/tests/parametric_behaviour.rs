//! Behavioural contract of the parametric update path: after any
//! `update_*` call, the persistent solver must be indistinguishable from a
//! fresh solver built on the updated problem — same ρ classification, same
//! termination status, matching objective — while keeping its warm-start
//! advantage. The first two tests are regressions for stale-state bugs
//! (ρ classification and the slack iterate surviving re-equilibration);
//! the rest is an equivalence suite over every update kind on the control
//! (MPC) benchmark family.

use rsqp_problems::control;
use rsqp_solver::{QpProblem, Settings, Solver, Status};
use rsqp_sparse::CsrMatrix;

/// Tight tolerances so warm and cold solves land on the same high-accuracy
/// solution and objectives can be compared at 1e-6.
fn tight() -> Settings {
    Settings { eps_abs: 1e-8, eps_rel: 1e-8, ..Settings::default() }
}

fn assert_objectives_match(warm: f64, cold: f64) {
    let tol = 1e-6 * (1.0 + cold.abs());
    assert!(
        (warm - cold).abs() <= tol,
        "warm re-solve objective {warm} differs from cold solve objective {cold} \
         beyond tolerance {tol}"
    );
}

// ---------------------------------------------------------------------------
// Regression: update_matrices must re-derive the ρ classification.
//
// The per-constraint ρ classification (equality / inequality / loose) is
// computed from the *scaled* bounds, and re-running Ruiz on new matrix
// values changes the row scaling — so a value-only update can move a
// constraint's scaled gap across the RHO_EQ_TOL threshold. A solver that
// keeps the stale classification pushes the wrong ρ vector to its backend.
// ---------------------------------------------------------------------------

/// A 2-variable QP whose first constraint row carries a single entry `v`.
/// The row's bound gap is fixed at 1e-7: Ruiz scales the row by roughly
/// 1/√v, so a large `v` shrinks the scaled gap below the equality
/// threshold (1e-10) and a small `v` stretches it far above.
fn classification_problem(v: f64) -> QpProblem {
    let p = CsrMatrix::from_dense(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
    let a = CsrMatrix::from_dense(&[vec![v, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
    let q = vec![1.0, 1.0];
    let l = vec![0.0, -1.0, -100.0];
    let u = vec![1e-7, 1.0, 100.0];
    QpProblem::new(p, q, a, l, u).unwrap()
}

#[test]
fn update_matrices_rederives_rho_classification() {
    let base = classification_problem(1e8);
    let updated = classification_problem(1e-8);

    let mut solver = Solver::new(&base, Settings::default()).unwrap();
    let before = solver.constraint_kinds().to_vec();

    solver.update_matrices(None, Some(updated.a().clone())).unwrap();
    let after = solver.constraint_kinds().to_vec();

    // Ground truth: a fresh solver sees the updated values from scratch.
    let fresh = Solver::new(&updated, Settings::default()).unwrap();
    assert_eq!(
        after,
        fresh.constraint_kinds(),
        "post-update classification diverges from a fresh solver on the same problem"
    );
    // Guard against vacuity: the update must actually flip a class, or this
    // test would pass on the stale-classification bug.
    assert_ne!(
        before, after,
        "test problem no longer flips a constraint class across the update — \
         retune the entry magnitudes"
    );
    // And the rho vector pushed to the backend must reflect the new kinds.
    assert_eq!(solver.rho_vec(), fresh.rho_vec());
}

// ---------------------------------------------------------------------------
// Regression: update_matrices must carry the slack iterate z through the
// scaling change. Mid-ADMM, z is the *projected* iterate — distinct from
// A·x̄ — and resetting it to A·x̄ perturbs the next dual update, degrading
// the warm start the update path exists to preserve.
// ---------------------------------------------------------------------------

#[test]
fn update_matrices_preserves_slack_iterate() {
    let qp = control::generate(3, 42);
    // Stop mid-ADMM, before the first termination check, so z ≠ A·x̄.
    let settings = Settings { max_iter: 13, ..Settings::default() };
    let mut solver = Solver::new(&qp, settings).unwrap();
    let r = solver.solve().unwrap();
    assert_eq!(r.status, Status::MaxIterationsReached);

    let before = solver.checkpoint();
    // Guard against vacuity: if z already equals A·x̄ the reset would be
    // invisible. Checkpoints are unscaled, so compare in original space.
    let mut ax = vec![0.0; qp.num_constraints()];
    qp.a().spmv(&before.x, &mut ax).unwrap();
    let z_vs_ax: f64 = before.z.iter().zip(&ax).map(|(z, a)| (z - a).abs()).fold(0.0, f64::max);
    assert!(z_vs_ax > 1e-8, "mid-ADMM slack coincides with A·x̄ ({z_vs_ax:.3e}) — lower max_iter");

    // Identical values ⇒ identical Ruiz scaling ⇒ the update must be a
    // no-op on the iterates (up to scale/unscale round-off).
    solver.update_matrices(Some(qp.p().clone()), Some(qp.a().clone())).unwrap();
    let after = solver.checkpoint();
    for (i, (zb, za)) in before.z.iter().zip(&after.z).enumerate() {
        assert!(
            (zb - za).abs() <= 1e-10 * (1.0 + zb.abs()),
            "slack component {i} changed across a value-identical update: \
             {zb} -> {za}"
        );
    }
    for (xb, xa) in before.x.iter().zip(&after.x) {
        assert!((xb - xa).abs() <= 1e-10 * (1.0 + xb.abs()));
    }
    for (yb, ya) in before.y.iter().zip(&after.y) {
        assert!((yb - ya).abs() <= 1e-10 * (1.0 + yb.abs()));
    }
}

// ---------------------------------------------------------------------------
// Equivalence suite: for every update kind, a warm re-solve through the
// persistent solver must match a cold solve of the updated problem — same
// status, objective within 1e-6 — without losing the warm-start advantage
// (iteration count no worse than the cold solve).
// ---------------------------------------------------------------------------

/// Runs `base` to optimality, applies `update` to the warm solver and the
/// same logical change via `rebuild` to a fresh problem, then compares the
/// warm re-solve against the cold solve.
fn assert_equivalent(
    base: &QpProblem,
    update: impl FnOnce(&mut Solver),
    rebuild: impl FnOnce(&mut QpProblem),
) {
    let mut warm = Solver::new(base, tight()).unwrap();
    let first = warm.solve().unwrap();
    assert_eq!(first.status, Status::Solved, "base problem must solve");

    update(&mut warm);
    let warm_result = warm.solve().unwrap();

    let mut updated = base.clone();
    rebuild(&mut updated);
    let mut cold = Solver::new(&updated, tight()).unwrap();
    let cold_result = cold.solve().unwrap();

    assert_eq!(warm_result.status, cold_result.status);
    assert_eq!(warm_result.status, Status::Solved);
    assert_objectives_match(warm_result.objective, cold_result.objective);
    assert!(
        warm_result.iterations <= cold_result.iterations,
        "warm re-solve took {} iterations vs {} cold — the update path \
         destroyed the warm start",
        warm_result.iterations,
        cold_result.iterations
    );
}

#[test]
fn warm_resolve_after_update_q_matches_cold() {
    let base = control::generate(4, 1);
    let new_q: Vec<f64> = (0..base.num_vars()).map(|i| 0.1 * ((i as f64) * 0.37).sin()).collect();
    let q = new_q.clone();
    assert_equivalent(&base, move |s| s.update_q(new_q).unwrap(), move |p| p.update_q(q).unwrap());
}

#[test]
fn warm_resolve_after_update_bounds_matches_cold() {
    // The MPC step: a new initial state arrives as new bounds on the
    // first nx constraint rows; structure and matrices are unchanged.
    let base = control::generate(4, 1);
    let target = control::generate(4, 2);
    let (l, u) = (target.l().to_vec(), target.u().to_vec());
    let (l2, u2) = (l.clone(), u.clone());
    assert_equivalent(
        &base,
        move |s| s.update_bounds(l, u).unwrap(),
        move |p| p.update_bounds(l2, u2).unwrap(),
    );
}

#[test]
fn warm_resolve_after_update_matrices_matches_cold() {
    let base = control::generate(4, 1);
    let target = control::generate(4, 2);
    let (p_new, a_new) = (target.p().clone(), target.a().clone());
    let (p2, a2) = (p_new.clone(), a_new.clone());
    assert_equivalent(
        &base,
        move |s| s.update_matrices(Some(p_new), Some(a_new)).unwrap(),
        move |p| p.update_matrices(Some(p2), Some(a2)).unwrap(),
    );
}

#[test]
fn warm_resolve_after_update_rho_matches_cold() {
    let base = control::generate(4, 1);
    let mut warm = Solver::new(&base, tight()).unwrap();
    let first = warm.solve().unwrap();
    assert_eq!(first.status, Status::Solved);

    warm.update_rho(1.0).unwrap();
    assert_eq!(warm.rho_bar(), 1.0);
    let warm_result = warm.solve().unwrap();

    let mut cold = Solver::new(&base, Settings { rho: 1.0, ..tight() }).unwrap();
    let cold_result = cold.solve().unwrap();

    assert_eq!(warm_result.status, Status::Solved);
    assert_eq!(cold_result.status, Status::Solved);
    assert_objectives_match(warm_result.objective, cold_result.objective);
    assert!(warm_result.iterations <= cold_result.iterations);
}

#[test]
fn update_rho_preserves_classification() {
    let base = control::generate(3, 7);
    let mut solver = Solver::new(&base, Settings::default()).unwrap();
    let kinds = solver.constraint_kinds().to_vec();
    solver.update_rho(2.5).unwrap();
    assert_eq!(solver.constraint_kinds(), kinds.as_slice());
    assert_eq!(solver.rho_bar(), 2.5);
}
