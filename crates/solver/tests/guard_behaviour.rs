//! End-to-end tests of the numerical guard and recovery ladder, using a
//! sabotage backend that corrupts KKT solves on demand.

use proptest::prelude::*;
use rsqp_solver::{
    BackendStats, CgTolerance, CpuPcgBackend, DirectLdltBackend, GuardSettings, KktBackend,
    QpProblem, Settings, Solver, SolverError, Status,
};
use rsqp_sparse::CsrMatrix;

fn small_qp() -> QpProblem {
    let p = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
    let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
    QpProblem::new(p, vec![1.0, 1.0], a, vec![1.0, 0.0, 0.0], vec![1.0, 0.7, 0.7]).unwrap()
}

fn guarded_settings() -> Settings {
    Settings {
        check_termination: 5,
        cg_tolerance: CgTolerance::Fixed(1e-10),
        ..Settings::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Sabotage {
    PoisonNan,
    PoisonInf,
    Error,
}

/// Wraps a real backend and corrupts `solve_kkt` output from call
/// `fire_at` on (one-shot unless `persistent`).
struct SabotageBackend {
    inner: Box<dyn KktBackend>,
    name: String,
    mode: Sabotage,
    fire_at: usize,
    persistent: bool,
    calls: usize,
}

impl SabotageBackend {
    fn should_fire(&mut self) -> bool {
        self.calls += 1;
        self.calls == self.fire_at || (self.persistent && self.calls >= self.fire_at)
    }
}

impl KktBackend for SabotageBackend {
    fn name(&self) -> &str {
        &self.name
    }
    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError> {
        self.inner.update_rho(rho)
    }
    fn set_cg_tolerance(&mut self, eps: f64) {
        self.inner.set_cg_tolerance(eps);
    }
    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError> {
        let fire = self.should_fire();
        if fire && self.mode == Sabotage::Error {
            return Err(SolverError::Backend("injected device fault".into()));
        }
        self.inner.solve_kkt(x, z, y, q, xtilde, ztilde)?;
        if fire {
            xtilde[0] = match self.mode {
                Sabotage::PoisonNan => f64::NAN,
                Sabotage::PoisonInf => f64::INFINITY,
                Sabotage::Error => unreachable!(),
            };
        }
        Ok(())
    }
    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError> {
        self.inner.update_matrices(p, a, rho)
    }
    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }
}

fn sabotaged_solver(
    settings: Settings,
    mode: Sabotage,
    fire_at: usize,
    persistent: bool,
    direct: bool,
) -> Solver {
    let problem = small_qp();
    Solver::with_backend(&problem, settings, &mut |p, a, sigma, rho, s| {
        let (inner, name): (Box<dyn KktBackend>, &str) = if direct {
            (Box::new(DirectLdltBackend::with_ordering(p, a, sigma, rho, s.ordering)?), "ldlt")
        } else {
            (Box::new(CpuPcgBackend::new(p, a, sigma, rho, 1e-10, s.cg_max_iter)), "cpu-pcg")
        };
        Ok(Box::new(SabotageBackend {
            inner,
            name: name.to_string(),
            mode,
            fire_at,
            persistent,
            calls: 0,
        }))
    })
    .unwrap()
}

#[test]
fn one_shot_nan_is_absorbed_by_iterate_reset() {
    let mut s = sabotaged_solver(guarded_settings(), Sabotage::PoisonNan, 3, false, false);
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!(r.x.iter().all(|v| v.is_finite()));
    assert!(r.guard.faults_detected >= 1, "guard never noticed the NaN");
    assert!(r.guard.iterate_resets >= 1);
    assert!((r.x[0] + r.x[1] - 1.0).abs() < 1e-2);
}

#[test]
fn persistent_backend_errors_degrade_to_direct_ldlt() {
    let mut s = sabotaged_solver(guarded_settings(), Sabotage::Error, 2, true, false);
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert_eq!(r.guard.backend_fallbacks, 1, "expected exactly one fallback: {:?}", r.guard);
    assert_eq!(s.backend_name(), "ldlt");
    assert!((r.x[0] + r.x[1] - 1.0).abs() < 1e-2);
}

#[test]
fn persistent_corruption_on_direct_backend_reports_numerical_error() {
    // The backend claims to be the direct solver, so the fallback rung is
    // unavailable and the ladder must exhaust into NumericalError.
    let mut s = sabotaged_solver(guarded_settings(), Sabotage::PoisonNan, 1, true, true);
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::NumericalError);
    assert!(r.guard.faults_detected >= 2);
}

#[test]
fn disabled_guard_propagates_backend_errors() {
    let settings = Settings {
        guard: GuardSettings { enabled: false, ..GuardSettings::default() },
        ..guarded_settings()
    };
    let mut s = sabotaged_solver(settings, Sabotage::Error, 2, true, false);
    let err = s.solve().unwrap_err();
    assert!(matches!(err, SolverError::Backend(_)), "{err:?}");
}

#[test]
fn disabled_guard_still_never_reports_solved_with_non_finite_x() {
    // Poison on the exact call whose result feeds the final termination
    // check; without the guard the residual math sees NaN (never converges),
    // and the final screen must keep Solved off the table.
    let settings = Settings {
        max_iter: 40,
        guard: GuardSettings { enabled: false, ..GuardSettings::default() },
        ..guarded_settings()
    };
    let mut s = sabotaged_solver(settings, Sabotage::PoisonNan, 1, true, false);
    match s.solve() {
        // Propagating a typed error is fine; claiming Solved is not.
        Ok(r) => assert_ne!(r.status, Status::Solved),
        Err(e) => assert!(matches!(e, SolverError::Pcg(_) | SolverError::Numerical(_)), "{e:?}"),
    }
}

#[test]
fn clean_solves_report_no_interventions() {
    let problem = small_qp();
    let mut s = Solver::new(&problem, guarded_settings()).unwrap();
    let r = s.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
    assert!(!r.guard.intervened(), "spurious guard activity: {:?}", r.guard);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Whatever corruption is injected, wherever: the solver must return a
    // diagnosable status without panicking, and a `Solved` status implies
    // an entirely finite solution.
    #[test]
    fn corrupted_solves_always_terminate_diagnosably(
        fire_at in 1usize..40,
        mode in prop::sample::select(vec![
            Sabotage::PoisonNan,
            Sabotage::PoisonInf,
            Sabotage::Error,
        ]),
        persistent in any::<bool>(),
        direct in any::<bool>(),
    ) {
        let mut s = sabotaged_solver(guarded_settings(), mode, fire_at, persistent, direct);
        let r = s.solve().unwrap();
        prop_assert!(
            matches!(
                r.status,
                Status::Solved
                    | Status::MaxIterationsReached
                    | Status::NumericalError
            ),
            "unexpected status {:?}",
            r.status
        );
        if r.status == Status::Solved {
            prop_assert!(r.x.iter().all(|v| v.is_finite()), "Solved with non-finite x");
            prop_assert!(r.y.iter().all(|v| v.is_finite()), "Solved with non-finite y");
            prop_assert!(r.z.iter().all(|v| v.is_finite()), "Solved with non-finite z");
        }
    }
}
