//! Budget and checkpoint semantics of `solve_with_control`: cancellation,
//! deadlines landing in different solve phases, and checkpoint/resume
//! fidelity on the control benchmark family.

use std::time::{Duration, Instant};

use rsqp_problems::{generate, Domain};
use rsqp_solver::{
    BackendStats, CancelToken, Checkpoint, CpuPcgBackend, DirectLdltBackend, KktBackend, QpProblem,
    Settings, SolveControl, Solver, SolverError, Status,
};
use rsqp_sparse::CsrMatrix;

fn control_problem(size: usize) -> QpProblem {
    generate(Domain::Control, size, 7)
}

fn deterministic_settings() -> Settings {
    Settings {
        eps_abs: 1e-6,
        eps_rel: 1e-6,
        check_termination: 1,
        adaptive_rho: false,
        ..Default::default()
    }
}

/// A backend decorator that fires a side effect at the start of KKT solve
/// number `at_call` — the deterministic way to land a cancellation or a
/// deadline expiry in a chosen solve phase.
struct TriggerAt<F: FnMut()> {
    inner: Box<dyn KktBackend>,
    at_call: usize,
    calls: usize,
    effect: F,
}

impl<F: FnMut()> KktBackend for TriggerAt<F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError> {
        self.inner.update_rho(rho)
    }

    fn set_cg_tolerance(&mut self, eps: f64) {
        self.inner.set_cg_tolerance(eps);
    }

    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError> {
        self.calls += 1;
        if self.calls == self.at_call {
            (self.effect)();
        }
        self.inner.solve_kkt(x, z, y, q, xtilde, ztilde)
    }

    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError> {
        self.inner.update_matrices(p, a, rho)
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }
}

fn solver_with_trigger<F: FnMut() + 'static>(
    problem: &QpProblem,
    settings: Settings,
    at_call: usize,
    effect: F,
) -> Solver {
    let mut effect = Some(effect);
    Solver::with_backend(problem, settings, &mut |p, a, sigma, rho, _s| {
        Ok(Box::new(TriggerAt {
            inner: Box::new(DirectLdltBackend::new(p, a, sigma, rho)?),
            at_call,
            calls: 0,
            effect: effect.take().expect("factory runs once"),
        }))
    })
    .expect("valid problem")
}

#[test]
fn pre_cancelled_token_stops_before_any_iteration() {
    let token = CancelToken::new();
    token.cancel();
    let mut solver = Solver::new(&control_problem(3), deterministic_settings()).unwrap();
    let control = SolveControl::unbounded().with_cancel(token);
    let r = solver.solve_with_control(&control).unwrap();
    assert_eq!(r.status, Status::Cancelled);
    assert_eq!(r.iterations, 0);
}

#[test]
fn cancellation_mid_solve_stops_at_the_next_boundary() {
    let token = CancelToken::new();
    let tripper = token.clone();
    let mut solver =
        solver_with_trigger(&control_problem(3), deterministic_settings(), 5, move || {
            tripper.cancel();
        });
    let control = SolveControl::unbounded().with_cancel(token);
    let r = solver.solve_with_control(&control).unwrap();
    assert_eq!(r.status, Status::Cancelled);
    // The cancel lands during KKT solve #5; iteration 5 completes and the
    // boundary check before iteration 6 observes it.
    assert_eq!(r.iterations, 5);
    assert!(r.x.iter().all(|v| v.is_finite()));
}

#[test]
fn deadline_expiring_during_the_kkt_solve_is_caught_at_the_boundary() {
    // The first KKT solve sleeps well past the deadline: the iteration
    // still completes (cooperative, not preemptive) and the very next
    // boundary check reports the expiry.
    let problem = control_problem(3);
    let mut solver = solver_with_trigger(&problem, deterministic_settings(), 1, || {
        std::thread::sleep(Duration::from_millis(200));
    });
    let control =
        SolveControl::unbounded().with_deadline(Instant::now() + Duration::from_millis(50));
    let r = solver.solve_with_control(&control).unwrap();
    assert_eq!(r.status, Status::TimeLimitReached);
    assert_eq!(r.iterations, 1);
}

#[test]
fn deadline_expiring_before_polish_keeps_solved_but_skips_polish() {
    let problem = control_problem(3);
    let mut settings = deterministic_settings();
    settings.polish = true;

    // Control run: converges and polishes; records the convergence
    // iteration k* (deterministic: direct backend, fixed ρ).
    let mut reference = Solver::new(&problem, settings.clone()).unwrap();
    let ref_result = reference.solve().unwrap();
    assert_eq!(ref_result.status, Status::Solved);
    assert!(ref_result.polished, "reference run must polish for this test to mean anything");
    let k_star = ref_result.iterations;

    // Interrupted run: the *final* (convergence-producing) KKT solve burns
    // through the whole deadline. Convergence is still detected — the
    // iterate is a solution — so the status stays Solved, but the polish
    // step finds the budget exhausted and is skipped.
    let mut solver = solver_with_trigger(&problem, settings, k_star, || {
        std::thread::sleep(Duration::from_millis(900));
    });
    let control =
        SolveControl::unbounded().with_deadline(Instant::now() + Duration::from_millis(600));
    let r = solver.solve_with_control(&control).unwrap();
    assert_eq!(r.status, Status::Solved);
    assert_eq!(r.iterations, k_star);
    assert!(!r.polished, "polish must be skipped once the budget is spent");
}

#[test]
fn iter_cap_takes_the_minimum_with_max_iter() {
    let mut solver = Solver::new(
        &control_problem(3),
        Settings {
            eps_abs: 1e-300,
            eps_rel: 1e-300,
            check_termination: 1,
            ..deterministic_settings()
        },
    )
    .unwrap();
    let r = solver.solve_with_control(&SolveControl::unbounded().with_iter_cap(11)).unwrap();
    assert_eq!(r.status, Status::MaxIterationsReached);
    assert_eq!(r.iterations, 11);
}

#[test]
fn settings_time_limit_still_applies_without_a_control() {
    let mut settings = deterministic_settings();
    settings.eps_abs = 1e-300;
    settings.eps_rel = 1e-300;
    settings.time_limit = Some(Duration::from_millis(30));
    let mut solver = Solver::new(&control_problem(4), settings).unwrap();
    let t = Instant::now();
    let r = solver.solve().unwrap();
    assert_eq!(r.status, Status::TimeLimitReached);
    assert!(t.elapsed() < Duration::from_secs(10));
}

#[test]
fn warm_start_rejects_non_finite_entries() {
    let problem = control_problem(2);
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut solver = Solver::new(&problem, Settings::default()).unwrap();
    let mut x = vec![0.0; n];
    x[0] = f64::NAN;
    let err = solver.warm_start(&x, &vec![0.0; m]).unwrap_err();
    assert!(err.to_string().contains("not finite"), "{err}");
    let mut y = vec![0.0; m];
    y[m - 1] = f64::INFINITY;
    let err = solver.warm_start(&vec![0.0; n], &y).unwrap_err();
    assert!(err.to_string().contains("not finite"), "{err}");
}

/// Checkpoint → serialize → restore → resume must land on the same answer
/// as the uninterrupted solve, across the control benchmark family.
#[test]
fn checkpoint_resume_matches_uninterrupted_on_control_family() {
    for size in [2usize, 3, 5] {
        let problem = control_problem(size);
        let settings = deterministic_settings();

        let mut uninterrupted = Solver::new(&problem, settings.clone()).unwrap();
        let full = uninterrupted.solve().unwrap();
        assert_eq!(full.status, Status::Solved, "size {size}");
        let k_star = full.iterations;
        assert!(k_star >= 4, "family member converges too fast to split (k*={k_star})");

        // Stop halfway, checkpoint through the byte format, resume on a
        // fresh solver.
        let split = k_star / 2;
        let mut first_half = Solver::new(&problem, settings.clone()).unwrap();
        let partial =
            first_half.solve_with_control(&SolveControl::unbounded().with_iter_cap(split)).unwrap();
        assert_eq!(partial.status, Status::MaxIterationsReached);
        let ckpt = Checkpoint::from_bytes(&first_half.checkpoint().to_bytes()).unwrap();
        assert_eq!(ckpt.iterations, split as u64);

        let mut resumed = Solver::new(&problem, settings.clone()).unwrap();
        resumed.restore(&ckpt).unwrap();
        let rest = resumed.solve().unwrap();
        assert_eq!(rest.status, Status::Solved, "size {size}");

        // Same solution (to solver tolerance)...
        for (a, b) in rest.x.iter().zip(&full.x) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "size {size}: {a} vs {b}");
        }
        assert!((rest.objective - full.objective).abs() <= 1e-6 * (1.0 + full.objective.abs()));
        // ...for the same total work, up to termination-check phase slack.
        let total = split + rest.iterations;
        assert!(
            total.abs_diff(k_star) <= 3,
            "size {size}: resumed total {total} vs uninterrupted {k_star}"
        );
        assert_eq!(resumed.total_iterations(), split as u64 + rest.iterations as u64);
    }
}

/// A checkpoint taken on a PCG-backed solver resumes on a direct-LDLᵀ
/// solver — the degradation path the runtime retry ladder takes.
#[test]
fn checkpoint_is_portable_across_backends() {
    let problem = control_problem(3);
    let settings = deterministic_settings();

    let mut pcg_solver =
        Solver::with_backend(&problem, settings.clone(), &mut |p, a, sigma, rho, s| {
            Ok(Box::new(CpuPcgBackend::new(p, a, sigma, rho, 1e-9, s.cg_max_iter)))
        })
        .unwrap();
    pcg_solver.solve_with_control(&SolveControl::unbounded().with_iter_cap(10)).unwrap();
    let ckpt = pcg_solver.checkpoint();

    let mut direct = Solver::new(&problem, settings).unwrap();
    direct.restore(&ckpt).unwrap();
    let r = direct.solve().unwrap();
    assert_eq!(r.status, Status::Solved);
}

#[test]
fn restore_rejects_mismatched_and_corrupt_checkpoints() {
    let problem = control_problem(3);
    let mut solver = Solver::new(&problem, Settings::default()).unwrap();
    let other = Solver::new(&control_problem(2), Settings::default()).unwrap();
    let err = solver.restore(&other.checkpoint()).unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");

    let mut bad = solver.checkpoint();
    bad.rho_bar = f64::NAN;
    assert!(solver.restore(&bad).is_err());
}
