use std::error::Error;
use std::fmt;

use rsqp_linsys::LinsysError;
use rsqp_sparse::SparseError;

/// Error type for problem construction and solver setup.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The problem data is malformed (shape mismatch, `l > u`, non-symmetric
    /// `P`, …).
    InvalidProblem(String),
    /// A setting has an out-of-range value (e.g. `alpha` outside `(0, 2)`).
    InvalidSetting(String),
    /// The linear-system backend failed.
    Linsys(LinsysError),
    /// An underlying sparse kernel failed.
    Sparse(SparseError),
    /// A custom backend reported a failure.
    Backend(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            SolverError::InvalidSetting(msg) => write!(f, "invalid setting: {msg}"),
            SolverError::Linsys(e) => write!(f, "linear system error: {e}"),
            SolverError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            SolverError::Backend(msg) => write!(f, "backend error: {msg}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Linsys(e) => Some(e),
            SolverError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinsysError> for SolverError {
    fn from(e: LinsysError) -> Self {
        SolverError::Linsys(e)
    }
}

impl From<SparseError> for SolverError {
    fn from(e: SparseError) -> Self {
        SolverError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed() {
        assert!(SolverError::InvalidProblem("x".into()).to_string().contains("invalid problem"));
        assert!(SolverError::Backend("b".into()).to_string().contains("backend"));
    }

    #[test]
    fn conversion_from_linsys() {
        let e: SolverError = LinsysError::ZeroPivot(1).into();
        assert!(matches!(e, SolverError::Linsys(_)));
    }
}
