use std::error::Error;
use std::fmt;

use rsqp_linsys::{LinsysError, PcgError};
use rsqp_sparse::SparseError;

/// Error type for problem construction and solver setup.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The problem data is malformed (shape mismatch, `l > u`, non-symmetric
    /// `P`, non-finite entries, …).
    InvalidProblem(String),
    /// A setting has an out-of-range value (e.g. `alpha` outside `(0, 2)`).
    InvalidSetting(String),
    /// The linear-system backend failed.
    Linsys(LinsysError),
    /// The inner PCG solve broke down or produced non-finite values.
    Pcg(PcgError),
    /// An underlying sparse kernel failed.
    Sparse(SparseError),
    /// A custom backend reported a failure.
    Backend(String),
    /// The solve diverged past every recovery stage; identifies what was
    /// detected (e.g. "non-finite iterate x").
    Numerical(String),
}

impl SolverError {
    /// Whether the guard layer may attempt recovery from this error, as
    /// opposed to a structural failure that a retry cannot fix.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SolverError::Pcg(_)
                | SolverError::Backend(_)
                | SolverError::Linsys(_)
                | SolverError::Numerical(_)
        )
    }
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            SolverError::InvalidSetting(msg) => write!(f, "invalid setting: {msg}"),
            SolverError::Linsys(e) => write!(f, "linear system error: {e}"),
            SolverError::Pcg(e) => write!(f, "inner PCG solve failed: {e}"),
            SolverError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            SolverError::Backend(msg) => write!(f, "backend error: {msg}"),
            SolverError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Linsys(e) => Some(e),
            SolverError::Pcg(e) => Some(e),
            SolverError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinsysError> for SolverError {
    fn from(e: LinsysError) -> Self {
        SolverError::Linsys(e)
    }
}

impl From<PcgError> for SolverError {
    fn from(e: PcgError) -> Self {
        SolverError::Pcg(e)
    }
}

impl From<SparseError> for SolverError {
    fn from(e: SparseError) -> Self {
        SolverError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed() {
        assert!(SolverError::InvalidProblem("x".into()).to_string().contains("invalid problem"));
        assert!(SolverError::Backend("b".into()).to_string().contains("backend"));
    }

    #[test]
    fn conversion_from_linsys() {
        let e: SolverError = LinsysError::ZeroPivot(1).into();
        assert!(matches!(e, SolverError::Linsys(_)));
    }

    #[test]
    fn conversion_from_pcg_is_recoverable() {
        let e: SolverError = PcgError::Breakdown { iteration: 3, curvature: -1.0 }.into();
        assert!(matches!(e, SolverError::Pcg(_)));
        assert!(e.is_recoverable());
        assert!(!SolverError::InvalidProblem("x".into()).is_recoverable());
    }
}
