//! Primal and dual infeasibility certificates (OSQP §3.4).
//!
//! The one-iteration differences `δy = y⁺ − y` and `δx = x⁺ − x` converge,
//! for infeasible problems, to certificates of primal and dual
//! infeasibility respectively. All inputs here are **unscaled**.

use rsqp_sparse::vec_ops;

use crate::problem::QP_INFTY;

/// Checks the primal-infeasibility certificate:
///
/// `‖Aᵀδy‖∞ ≤ ε‖δy‖∞` and `uᵀ(δy)₊ + lᵀ(δy)₋ ≤ −ε‖δy‖∞`.
///
/// `at_dy` must be `Aᵀ·δy`. Infinite bounds paired with a `δy` component of
/// the "wrong" sign make the support term `+∞` and the certificate fails.
pub fn primal_certificate(dy: &[f64], at_dy: &[f64], l: &[f64], u: &[f64], eps: f64) -> bool {
    let norm_dy = vec_ops::inf_norm(dy);
    if norm_dy <= eps {
        return false;
    }
    if vec_ops::inf_norm(at_dy) > eps * norm_dy {
        return false;
    }
    let mut support = 0.0f64;
    for i in 0..dy.len() {
        let d = dy[i];
        if d > 0.0 {
            if u[i] >= QP_INFTY {
                return false;
            }
            support += u[i] * d;
        } else if d < 0.0 {
            if l[i] <= -QP_INFTY {
                return false;
            }
            support += l[i] * d;
        }
    }
    support <= -eps * norm_dy
}

/// Checks the dual-infeasibility certificate:
///
/// `‖Pδx‖∞ ≤ ε‖δx‖∞`, `qᵀδx ≤ −ε‖δx‖∞`, and `Aδx` stays inside the
/// recession cone of the constraint box (`(Aδx)_i ≤ ε‖δx‖` where `u_i`
/// finite, `(Aδx)_i ≥ −ε‖δx‖` where `l_i` finite).
pub fn dual_certificate(
    dx: &[f64],
    p_dx: &[f64],
    a_dx: &[f64],
    q: &[f64],
    l: &[f64],
    u: &[f64],
    eps: f64,
) -> bool {
    let norm_dx = vec_ops::inf_norm(dx);
    if norm_dx <= eps {
        return false;
    }
    if vec_ops::inf_norm(p_dx) > eps * norm_dx {
        return false;
    }
    if vec_ops::dot(q, dx) > -eps * norm_dx {
        return false;
    }
    for i in 0..a_dx.len() {
        let v = a_dx[i];
        if u[i] < QP_INFTY && v > eps * norm_dx {
            return false;
        }
        if l[i] > -QP_INFTY && v < -eps * norm_dx {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    #[test]
    fn primal_certificate_detects_contradictory_equalities() {
        // Constraints x = 0 and x = 1 (A = [1; 1]): dy = (1, -1) gives
        // Aᵀdy = 0 and support = u1*1 + l0*(-1)... pick dy = (1, -1) with
        // bounds row0: [1,1], row1: [0,0] -> support = 1*1 + 0 = 1? choose
        // dy = (-1, 1): support = l0*(-1) + u1*(1) = -1 + 0 = -1 < 0. ✓
        let dy = [-1.0, 1.0];
        let at_dy = [0.0];
        let l = [1.0, 0.0];
        let u = [1.0, 0.0];
        assert!(primal_certificate(&dy, &at_dy, &l, &u, 1e-6));
    }

    #[test]
    fn primal_certificate_rejects_feasible_direction() {
        // Non-zero Aᵀdy.
        assert!(!primal_certificate(&[1.0], &[1.0], &[0.0], &[1.0], 1e-6));
        // Positive support.
        assert!(!primal_certificate(&[1.0], &[0.0], &[0.0], &[1.0], 1e-6));
        // Zero dy.
        assert!(!primal_certificate(&[0.0], &[0.0], &[0.0], &[1.0], 1e-6));
    }

    #[test]
    fn primal_certificate_fails_on_infinite_support() {
        // dy positive where u infinite -> support unbounded above.
        assert!(!primal_certificate(&[1.0], &[0.0], &[0.0], &[INF], 1e-6));
        assert!(!primal_certificate(&[-1.0], &[0.0], &[-INF], &[0.0], 1e-6));
    }

    #[test]
    fn dual_certificate_detects_unbounded_direction() {
        // minimize -x with x >= 0 (u = inf): direction dx = 1 has P dx = 0,
        // q'dx = -1 < 0, A dx = 1 allowed because u is infinite.
        assert!(dual_certificate(&[1.0], &[0.0], &[1.0], &[-1.0], &[0.0], &[INF], 1e-6));
    }

    #[test]
    fn dual_certificate_rejects_bounded_problems() {
        // Curvature along dx.
        assert!(!dual_certificate(&[1.0], &[1.0], &[0.0], &[-1.0], &[0.0], &[INF], 1e-6));
        // Cost not decreasing.
        assert!(!dual_certificate(&[1.0], &[0.0], &[0.0], &[1.0], &[0.0], &[INF], 1e-6));
        // Direction leaves a finite upper bound.
        assert!(!dual_certificate(&[1.0], &[0.0], &[1.0], &[-1.0], &[0.0], &[5.0], 1e-6));
        // Direction leaves a finite lower bound.
        assert!(!dual_certificate(&[1.0], &[0.0], &[-1.0], &[-1.0], &[0.0], &[INF], 1e-6));
    }
}
