//! Modified Ruiz equilibration (OSQP §5.1 of Stellato et al. 2020).
//!
//! The problem data is rescaled as `P̄ = c·D·P·D`, `q̄ = c·D·q`,
//! `Ā = E·A·D`, `l̄ = E·l`, `ū = E·u` with positive diagonal `D`, `E` and
//! cost scalar `c`, chosen to equilibrate the column infinity norms of the
//! stacked KKT matrix. Iterates map back as `x = D·x̄`, `z = E⁻¹·z̄`,
//! `y = c⁻¹·E·ȳ`.

use rsqp_sparse::{vec_ops, CsrMatrix};

/// Scaling-norm clamp, matching OSQP's `MIN_SCALING`/`MAX_SCALING`.
const MIN_SCALING: f64 = 1e-4;
/// Upper clamp for equilibration norms.
const MAX_SCALING: f64 = 1e4;

/// The diagonal scaling produced by Ruiz equilibration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaling {
    d: Vec<f64>,
    e: Vec<f64>,
    dinv: Vec<f64>,
    einv: Vec<f64>,
    c: f64,
    cinv: f64,
}

/// The scaled problem data returned by [`Scaling::ruiz`].
#[derive(Debug, Clone)]
pub struct ScaledData {
    /// `P̄ = c·D·P·D`.
    pub p: CsrMatrix,
    /// `q̄ = c·D·q`.
    pub q: Vec<f64>,
    /// `Ā = E·A·D`.
    pub a: CsrMatrix,
}

impl Scaling {
    /// The identity scaling (used when `scaling_iters == 0`).
    pub fn identity(n: usize, m: usize) -> Self {
        Scaling {
            d: vec![1.0; n],
            e: vec![1.0; m],
            dinv: vec![1.0; n],
            einv: vec![1.0; m],
            c: 1.0,
            cinv: 1.0,
        }
    }

    /// Runs `iters` Ruiz iterations on `(P, q, A)` and returns the scaling
    /// together with the scaled matrices.
    pub fn ruiz(p: &CsrMatrix, q: &[f64], a: &CsrMatrix, iters: usize) -> (Self, ScaledData) {
        let n = p.nrows();
        let m = a.nrows();
        let mut sc = Scaling::identity(n, m);
        let mut ps = p.clone();
        let mut qs = q.to_vec();
        let mut as_ = a.clone();

        for _ in 0..iters {
            // Column infinity norms of the stacked matrix [P; A] for the
            // variable block, row norms of A for the constraint block.
            let p_cols = ps.column_inf_norms();
            let a_cols = as_.column_inf_norms();
            let a_rows = as_.row_inf_norms();
            let dx: Vec<f64> = (0..n).map(|j| inv_sqrt_clamped(p_cols[j].max(a_cols[j]))).collect();
            let dz: Vec<f64> = (0..m).map(|i| inv_sqrt_clamped(a_rows[i])).collect();

            ps.scale_rows(&dx);
            ps.scale_cols(&dx);
            as_.scale_rows(&dz);
            as_.scale_cols(&dx);
            for (qi, &s) in qs.iter_mut().zip(&dx) {
                *qi *= s;
            }
            for (di, &s) in sc.d.iter_mut().zip(&dx) {
                *di *= s;
            }
            for (ei, &s) in sc.e.iter_mut().zip(&dz) {
                *ei *= s;
            }

            // Cost normalization.
            let p_cols = ps.column_inf_norms();
            let mean_p = if n == 0 { 0.0 } else { p_cols.iter().sum::<f64>() / n as f64 };
            let norm_q = vec_ops::inf_norm(&qs);
            let denom = mean_p.max(norm_q);
            let gamma = if denom > MIN_SCALING {
                (1.0 / denom).clamp(1.0 / MAX_SCALING, 1.0 / MIN_SCALING)
            } else {
                1.0
            };
            for v in ps.data_mut() {
                *v *= gamma;
            }
            for v in &mut qs {
                *v *= gamma;
            }
            sc.c *= gamma;
        }

        sc.dinv = sc.d.iter().map(|&v| 1.0 / v).collect();
        sc.einv = sc.e.iter().map(|&v| 1.0 / v).collect();
        sc.cinv = 1.0 / sc.c;
        (sc, ScaledData { p: ps, q: qs, a: as_ })
    }

    /// Variable scaling `D` (length `n`).
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Constraint scaling `E` (length `m`).
    pub fn e(&self) -> &[f64] {
        &self.e
    }

    /// `D⁻¹`.
    pub fn dinv(&self) -> &[f64] {
        &self.dinv
    }

    /// `E⁻¹`.
    pub fn einv(&self) -> &[f64] {
        &self.einv
    }

    /// Cost scaling `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// `c⁻¹`.
    pub fn cinv(&self) -> f64 {
        self.cinv
    }

    /// Scales bound vectors: `l̄ = E·l`, `ū = E·u` (infinities survive).
    pub fn scale_bounds(&self, l: &[f64], u: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let ls = l.iter().zip(&self.e).map(|(&v, &s)| v * s).collect();
        let us = u.iter().zip(&self.e).map(|(&v, &s)| v * s).collect();
        (ls, us)
    }

    /// Maps a scaled primal iterate back: `x = D·x̄`.
    pub fn unscale_x(&self, x: &[f64]) -> Vec<f64> {
        x.iter().zip(&self.d).map(|(&v, &s)| v * s).collect()
    }

    /// Maps a scaled slack iterate back: `z = E⁻¹·z̄`.
    pub fn unscale_z(&self, z: &[f64]) -> Vec<f64> {
        z.iter().zip(&self.einv).map(|(&v, &s)| v * s).collect()
    }

    /// Maps a scaled dual iterate back: `y = c⁻¹·E·ȳ`.
    pub fn unscale_y(&self, y: &[f64]) -> Vec<f64> {
        y.iter().zip(&self.e).map(|(&v, &s)| v * s * self.cinv).collect()
    }

    /// Maps an unscaled primal point into scaled space: `x̄ = D⁻¹·x`.
    pub fn scale_x(&self, x: &[f64]) -> Vec<f64> {
        x.iter().zip(&self.dinv).map(|(&v, &s)| v * s).collect()
    }

    /// Maps an unscaled dual point into scaled space: `ȳ = c·E⁻¹·y`.
    pub fn scale_y(&self, y: &[f64]) -> Vec<f64> {
        y.iter().zip(&self.einv).map(|(&v, &s)| v * s * self.c).collect()
    }

    /// Maps an unscaled slack point into scaled space: `z̄ = E·z` (the
    /// inverse of [`Scaling::unscale_z`], used by checkpoint restore).
    pub fn scale_z(&self, z: &[f64]) -> Vec<f64> {
        z.iter().zip(&self.e).map(|(&v, &s)| v * s).collect()
    }
}

fn inv_sqrt_clamped(norm: f64) -> f64 {
    if norm == 0.0 {
        1.0
    } else {
        1.0 / norm.clamp(MIN_SCALING, MAX_SCALING).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn badly_scaled() -> (CsrMatrix, Vec<f64>, CsrMatrix) {
        let p = CsrMatrix::from_dense(&[vec![1e4, 0.0], vec![0.0, 1e-3]]);
        let q = vec![100.0, -1e-2];
        let a = CsrMatrix::from_dense(&[vec![1e3, 0.0], vec![0.0, 1e-2]]);
        (p, q, a)
    }

    #[test]
    fn identity_scaling_is_noop() {
        let sc = Scaling::identity(2, 3);
        assert_eq!(sc.unscale_x(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(sc.c(), 1.0);
        let (l, u) = sc.scale_bounds(&[0.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(l, vec![0.0, 1.0, 2.0]);
        assert_eq!(u, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ruiz_equilibrates_norms() {
        let (p, q, a) = badly_scaled();
        let (_sc, data) = Scaling::ruiz(&p, &q, &a, 10);
        // After equilibration all column norms of [P; A] should be close to
        // each other (within a factor of ~10 rather than 1e6).
        let pc = data.p.column_inf_norms();
        let ac = data.a.column_inf_norms();
        let col0 = pc[0].max(ac[0]);
        let col1 = pc[1].max(ac[1]);
        let ratio = col0.max(col1) / col0.min(col1);
        assert!(ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn scaled_matrices_match_scaling_vectors() {
        let (p, q, a) = badly_scaled();
        let (sc, data) = Scaling::ruiz(&p, &q, &a, 6);
        // P̄ must equal c·D·P·D entry-wise.
        for i in 0..2 {
            for j in 0..2 {
                let want = sc.c() * sc.d()[i] * p.get(i, j) * sc.d()[j];
                assert!((data.p.get(i, j) - want).abs() < 1e-12 * (1.0 + want.abs()));
            }
        }
        // Ā = E·A·D.
        for i in 0..2 {
            for j in 0..2 {
                let want = sc.e()[i] * a.get(i, j) * sc.d()[j];
                assert!((data.a.get(i, j) - want).abs() < 1e-12 * (1.0 + want.abs()));
            }
        }
        // q̄ = c·D·q.
        for j in 0..2 {
            let want = sc.c() * sc.d()[j] * q[j];
            assert!((data.q[j] - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn unscale_roundtrips() {
        let (p, q, a) = badly_scaled();
        let (sc, _) = Scaling::ruiz(&p, &q, &a, 4);
        let x = vec![1.5, -2.5];
        assert!((sc.unscale_x(&sc.scale_x(&x))[0] - x[0]).abs() < 1e-12);
        let y = vec![0.25, 4.0];
        let back = sc.unscale_y(&sc.scale_y(&y));
        assert!((back[0] - y[0]).abs() < 1e-12);
        assert!((back[1] - y[1]).abs() < 1e-12);
        let z = vec![-3.0, 0.5];
        let back = sc.unscale_z(&sc.scale_z(&z));
        assert!((back[0] - z[0]).abs() < 1e-12);
        assert!((back[1] - z[1]).abs() < 1e-12);
    }

    #[test]
    fn infinite_bounds_survive_scaling() {
        let (p, q, a) = badly_scaled();
        let (sc, _) = Scaling::ruiz(&p, &q, &a, 4);
        let (l, u) = sc.scale_bounds(&[f64::NEG_INFINITY, 0.0], &[f64::INFINITY, 1.0]);
        assert!(l[0].is_infinite() && l[0] < 0.0);
        assert!(u[0].is_infinite() && u[0] > 0.0);
        assert!(u[1].is_finite());
    }

    #[test]
    fn zero_column_is_left_alone() {
        // A variable that appears nowhere must not produce NaNs.
        let p = CsrMatrix::zeros(2, 2);
        let q = vec![0.0, 0.0];
        let a = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 1.0)]);
        let (sc, data) = Scaling::ruiz(&p, &q, &a, 10);
        assert!(sc.d().iter().all(|v| v.is_finite() && *v > 0.0));
        assert!(data.q.iter().all(|v| v.is_finite()));
    }
}
