//! Numerical guards and the bounded recovery ladder.
//!
//! Iterative inner solvers (PCG on the reduced KKT system) and accelerator
//! datapaths fail in ways the direct LDLᵀ path does not: breakdown,
//! stagnation, and silent NaN/Inf propagation from corrupted memory. The
//! guard layer watches the ADMM iterates at every termination check and, on
//! an anomaly, walks a **bounded recovery ladder**:
//!
//! 1. reset to the last known-good iterate,
//! 2. reset and tighten the inner CG tolerance,
//! 3. reset and degrade from the PCG backend to the direct LDLᵀ backend
//!    (the reverse of the paper's substitution, used as a safety net),
//! 4. abort with [`crate::Status::NumericalError`].
//!
//! The ladder never revisits a rung and the total number of recoveries is
//! capped, so a persistently faulty backend cannot loop forever. Every
//! event is counted in [`GuardReport`], surfaced in
//! [`crate::SolveResult::guard`].

use crate::SolverError;

/// Configuration of the guard layer (part of [`crate::Settings`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardSettings {
    /// Enables iterate checking and recovery. When `false`, backend errors
    /// propagate immediately and iterates are never inspected (the final
    /// result is still screened: `Solved` is never reported with a
    /// non-finite solution).
    pub enabled: bool,
    /// Infinity-norm bound on the scaled iterates; exceeding it counts as
    /// divergence even while every entry is still finite.
    pub divergence_threshold: f64,
    /// Total recovery events allowed before the solve aborts with
    /// [`crate::Status::NumericalError`].
    pub max_recoveries: usize,
}

impl Default for GuardSettings {
    fn default() -> Self {
        GuardSettings { enabled: true, divergence_threshold: 1e12, max_recoveries: 8 }
    }
}

/// What the guard detected at a checkpoint.
#[derive(Debug, Clone)]
pub enum Anomaly {
    /// An iterate or residual contains NaN or ±Inf; `what` names it.
    NonFinite {
        /// Which quantity was non-finite (e.g. `"iterate x"`).
        what: &'static str,
    },
    /// An iterate grew past [`GuardSettings::divergence_threshold`].
    Divergence {
        /// The offending infinity norm.
        norm: f64,
    },
    /// The KKT backend returned a recoverable error.
    BackendFault {
        /// The underlying error.
        error: SolverError,
    },
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anomaly::NonFinite { what } => write!(f, "non-finite {what}"),
            Anomaly::Divergence { norm } => write!(f, "iterate diverged (inf-norm {norm:e})"),
            Anomaly::BackendFault { error } => write!(f, "backend fault: {error}"),
        }
    }
}

/// The action the ladder prescribes for an anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restore `x`, `z`, `y` from the last known-good snapshot.
    ResetIterates,
    /// Restore the snapshot and tighten the inner CG tolerance.
    TightenCgTolerance,
    /// Restore the snapshot and replace the backend with direct LDLᵀ.
    FallbackToDirect,
    /// Give up: report [`crate::Status::NumericalError`].
    Abort,
}

/// Counters for every guard intervention during one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardReport {
    /// Anomalies detected (including the one that may have aborted).
    pub faults_detected: usize,
    /// Times the iterates were reset to the last good snapshot.
    pub iterate_resets: usize,
    /// Times the inner CG tolerance was tightened.
    pub cg_tightenings: usize,
    /// Times the backend was degraded to direct LDLᵀ.
    pub backend_fallbacks: usize,
}

impl GuardReport {
    /// Whether the guard intervened at all.
    pub fn intervened(&self) -> bool {
        self.faults_detected > 0
    }
}

/// Watches iterates and drives the recovery ladder for one solve.
#[derive(Debug)]
pub struct Guard {
    settings: GuardSettings,
    good_x: Vec<f64>,
    good_z: Vec<f64>,
    good_y: Vec<f64>,
    stage: usize,
    recoveries: usize,
    report: GuardReport,
}

fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |acc, &x| acc.max(x.abs()))
}

impl Guard {
    /// Creates a guard whose initial known-good snapshot is the current
    /// (scaled) iterate triple.
    pub fn new(settings: GuardSettings, x: &[f64], z: &[f64], y: &[f64]) -> Self {
        Guard {
            settings,
            good_x: x.to_vec(),
            good_z: z.to_vec(),
            good_y: y.to_vec(),
            stage: 0,
            recoveries: 0,
            report: GuardReport::default(),
        }
    }

    /// Inspects the iterate triple and the residual pair; returns the first
    /// anomaly found, or `None` when the state is healthy.
    pub fn inspect(
        &self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        prim_res: f64,
        dual_res: f64,
    ) -> Option<Anomaly> {
        if !all_finite(x) {
            return Some(Anomaly::NonFinite { what: "iterate x" });
        }
        if !all_finite(z) {
            return Some(Anomaly::NonFinite { what: "iterate z" });
        }
        if !all_finite(y) {
            return Some(Anomaly::NonFinite { what: "iterate y" });
        }
        if !prim_res.is_finite() {
            return Some(Anomaly::NonFinite { what: "primal residual" });
        }
        if !dual_res.is_finite() {
            return Some(Anomaly::NonFinite { what: "dual residual" });
        }
        let norm = inf_norm(x).max(inf_norm(y));
        if norm > self.settings.divergence_threshold {
            return Some(Anomaly::Divergence { norm });
        }
        None
    }

    /// Records the current iterates as the known-good snapshot. Call after
    /// [`Self::inspect`] returns `None`.
    pub fn record_good(&mut self, x: &[f64], z: &[f64], y: &[f64]) {
        self.good_x.copy_from_slice(x);
        self.good_z.copy_from_slice(z);
        self.good_y.copy_from_slice(y);
    }

    /// Restores the known-good snapshot into the iterate buffers.
    pub fn restore(&self, x: &mut [f64], z: &mut [f64], y: &mut [f64]) {
        x.copy_from_slice(&self.good_x);
        z.copy_from_slice(&self.good_z);
        y.copy_from_slice(&self.good_y);
    }

    /// Advances the ladder in response to `anomaly` and returns the action
    /// to apply. `can_fallback` is `false` when the active backend is
    /// already the direct LDLᵀ solver (that rung is then skipped).
    ///
    /// Each rung is used at most once and at most
    /// [`GuardSettings::max_recoveries`] recoveries are granted in total;
    /// past either bound the action is [`RecoveryAction::Abort`].
    pub fn recover(&mut self, anomaly: &Anomaly, can_fallback: bool) -> RecoveryAction {
        self.report.faults_detected += 1;
        if self.recoveries >= self.settings.max_recoveries {
            return RecoveryAction::Abort;
        }
        self.recoveries += 1;
        // A backend fault means the KKT solve itself is unreliable —
        // resetting iterates alone cannot help, so enter the ladder at the
        // tolerance-tightening rung.
        if matches!(anomaly, Anomaly::BackendFault { .. }) && self.stage == 0 {
            self.stage = 1;
        }
        let action = match self.stage {
            0 => RecoveryAction::ResetIterates,
            1 => RecoveryAction::TightenCgTolerance,
            2 if can_fallback => RecoveryAction::FallbackToDirect,
            2 => RecoveryAction::Abort,
            _ => RecoveryAction::Abort,
        };
        self.stage += 1;
        match action {
            RecoveryAction::ResetIterates => self.report.iterate_resets += 1,
            RecoveryAction::TightenCgTolerance => {
                self.report.iterate_resets += 1;
                self.report.cg_tightenings += 1;
            }
            RecoveryAction::FallbackToDirect => {
                self.report.iterate_resets += 1;
                self.report.backend_fallbacks += 1;
            }
            RecoveryAction::Abort => {}
        }
        action
    }

    /// The intervention counters accumulated so far.
    pub fn report(&self) -> GuardReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_guard() -> Guard {
        Guard::new(GuardSettings::default(), &[1.0, 2.0], &[0.5], &[0.0])
    }

    #[test]
    fn healthy_state_passes_inspection() {
        let g = mk_guard();
        assert!(g.inspect(&[1.0, 2.0], &[0.5], &[0.0], 1e-3, 1e-4).is_none());
    }

    #[test]
    fn detects_non_finite_iterates_and_residuals() {
        let g = mk_guard();
        assert!(matches!(
            g.inspect(&[f64::NAN, 0.0], &[0.0], &[0.0], 0.0, 0.0),
            Some(Anomaly::NonFinite { what: "iterate x" })
        ));
        assert!(matches!(
            g.inspect(&[0.0, 0.0], &[f64::INFINITY], &[0.0], 0.0, 0.0),
            Some(Anomaly::NonFinite { what: "iterate z" })
        ));
        assert!(matches!(
            g.inspect(&[0.0, 0.0], &[0.0], &[0.0], f64::NAN, 0.0),
            Some(Anomaly::NonFinite { what: "primal residual" })
        ));
    }

    #[test]
    fn detects_divergence_past_threshold() {
        let g = Guard::new(
            GuardSettings { divergence_threshold: 100.0, ..Default::default() },
            &[0.0],
            &[0.0],
            &[0.0],
        );
        assert!(matches!(
            g.inspect(&[101.0], &[0.0], &[0.0], 0.0, 0.0),
            Some(Anomaly::Divergence { .. })
        ));
        assert!(g.inspect(&[99.0], &[0.0], &[0.0], 0.0, 0.0).is_none());
    }

    #[test]
    fn ladder_escalates_and_never_revisits_a_rung() {
        let mut g = mk_guard();
        let a = Anomaly::NonFinite { what: "iterate x" };
        assert_eq!(g.recover(&a, true), RecoveryAction::ResetIterates);
        assert_eq!(g.recover(&a, true), RecoveryAction::TightenCgTolerance);
        assert_eq!(g.recover(&a, true), RecoveryAction::FallbackToDirect);
        assert_eq!(g.recover(&a, true), RecoveryAction::Abort);
        let r = g.report();
        assert_eq!(r.faults_detected, 4);
        assert_eq!(r.iterate_resets, 3);
        assert_eq!(r.cg_tightenings, 1);
        assert_eq!(r.backend_fallbacks, 1);
    }

    #[test]
    fn direct_backend_skips_the_fallback_rung() {
        let mut g = mk_guard();
        let a = Anomaly::Divergence { norm: 1e30 };
        assert_eq!(g.recover(&a, false), RecoveryAction::ResetIterates);
        assert_eq!(g.recover(&a, false), RecoveryAction::TightenCgTolerance);
        assert_eq!(g.recover(&a, false), RecoveryAction::Abort);
    }

    #[test]
    fn backend_fault_enters_at_the_tightening_rung() {
        let mut g = mk_guard();
        let a = Anomaly::BackendFault { error: SolverError::Backend("device fault".into()) };
        assert_eq!(g.recover(&a, true), RecoveryAction::TightenCgTolerance);
        assert_eq!(g.recover(&a, true), RecoveryAction::FallbackToDirect);
        assert_eq!(g.recover(&a, true), RecoveryAction::Abort);
    }

    #[test]
    fn recovery_budget_is_enforced() {
        let mut g = Guard::new(
            GuardSettings { max_recoveries: 1, ..Default::default() },
            &[0.0],
            &[0.0],
            &[0.0],
        );
        let a = Anomaly::NonFinite { what: "iterate x" };
        assert_eq!(g.recover(&a, true), RecoveryAction::ResetIterates);
        assert_eq!(g.recover(&a, true), RecoveryAction::Abort);
        assert_eq!(g.report().faults_detected, 2);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut g = mk_guard();
        g.record_good(&[3.0, 4.0], &[5.0], &[6.0]);
        let (mut x, mut z, mut y) = (vec![0.0; 2], vec![0.0], vec![0.0]);
        g.restore(&mut x, &mut z, &mut y);
        assert_eq!(x, vec![3.0, 4.0]);
        assert_eq!(z, vec![5.0]);
        assert_eq!(y, vec![6.0]);
    }
}
