//! Checkpoint / warm-restart of an interrupted solve.
//!
//! A [`Checkpoint`] captures everything needed to resume an ADMM solve from
//! where it stopped: the unscaled iterates `x`, `y`, `z`, the base step size
//! ρ̄, and the iteration count so far. The iterates are stored *unscaled* so
//! a checkpoint survives a re-equilibration — restoring maps them back into
//! whatever scaled space the receiving solver uses, which also makes
//! checkpoints portable across backends (a PCG-backed attempt can be resumed
//! on a direct-LDLᵀ solver, the degradation path `rsqp-runtime`'s retry
//! ladder takes).
//!
//! Checkpoints serialize to a small, versioned, little-endian byte format
//! ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`]) so a runtime can
//! park them out-of-process if needed.

use crate::{Solver, SolverError};

/// Magic prefix of the serialized format.
const MAGIC: &[u8; 8] = b"RSQPCKPT";
/// Current serialization version.
const VERSION: u32 = 1;

/// A resumable snapshot of a solve, in the original (unscaled) problem
/// space. Obtain one with [`Solver::checkpoint`], resume with
/// [`Solver::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Unscaled primal iterate.
    pub x: Vec<f64>,
    /// Unscaled dual iterate.
    pub y: Vec<f64>,
    /// Unscaled slack iterate (`z ≈ Ax` after projection).
    pub z: Vec<f64>,
    /// Base step size ρ̄ at capture time (adaptive updates resume from it).
    pub rho_bar: f64,
    /// Total ADMM iterations completed before capture (informational; a
    /// resumed solve starts its own iteration count).
    pub iterations: u64,
}

impl Checkpoint {
    /// Number of primal variables.
    pub fn num_vars(&self) -> usize {
        self.x.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.y.len()
    }

    /// Serializes to the versioned little-endian byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.x.len();
        let m = self.y.len();
        let mut out = Vec::with_capacity(8 + 4 + 8 * 3 + 8 + 8 * (n + 2 * m));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(m as u64).to_le_bytes());
        out.extend_from_slice(&self.iterations.to_le_bytes());
        out.extend_from_slice(&self.rho_bar.to_le_bytes());
        for v in self.x.iter().chain(&self.y).chain(&self.z) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Checkpoint::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] for a wrong magic, an
    /// unsupported version, or a truncated / oversized payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SolverError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(SolverError::InvalidProblem(
                "checkpoint magic mismatch: not a serialized checkpoint".into(),
            ));
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SolverError::InvalidProblem(format!(
                "unsupported checkpoint version {version} (supported: {VERSION})"
            )));
        }
        let n = r.take_u64()? as usize;
        let m = r.take_u64()? as usize;
        let iterations = r.take_u64()?;
        let rho_bar = r.take_f64()?;
        let mut take_vec = |len: usize| -> Result<Vec<f64>, SolverError> {
            (0..len).map(|_| r.take_f64()).collect()
        };
        let x = take_vec(n)?;
        let y = take_vec(m)?;
        let z = take_vec(m)?;
        if r.pos != bytes.len() {
            return Err(SolverError::InvalidProblem(format!(
                "checkpoint has {} trailing bytes",
                bytes.len() - r.pos
            )));
        }
        Ok(Checkpoint { x, y, z, rho_bar, iterations })
    }

    /// Validates the snapshot against a target problem shape: dimensions
    /// must match, iterates must be finite, ρ̄ must be a positive finite
    /// number.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] describing the first
    /// violation found.
    pub fn validate(&self, n: usize, m: usize) -> Result<(), SolverError> {
        if self.x.len() != n || self.y.len() != m || self.z.len() != m {
            return Err(SolverError::InvalidProblem(format!(
                "checkpoint shape ({}, {}) does not match problem ({n}, {m})",
                self.x.len(),
                self.y.len()
            )));
        }
        let finite = |v: &[f64]| v.iter().all(|x| x.is_finite());
        if !finite(&self.x) || !finite(&self.y) || !finite(&self.z) {
            return Err(SolverError::InvalidProblem(
                "checkpoint contains non-finite iterate entries".into(),
            ));
        }
        if !(self.rho_bar.is_finite() && self.rho_bar > 0.0) {
            return Err(SolverError::InvalidProblem(format!(
                "checkpoint rho_bar {} is not a positive finite number",
                self.rho_bar
            )));
        }
        Ok(())
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, len: usize) -> Result<&[u8], SolverError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SolverError::InvalidProblem("checkpoint truncated".into()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn take_u64(&mut self) -> Result<u64, SolverError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn take_f64(&mut self) -> Result<f64, SolverError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

impl Solver {
    /// Captures a resumable snapshot of the current iterates and step size,
    /// in the original (unscaled) problem space.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            x: self.unscaled_x(),
            y: self.unscaled_y(),
            z: self.unscaled_z(),
            rho_bar: self.rho_bar(),
            iterations: self.total_iterations(),
        }
    }

    /// Restores iterates and ρ̄ from a checkpoint, warm-starting the next
    /// [`Solver::solve`] call from where the captured solve stopped. The
    /// checkpoint may come from a solver with a different backend or
    /// scaling — iterates are re-scaled into this solver's space.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] when the checkpoint fails
    /// [`Checkpoint::validate`] against this solver's problem, or a backend
    /// error if the ρ refresh fails to refactorize.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), SolverError> {
        ckpt.validate(self.problem().num_vars(), self.problem().num_constraints())?;
        if ckpt.rho_bar != self.rho_bar() {
            self.update_rho(ckpt.rho_bar)?;
        }
        self.restore_iterates(&ckpt.x, &ckpt.y, &ckpt.z, ckpt.iterations);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            x: vec![1.0, -2.5],
            y: vec![0.25, 0.0, 9.0],
            z: vec![1.0, 2.0, 3.0],
            rho_bar: 0.1,
            iterations: 42,
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut b = sample().to_bytes();
        b[0] = b'X';
        let err = Checkpoint::from_bytes(&b).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut b = sample().to_bytes();
        b[8] = 99;
        let err = Checkpoint::from_bytes(&b).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncation_is_rejected() {
        let b = sample().to_bytes();
        for cut in [0, 7, 11, 20, b.len() - 1] {
            assert!(Checkpoint::from_bytes(&b[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut b = sample().to_bytes();
        b.push(0);
        let err = Checkpoint::from_bytes(&b).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn validate_checks_shape_finiteness_and_rho() {
        let c = sample();
        assert!(c.validate(2, 3).is_ok());
        assert!(c.validate(3, 3).is_err());
        assert!(c.validate(2, 2).is_err());
        let mut bad = sample();
        bad.x[0] = f64::NAN;
        assert!(bad.validate(2, 3).is_err());
        let mut bad = sample();
        bad.rho_bar = -1.0;
        assert!(bad.validate(2, 3).is_err());
        let mut bad = sample();
        bad.rho_bar = f64::INFINITY;
        assert!(bad.validate(2, 3).is_err());
    }
}
