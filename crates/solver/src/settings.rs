use crate::guard::GuardSettings;
use crate::SolverError;

/// Which KKT backend [`crate::Solver::new`] constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinSysKind {
    /// Sparse quasi-definite LDLᵀ (OSQP CPU default).
    #[default]
    DirectLdlt,
    /// Matrix-free PCG on the reduced KKT system (cuOSQP / RSQP path).
    CpuPcg,
}

/// Fill-reducing ordering applied to the KKT matrix by the direct backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KktOrdering {
    /// No reordering.
    Natural,
    /// Reverse-Cuthill-McKee (bandwidth reduction).
    Rcm,
    /// Classical minimum degree with dense-row deferral (AMD stand-in,
    /// OSQP's default pairing with QDLDL).
    #[default]
    MinDegree,
}

/// Tolerance policy for the inner PCG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CgTolerance {
    /// Fixed relative tolerance `‖r‖ < eps·‖b‖` every ADMM iteration.
    Fixed(f64),
    /// Adaptive tolerance tied to the outer residuals (the cuOSQP scheme):
    /// `eps_k = clamp(fraction · √(r_prim · r_dual), min, start)`, updated at
    /// every termination check.
    Adaptive {
        /// Multiplier on the geometric mean of the ADMM residuals.
        fraction: f64,
        /// Tolerance floor.
        min: f64,
        /// Tolerance before the first termination check.
        start: f64,
    },
}

impl Default for CgTolerance {
    fn default() -> Self {
        CgTolerance::Adaptive { fraction: 0.15, min: 1e-10, start: 1e-5 }
    }
}

/// Solver settings (defaults follow OSQP).
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    /// Initial ADMM step size ρ.
    pub rho: f64,
    /// Regularization σ added to `P` in the KKT matrix.
    pub sigma: f64,
    /// Relaxation parameter α ∈ (0, 2).
    pub alpha: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Absolute termination tolerance.
    pub eps_abs: f64,
    /// Relative termination tolerance.
    pub eps_rel: f64,
    /// Primal-infeasibility certificate tolerance.
    pub eps_prim_inf: f64,
    /// Dual-infeasibility certificate tolerance.
    pub eps_dual_inf: f64,
    /// Number of Ruiz equilibration iterations (0 disables scaling).
    pub scaling_iters: usize,
    /// Enables adaptive ρ updates.
    pub adaptive_rho: bool,
    /// Iterations between ρ-update evaluations.
    pub adaptive_rho_interval: usize,
    /// ρ changes only when the proposed value differs by more than this
    /// multiplicative factor.
    pub adaptive_rho_tolerance: f64,
    /// Iterations between termination checks.
    pub check_termination: usize,
    /// Which linear-system backend to build.
    pub linsys: LinSysKind,
    /// Fill-reducing ordering for the direct backend.
    pub ordering: KktOrdering,
    /// Inner-PCG tolerance policy (only used by PCG-style backends).
    pub cg_tolerance: CgTolerance,
    /// Inner-PCG iteration cap per ADMM iteration.
    pub cg_max_iter: usize,
    /// Runs solution polishing after a successful solve.
    pub polish: bool,
    /// Regularization δ used by the polishing KKT system.
    pub polish_delta: f64,
    /// Iterative-refinement sweeps during polishing.
    pub polish_refine_iters: usize,
    /// Optional wall-clock budget for `solve` (checked at termination
    /// checks; `None` disables the limit).
    pub time_limit: Option<std::time::Duration>,
    /// Numerical-guard and recovery-ladder configuration.
    pub guard: GuardSettings,
    /// Worker threads for the parallel CPU kernels used by PCG-style
    /// backends (`0` = auto-detect from the host, capped at 8; `1` =
    /// strictly serial). Results are bit-identical regardless of the value —
    /// see the determinism contract in `rsqp-par`.
    pub threads: usize,
    /// Collects a full [`rsqp_obs::SolveTrace`] (phase spans, per-iteration
    /// residuals and PCG counts, ρ-update and guard events) on the returned
    /// `SolveResult`. Off by default: when disabled the solve allocates
    /// nothing for telemetry and the hot path is unchanged (the zero-alloc
    /// proof in `tests/zero_alloc.rs` runs with this setting off).
    pub trace: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iter: 4000,
            eps_abs: 1e-3,
            eps_rel: 1e-3,
            eps_prim_inf: 1e-4,
            eps_dual_inf: 1e-4,
            scaling_iters: 10,
            adaptive_rho: true,
            adaptive_rho_interval: 50,
            adaptive_rho_tolerance: 5.0,
            check_termination: 25,
            linsys: LinSysKind::DirectLdlt,
            ordering: KktOrdering::default(),
            cg_tolerance: CgTolerance::default(),
            cg_max_iter: 2000,
            polish: false,
            polish_delta: 1e-6,
            polish_refine_iters: 3,
            time_limit: None,
            guard: GuardSettings::default(),
            threads: 1,
            trace: false,
        }
    }
}

impl Settings {
    /// Resolves [`Settings::threads`] to a concrete pool size: `0` means
    /// "one per available core, capped at 8"; any other value is taken
    /// verbatim.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => rsqp_par::available_threads().min(8),
            t => t,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidSetting`] for out-of-range values
    /// (`rho ≤ 0`, `sigma ≤ 0`, `alpha ∉ (0, 2)`, zero intervals, negative
    /// tolerances).
    pub fn validate(&self) -> Result<(), SolverError> {
        if self.rho <= 0.0 {
            return Err(SolverError::InvalidSetting("rho must be positive".into()));
        }
        if self.sigma <= 0.0 {
            return Err(SolverError::InvalidSetting("sigma must be positive".into()));
        }
        if !(self.alpha > 0.0 && self.alpha < 2.0) {
            return Err(SolverError::InvalidSetting("alpha must lie in (0, 2)".into()));
        }
        if self.max_iter == 0 {
            return Err(SolverError::InvalidSetting("max_iter must be positive".into()));
        }
        if self.eps_abs < 0.0 || self.eps_rel < 0.0 || (self.eps_abs == 0.0 && self.eps_rel == 0.0)
        {
            return Err(SolverError::InvalidSetting(
                "eps_abs/eps_rel must be non-negative and not both zero".into(),
            ));
        }
        if self.check_termination == 0 {
            return Err(SolverError::InvalidSetting("check_termination must be positive".into()));
        }
        if self.adaptive_rho_interval == 0 {
            return Err(SolverError::InvalidSetting(
                "adaptive_rho_interval must be positive".into(),
            ));
        }
        if self.adaptive_rho_tolerance < 1.0 {
            return Err(SolverError::InvalidSetting("adaptive_rho_tolerance must be >= 1".into()));
        }
        if self.polish_delta <= 0.0 {
            return Err(SolverError::InvalidSetting("polish_delta must be positive".into()));
        }
        match self.cg_tolerance {
            CgTolerance::Fixed(eps) if eps <= 0.0 => {
                return Err(SolverError::InvalidSetting(
                    "fixed CG tolerance must be positive".into(),
                ))
            }
            CgTolerance::Adaptive { fraction, min, start }
                if fraction <= 0.0 || min <= 0.0 || start < min =>
            {
                return Err(SolverError::InvalidSetting(
                    "adaptive CG tolerance parameters out of range".into(),
                ))
            }
            _ => {}
        }
        let thr = self.guard.divergence_threshold;
        if !thr.is_finite() || thr <= 0.0 {
            return Err(SolverError::InvalidSetting(
                "guard divergence_threshold must be positive and finite".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        Settings::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_alpha() {
        let s = Settings { alpha: 2.0, ..Default::default() };
        assert!(s.validate().is_err());
        let s = Settings { alpha: 0.0, ..Default::default() };
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_bad_rho_sigma() {
        assert!(Settings { rho: 0.0, ..Default::default() }.validate().is_err());
        assert!(Settings { sigma: -1.0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn rejects_zero_intervals() {
        assert!(Settings { check_termination: 0, ..Default::default() }.validate().is_err());
        assert!(Settings { adaptive_rho_interval: 0, ..Default::default() }.validate().is_err());
        assert!(Settings { max_iter: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn rejects_bad_tolerances() {
        assert!(Settings { eps_abs: 0.0, eps_rel: 0.0, ..Default::default() }.validate().is_err());
        assert!(Settings { cg_tolerance: CgTolerance::Fixed(0.0), ..Default::default() }
            .validate()
            .is_err());
        assert!(Settings {
            cg_tolerance: CgTolerance::Adaptive { fraction: 0.1, min: 1e-3, start: 1e-5 },
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn rejects_bad_guard_threshold() {
        use crate::guard::GuardSettings;
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let s = Settings {
                guard: GuardSettings { divergence_threshold: bad, ..Default::default() },
                ..Default::default()
            };
            assert!(s.validate().is_err(), "threshold {bad} accepted");
        }
    }
}
