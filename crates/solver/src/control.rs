//! Cooperative cancellation and per-solve budgets.
//!
//! ADMM is an anytime algorithm: stopping at an iteration boundary always
//! leaves a well-defined (if unconverged) iterate. [`SolveControl`] exploits
//! that: a caller hands the solver a budget — a wall-clock deadline, an
//! iteration cap, a [`CancelToken`] another thread may trip — and the solver
//! checks it cooperatively at every iteration boundary, returning promptly
//! with a definite [`Status`] instead of being killed mid-factorization.
//!
//! This is the mechanism the `rsqp-runtime` crate's job budgets are built
//! on; it involves no signals, no thread aborts, and no unsafe code.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::Status;

/// A shareable, monotonic cancellation flag.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag. Once
/// cancelled, a token stays cancelled — there is no reset, so a token is
/// per-solve (or per-job), not reusable across logical attempts.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Safe to call from any thread, any number of times.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A per-solve budget checked cooperatively at ADMM iteration boundaries.
///
/// The default value is unbounded: no deadline, no extra iteration cap, no
/// cancellation. All limits compose with [`Settings`](crate::Settings) —
/// e.g. the effective wall-clock budget is the tighter of
/// [`Settings::time_limit`](crate::Settings) and [`SolveControl::deadline`].
#[derive(Debug, Clone, Default)]
pub struct SolveControl {
    /// Cooperative cancellation flag, checked once per ADMM iteration.
    pub cancel: Option<CancelToken>,
    /// Absolute wall-clock deadline. Unlike `Settings::time_limit` (a
    /// duration relative to the start of each `solve` call), a deadline is
    /// fixed in time and therefore survives retries: a retried attempt gets
    /// only the time that is actually left.
    pub deadline: Option<Instant>,
    /// Additional iteration cap, combined with `Settings::max_iter` by
    /// taking the minimum.
    pub iter_cap: Option<usize>,
}

impl SolveControl {
    /// A control with no limits — `solve` behaves as if uncontrolled.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the number of ADMM iterations this call may run.
    #[must_use]
    pub fn with_iter_cap(mut self, cap: usize) -> Self {
        self.iter_cap = Some(cap);
        self
    }

    /// Returns the terminal status to stop with if a budget is exhausted
    /// right now, or `None` to keep iterating. Cancellation wins over the
    /// deadline so an explicit abort is reported as such.
    pub(crate) fn check(&self, now: Instant) -> Option<Status> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(Status::Cancelled);
        }
        if self.deadline.is_some_and(|d| now >= d) {
            return Some(Status::TimeLimitReached);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_monotonic() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn unbounded_control_never_stops() {
        let c = SolveControl::unbounded();
        assert_eq!(c.check(Instant::now()), None);
    }

    #[test]
    fn cancellation_beats_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let c = SolveControl::unbounded()
            .with_cancel(token)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(c.check(Instant::now()), Some(Status::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_time_limit() {
        let c = SolveControl::unbounded().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.check(Instant::now()), Some(Status::TimeLimitReached));
    }

    #[test]
    fn future_deadline_keeps_running() {
        let c = SolveControl::unbounded().with_timeout(Duration::from_secs(3600));
        assert_eq!(c.check(Instant::now()), None);
    }
}
