//! The ADMM iteration (Algorithm 1 of the paper).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rsqp_obs::{IterationTrace, SolveTrace, SpanId, SpanRecord, Timeline, TraceEvent};
use rsqp_sparse::{CsrMatrix, TransposeCache};

use crate::backend::{BackendStats, CpuPcgBackend, DirectLdltBackend, KktBackend};
use crate::control::SolveControl;
use crate::guard::{Anomaly, Guard, GuardReport, RecoveryAction};
use crate::infeasibility::{dual_certificate, primal_certificate};
use crate::rho::ConstraintKind;
use crate::settings::{CgTolerance, LinSysKind};
use crate::termination::{residuals, ResidualInfo};
use crate::workspace::IterateWorkspace;
use crate::{QpProblem, RhoManager, Scaling, Settings, SolverError, Status};

/// Floor for guard-driven CG tolerance tightening.
const GUARD_CG_FLOOR: f64 = 1e-12;
/// Multiplier applied to the CG tolerance at the tightening rung.
const GUARD_CG_SHRINK: f64 = 1e-2;

/// Trace-event kind for a recovery-ladder action label.
fn recovery_kind(action: &str) -> &'static str {
    if action == "fallback_to_direct" {
        "backend_fallback"
    } else {
        "guard_recovery"
    }
}

/// Wall-clock breakdown of a solve, used to reproduce Figure 8 (the share of
/// solver time spent in the KKT solve).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    /// Time spent in `Solver::new` (scaling + backend setup).
    pub setup: Duration,
    /// Total time inside `solve`.
    pub solve: Duration,
    /// Portion of `solve` spent inside the KKT backend.
    pub kkt_solve: Duration,
}

impl TimingBreakdown {
    /// Fraction of solve time spent solving KKT systems, in `[0, 1]`.
    pub fn kkt_fraction(&self) -> f64 {
        if self.solve.is_zero() {
            0.0
        } else {
            self.kkt_solve.as_secs_f64() / self.solve.as_secs_f64()
        }
    }
}

/// Outcome of [`Solver::solve`]. All vectors are in the original (unscaled)
/// problem space.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Termination status.
    pub status: Status,
    /// Primal solution estimate.
    pub x: Vec<f64>,
    /// Dual solution estimate.
    pub y: Vec<f64>,
    /// Constraint activation `z ≈ Ax`.
    pub z: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// ADMM iterations performed.
    pub iterations: usize,
    /// Final unscaled primal residual.
    pub prim_res: f64,
    /// Final unscaled dual residual.
    pub dual_res: f64,
    /// Number of accepted adaptive-ρ updates.
    pub rho_updates: usize,
    /// Whether solution polishing ran and improved the iterate.
    pub polished: bool,
    /// Numerical-guard interventions (resets, tolerance tightenings,
    /// backend fallbacks) during this solve.
    pub guard: GuardReport,
    /// Work counters from the KKT backend (summed over a backend replaced
    /// by the recovery ladder and its successor).
    pub backend: BackendStats,
    /// Wall-clock breakdown.
    pub timings: TimingBreakdown,
    /// Full telemetry record of the solve (phase spans, per-iteration
    /// residuals and PCG counts, ρ-update and guard events). `Some` only
    /// when [`Settings::trace`] was enabled.
    pub trace: Option<SolveTrace>,
}

impl std::fmt::Display for SolveResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "status: {} | iters: {} | obj: {:.6e} | pri res: {:.3e} | dua res: {:.3e}{}{}{}",
            self.status,
            self.iterations,
            self.objective,
            self.prim_res,
            self.dual_res,
            if self.polished { " | polished" } else { "" },
            if self.rho_updates > 0 {
                format!(" | rho updates: {}", self.rho_updates)
            } else {
                String::new()
            },
            if self.guard.intervened() {
                format!(" | recoveries: {}", self.guard.faults_detected)
            } else {
                String::new()
            }
        )
    }
}

/// In-flight telemetry while a traced solve runs. Lives entirely on the
/// `solve_with_control` stack; when [`Settings::trace`] is off it is never
/// constructed, so a disabled solve performs no telemetry allocations.
struct TraceBuilder {
    timeline: Timeline,
    loop_span: SpanId,
    trace: SolveTrace,
}

impl TraceBuilder {
    fn event(&mut self, iter: usize, kind: &str, detail: String) {
        self.trace.events.push(TraceEvent { iter: iter as u64, kind: kind.to_string(), detail });
    }
}

/// An OSQP-style ADMM solver bound to one problem instance.
///
/// The solver keeps its iterates between [`Solver::solve`] calls, so
/// parametric re-solves (after [`Solver::update_bounds`] /
/// [`Solver::update_q`]) are automatically warm-started — the usage pattern
/// that amortizes RSQP's hardware-generation time in the paper's portfolio
/// backtesting example.
pub struct Solver {
    settings: Settings,
    /// Original problem, shared — retries and concurrent services hold the
    /// same `Arc` instead of deep-copying the matrices per solver.
    orig: Arc<QpProblem>,
    // Scaled problem data.
    p: CsrMatrix,
    q: Vec<f64>,
    a: CsrMatrix,
    /// Cached gather transpose of the scaled `A`, used for every `Aᵀy`
    /// product in residual and certificate computations.
    at_cache: TransposeCache,
    l: Vec<f64>,
    u: Vec<f64>,
    scaling: Scaling,
    rho_mgr: RhoManager,
    backend: Box<dyn KktBackend>,
    // Scaled iterates.
    x: Vec<f64>,
    z: Vec<f64>,
    y: Vec<f64>,
    /// Pre-sized per-iteration scratch (kept across `solve` calls).
    ws: IterateWorkspace,
    setup_time: Duration,
    /// Portion of `setup_time` spent in Ruiz equilibration (trace span).
    scaling_time: Duration,
    /// Work counters of backends retired by the recovery ladder.
    retired_stats: BackendStats,
    /// ADMM iterations accumulated across `solve` calls (checkpoint
    /// metadata; restored by [`Solver::restore`]).
    total_iterations: u64,
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("n", &self.orig.num_vars())
            .field("m", &self.orig.num_constraints())
            .field("backend", &self.backend.name())
            .finish_non_exhaustive()
    }
}

impl Solver {
    /// Sets up the solver: validates settings, equilibrates the problem, and
    /// builds the backend selected by [`Settings::linsys`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid settings or a failed factorization.
    pub fn new(problem: &QpProblem, settings: Settings) -> Result<Self, SolverError> {
        Self::new_shared(Arc::new(problem.clone()), settings)
    }

    /// Like [`Solver::new`], but sharing an existing `Arc<QpProblem>` —
    /// retries, resumes, and concurrent services reuse one copy of the
    /// problem data instead of deep-copying the matrices per solver.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid settings or a failed factorization.
    pub fn new_shared(problem: Arc<QpProblem>, settings: Settings) -> Result<Self, SolverError> {
        let kind = settings.linsys;
        Self::with_backend_shared(problem, settings, &mut |p, a, sigma, rho, s| match kind {
            LinSysKind::DirectLdlt => {
                Ok(Box::new(DirectLdltBackend::with_ordering(p, a, sigma, rho, s.ordering)?))
            }
            LinSysKind::CpuPcg => {
                let eps = match s.cg_tolerance {
                    CgTolerance::Fixed(e) => e,
                    CgTolerance::Adaptive { start, .. } => start,
                };
                Ok(Box::new(CpuPcgBackend::with_threads(
                    p,
                    a,
                    sigma,
                    rho,
                    eps,
                    s.cg_max_iter,
                    s.resolved_threads(),
                )))
            }
        })
    }

    /// Sets up the solver with a caller-provided backend factory (used by
    /// `rsqp-core` to inject the simulated-FPGA backend).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid settings or a factory failure.
    pub fn with_backend(
        problem: &QpProblem,
        settings: Settings,
        factory: &mut dyn FnMut(
            &CsrMatrix,
            &CsrMatrix,
            f64,
            &[f64],
            &Settings,
        ) -> Result<Box<dyn KktBackend>, SolverError>,
    ) -> Result<Self, SolverError> {
        Self::with_backend_shared(Arc::new(problem.clone()), settings, factory)
    }

    /// [`Solver::with_backend`] over a shared `Arc<QpProblem>`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid settings or a factory failure.
    pub fn with_backend_shared(
        problem: Arc<QpProblem>,
        settings: Settings,
        factory: &mut dyn FnMut(
            &CsrMatrix,
            &CsrMatrix,
            f64,
            &[f64],
            &Settings,
        ) -> Result<Box<dyn KktBackend>, SolverError>,
    ) -> Result<Self, SolverError> {
        let start = Instant::now();
        settings.validate()?;
        let n = problem.num_vars();
        let m = problem.num_constraints();

        let t_scaling = Instant::now();
        let (scaling, p, q, a) = if settings.scaling_iters > 0 {
            let (sc, data) =
                Scaling::ruiz(problem.p(), problem.q(), problem.a(), settings.scaling_iters);
            (sc, data.p, data.q, data.a)
        } else {
            (
                Scaling::identity(n, m),
                problem.p().clone(),
                problem.q().to_vec(),
                problem.a().clone(),
            )
        };
        let scaling_time = t_scaling.elapsed();
        let (l, u) = scaling.scale_bounds(problem.l(), problem.u());
        let rho_mgr = RhoManager::new(settings.rho, &l, &u);
        let backend = factory(&p, &a, settings.sigma, rho_mgr.rho_vec(), &settings)?;
        let at_cache = TransposeCache::new(&a);
        Ok(Solver {
            settings,
            orig: problem,
            p,
            q,
            a,
            at_cache,
            l,
            u,
            scaling,
            rho_mgr,
            backend,
            x: vec![0.0; n],
            z: vec![0.0; m],
            y: vec![0.0; m],
            ws: IterateWorkspace::new(n, m),
            setup_time: start.elapsed(),
            scaling_time,
            retired_stats: BackendStats::default(),
            total_iterations: 0,
        })
    }

    /// The problem this solver was set up for.
    pub fn problem(&self) -> &QpProblem {
        &self.orig
    }

    /// The active backend's name.
    pub fn backend_name(&self) -> &str {
        self.backend.name()
    }

    /// Warm-starts the iterates from an unscaled primal/dual guess.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] on length mismatches or
    /// non-finite entries (a NaN warm start would silently poison every
    /// subsequent iterate).
    pub fn warm_start(&mut self, x: &[f64], y: &[f64]) -> Result<(), SolverError> {
        if x.len() != self.x.len() || y.len() != self.y.len() {
            return Err(SolverError::InvalidProblem(format!(
                "warm-start lengths ({}, {}) do not match problem ({}, {})",
                x.len(),
                y.len(),
                self.x.len(),
                self.y.len()
            )));
        }
        if let Some(j) = x.iter().position(|v| !v.is_finite()) {
            return Err(SolverError::InvalidProblem(format!(
                "warm-start x[{j}] = {} is not finite",
                x[j]
            )));
        }
        if let Some(i) = y.iter().position(|v| !v.is_finite()) {
            return Err(SolverError::InvalidProblem(format!(
                "warm-start y[{i}] = {} is not finite",
                y[i]
            )));
        }
        self.x = self.scaling.scale_x(x);
        self.y = self.scaling.scale_y(y);
        self.a.spmv(&self.x, &mut self.z)?;
        Ok(())
    }

    /// Resets the iterates to zero (cold start).
    pub fn cold_start(&mut self) {
        self.x.fill(0.0);
        self.z.fill(0.0);
        self.y.fill(0.0);
    }

    /// The current base step size ρ̄.
    pub fn rho_bar(&self) -> f64 {
        self.rho_mgr.rho_bar()
    }

    /// The per-constraint ρ vector currently installed in the backend.
    pub fn rho_vec(&self) -> &[f64] {
        self.rho_mgr.rho_vec()
    }

    /// The per-constraint classification (equality / inequality / loose)
    /// the ρ vector is derived from. Classification happens on the *scaled*
    /// bounds, so a re-equilibration (e.g. after
    /// [`Solver::update_matrices`]) may legitimately change it.
    pub fn constraint_kinds(&self) -> &[ConstraintKind] {
        self.rho_mgr.kinds()
    }

    /// A clone of the shared problem handle, reflecting every parametric
    /// update applied so far. Sessions use this to keep their own `Arc` in
    /// sync after updates go through the solver (whose copy-on-write may
    /// have detached from the originally shared allocation).
    pub fn problem_shared(&self) -> Arc<QpProblem> {
        Arc::clone(&self.orig)
    }

    /// Total ADMM iterations accumulated across all `solve` calls on this
    /// instance (checkpoint metadata).
    pub fn total_iterations(&self) -> u64 {
        self.total_iterations
    }

    pub(crate) fn unscaled_x(&self) -> Vec<f64> {
        self.scaling.unscale_x(&self.x)
    }

    pub(crate) fn unscaled_y(&self) -> Vec<f64> {
        self.scaling.unscale_y(&self.y)
    }

    pub(crate) fn unscaled_z(&self) -> Vec<f64> {
        self.scaling.unscale_z(&self.z)
    }

    /// Installs unscaled iterates verbatim (checkpoint restore). Unlike
    /// [`Solver::warm_start`], the slack `z` is restored exactly rather
    /// than recomputed as `Ax` — mid-ADMM the two differ, and resuming must
    /// not perturb the dual update. Inputs are pre-validated by
    /// [`crate::Checkpoint::validate`].
    pub(crate) fn restore_iterates(&mut self, x: &[f64], y: &[f64], z: &[f64], iters: u64) {
        self.x = self.scaling.scale_x(x);
        self.y = self.scaling.scale_y(y);
        self.z = self.scaling.scale_z(z);
        self.total_iterations = iters;
    }

    /// Replaces the constraint bounds (same structure), re-deriving the
    /// per-constraint ρ classification.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid bounds or a failed refactorization.
    pub fn update_bounds(&mut self, l: Vec<f64>, u: Vec<f64>) -> Result<(), SolverError> {
        Arc::make_mut(&mut self.orig).update_bounds(l, u)?;
        let (ls, us) = self.scaling.scale_bounds(self.orig.l(), self.orig.u());
        self.l = ls;
        self.u = us;
        let old = self.rho_mgr.rho_vec().to_vec();
        self.rho_mgr.update_bounds(&self.l, &self.u);
        if self.rho_mgr.rho_vec() != old.as_slice() {
            self.backend.update_rho(self.rho_mgr.rho_vec())?;
        }
        Ok(())
    }

    /// Replaces the values of `P` and/or `A` (same sparsity structure),
    /// re-runs the equilibration on the new data, and pushes the refreshed
    /// matrices into the backend — OSQP's `update_P_A`. The customized
    /// architecture (which depends only on the structure) stays valid.
    ///
    /// # Errors
    ///
    /// Returns an error if a replacement changes the structure or the
    /// backend fails to refactorize.
    pub fn update_matrices(
        &mut self,
        p_new: Option<CsrMatrix>,
        a_new: Option<CsrMatrix>,
    ) -> Result<(), SolverError> {
        Arc::make_mut(&mut self.orig).update_matrices(p_new, a_new)?;
        // Re-equilibrate on the new values.
        let n = self.orig.num_vars();
        let m = self.orig.num_constraints();
        let (scaling, p, q, a) = if self.settings.scaling_iters > 0 {
            let (sc, data) = Scaling::ruiz(
                self.orig.p(),
                self.orig.q(),
                self.orig.a(),
                self.settings.scaling_iters,
            );
            (sc, data.p, data.q, data.a)
        } else {
            (
                Scaling::identity(n, m),
                self.orig.p().clone(),
                self.orig.q().to_vec(),
                self.orig.a().clone(),
            )
        };
        // Map current iterates into the new scaled space so warm starts
        // survive the update. The slack z is carried through the scaling
        // change like x/y — mid-ADMM it is the *projected* iterate, distinct
        // from A·x̄, and recomputing it would leave the restart outside
        // [l, u].
        let x_un = self.scaling.unscale_x(&self.x);
        let y_un = self.scaling.unscale_y(&self.y);
        let z_un = self.scaling.unscale_z(&self.z);
        self.scaling = scaling;
        self.p = p;
        self.q = q;
        self.a = a;
        let (ls, us) = self.scaling.scale_bounds(self.orig.l(), self.orig.u());
        self.l = ls;
        self.u = us;
        self.x = self.scaling.scale_x(&x_un);
        self.y = self.scaling.scale_y(&y_un);
        self.z = self.scaling.scale_z(&z_un);
        // The ρ classification is derived from the *scaled* bounds, and the
        // new equilibration can move a constraint across the equality/loose
        // thresholds — re-derive it before the backend sees ρ.
        self.rho_mgr.update_bounds(&self.l, &self.u);
        // Same sparsity structure by contract, so the cached transpose only
        // needs its values regathered.
        self.at_cache.refresh_values(&self.a)?;
        self.backend.update_matrices(&self.p, &self.a, self.rho_mgr.rho_vec())?;
        Ok(())
    }

    /// Replaces the linear cost `q`.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch.
    pub fn update_q(&mut self, q: Vec<f64>) -> Result<(), SolverError> {
        Arc::make_mut(&mut self.orig).update_q(q)?;
        // q̄ = c·D·q
        self.q = self
            .orig
            .q()
            .iter()
            .zip(self.scaling.d())
            .map(|(&v, &d)| v * d * self.scaling.c())
            .collect();
        Ok(())
    }

    /// Manually sets the base step size ρ̄ (OSQP's `update_rho`), rebuilding
    /// the per-constraint vector and informing the backend. Disables nothing:
    /// adaptive updates (if enabled) continue from the new value.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive values or a failed backend
    /// refactorization.
    pub fn update_rho(&mut self, rho_bar: f64) -> Result<(), SolverError> {
        if rho_bar <= 0.0 {
            return Err(SolverError::InvalidSetting("rho must be positive".into()));
        }
        // In-place rebuild: the classification is unchanged (bounds did not
        // move), the buffers are reused, and the adaptive-update counter
        // survives — parametric update→re-solve loops stay allocation-free.
        self.rho_mgr.set_rho_bar(rho_bar);
        self.backend.update_rho(self.rho_mgr.rho_vec())?;
        Ok(())
    }

    /// Runs the ADMM iteration until convergence, an infeasibility
    /// certificate, or the iteration cap.
    ///
    /// # Errors
    ///
    /// Returns an error only on backend failure (e.g. a refactorization
    /// failing after a ρ update).
    pub fn solve(&mut self) -> Result<SolveResult, SolverError> {
        self.solve_with_control(&SolveControl::unbounded())
    }

    /// Like [`Solver::solve`], but under a caller-provided budget: a
    /// wall-clock deadline, an iteration cap, and/or a cancellation token
    /// another thread may trip. The budget is checked cooperatively at every
    /// ADMM iteration boundary — including after guard recoveries and the
    /// PCG→LDLᵀ fallback refactorization — so an expired budget surfaces as
    /// [`Status::Cancelled`] / [`Status::TimeLimitReached`] promptly and
    /// with well-defined iterates, never as a mid-iteration abort.
    ///
    /// # Errors
    ///
    /// Returns an error only on backend failure; budget exhaustion is a
    /// status, not an error.
    pub fn solve_with_control(
        &mut self,
        control: &SolveControl,
    ) -> Result<SolveResult, SolverError> {
        let t_start = Instant::now();
        let mut kkt_time = Duration::ZERO;
        let n = self.x.len();
        let m = self.z.len();
        let s = self.settings.clone();

        // Unified wall-clock budget: the tighter of the relative
        // `Settings::time_limit` and the absolute control deadline.
        let mut budget = control.clone();
        if let Some(limit) = s.time_limit {
            let from_settings = t_start + limit;
            budget.deadline = Some(budget.deadline.map_or(from_settings, |d| d.min(from_settings)));
        }
        let max_iter = control.iter_cap.map_or(s.max_iter, |cap| cap.min(s.max_iter)).max(1);

        let mut cg_eps = match s.cg_tolerance {
            CgTolerance::Adaptive { start, .. } => {
                self.backend.set_cg_tolerance(start);
                start
            }
            CgTolerance::Fixed(e) => e,
        };
        let mut last_res = f64::INFINITY;

        let mut status = Status::MaxIterationsReached;
        let mut iterations = max_iter;
        let mut last_info: Option<ResidualInfo> = None;
        let mut last_rho_iter = 0usize;
        let mut guard = if s.guard.enabled {
            Some(Guard::new(s.guard, &self.x, &self.z, &self.y))
        } else {
            None
        };
        let mut tracer: Option<TraceBuilder> = if s.trace {
            let mut timeline = Timeline::new();
            timeline.start("solve");
            let loop_span = timeline.start("admm_loop");
            Some(TraceBuilder {
                timeline,
                loop_span,
                trace: SolveTrace {
                    problem: self.orig.name().to_string(),
                    n,
                    m,
                    ..SolveTrace::default()
                },
            })
        } else {
            None
        };

        for k in 1..=max_iter {
            // Budget check at the iteration boundary. This also catches a
            // deadline that expired *inside* the previous KKT solve or a
            // guard recovery (e.g. the fallback LDLᵀ refactorization), so no
            // code path can overrun the budget by more than one iteration.
            if let Some(stop) = budget.check(Instant::now()) {
                status = stop;
                iterations = k - 1;
                break;
            }

            self.ws.prev_x.copy_from_slice(&self.x);
            self.ws.prev_y.copy_from_slice(&self.y);

            let cg_before = if tracer.is_some() { self.backend.stats().cg_iterations } else { 0 };
            let t = Instant::now();
            let kkt_result = self.backend.solve_kkt(
                &self.x,
                &self.z,
                &self.y,
                &self.q,
                &mut self.ws.xtilde,
                &mut self.ws.ztilde,
            );
            let kkt_elapsed = t.elapsed();
            kkt_time += kkt_elapsed;
            if let Err(e) = kkt_result {
                match guard.as_mut() {
                    Some(g) if e.is_recoverable() => {
                        if let Some(action) = self.apply_recovery(
                            g,
                            &Anomaly::BackendFault { error: e },
                            &mut cg_eps,
                        )? {
                            if let Some(tb) = tracer.as_mut() {
                                tb.event(k, recovery_kind(action), action.to_string());
                            }
                            continue;
                        }
                        status = Status::NumericalError;
                        iterations = k;
                        break;
                    }
                    _ => return Err(e),
                }
            }
            if let Some(tb) = tracer.as_mut() {
                tb.trace.records.push(IterationTrace {
                    iter: k as u64,
                    cg_iters: self.backend.stats().cg_iterations.saturating_sub(cg_before) as u64,
                    kkt_ns: kkt_elapsed.as_nanos() as u64,
                    rho_bar: self.rho_mgr.rho_bar(),
                    prim_res: f64::NAN,
                    dual_res: f64::NAN,
                });
            }

            // x^{k+1} = α x̃ + (1−α) x^k        (Algorithm 1, line 5)
            for j in 0..n {
                self.x[j] = s.alpha * self.ws.xtilde[j] + (1.0 - s.alpha) * self.x[j];
            }
            // z^{k+1} = Π(α z̃ + (1−α) z^k + ρ⁻¹ y^k)   (line 6)
            // y^{k+1} = ρ ∘ (candidate − z^{k+1})        (line 7, rearranged)
            let rho_inv = self.rho_mgr.rho_inv_vec();
            let rho_vec = self.rho_mgr.rho_vec();
            for i in 0..m {
                self.ws.zcand[i] = s.alpha * self.ws.ztilde[i]
                    + (1.0 - s.alpha) * self.z[i]
                    + rho_inv[i] * self.y[i];
                self.z[i] = self.ws.zcand[i].max(self.l[i]).min(self.u[i]);
                self.y[i] = rho_vec[i] * (self.ws.zcand[i] - self.z[i]);
            }

            let checking = k % s.check_termination == 0 || k == max_iter;
            if !checking {
                continue;
            }

            // Residuals (unscaled) from scaled intermediates. `Aᵀy` goes
            // through the cached gather transpose (bit-identical to the
            // scatter kernel, but sequential in memory).
            self.a.spmv(&self.x, &mut self.ws.ax)?;
            self.p.spmv(&self.x, &mut self.ws.px)?;
            self.at_cache.spmv(&self.y, &mut self.ws.aty)?;
            let info = residuals(
                &self.scaling,
                &self.ws.ax,
                &self.z,
                &self.ws.px,
                &self.ws.aty,
                &self.q,
                s.eps_abs,
                s.eps_rel,
            );
            last_info = Some(info);
            if let Some(tb) = tracer.as_mut() {
                if let Some(r) = tb.trace.records.last_mut() {
                    r.prim_res = info.prim;
                    r.dual_res = info.dual;
                }
            }

            if let Some(g) = guard.as_mut() {
                if let Some(anomaly) = g.inspect(&self.x, &self.z, &self.y, info.prim, info.dual) {
                    if let Some(action) = self.apply_recovery(g, &anomaly, &mut cg_eps)? {
                        if let Some(tb) = tracer.as_mut() {
                            tb.event(k, recovery_kind(action), action.to_string());
                        }
                        continue;
                    }
                    status = Status::NumericalError;
                    iterations = k;
                    break;
                }
                g.record_good(&self.x, &self.z, &self.y);
            }

            if info.converged() {
                status = Status::Solved;
                iterations = k;
                break;
            }

            if self.detect_primal_infeasible(s.eps_prim_inf)? {
                status = Status::PrimalInfeasible;
                iterations = k;
                break;
            }
            if self.detect_dual_infeasible(s.eps_dual_inf)? {
                status = Status::DualInfeasible;
                iterations = k;
                break;
            }

            if let CgTolerance::Adaptive { fraction, min, .. } = s.cg_tolerance {
                // Monotone-decreasing inner tolerance tied to the outer
                // residuals; if the outer iteration stalls (inexact solves
                // holding it at a floor), force a 10x reduction — the
                // cuOSQP-style reduction rule.
                let res = info.prim.max(info.dual);
                let mut proposal = fraction * (info.prim * info.dual).sqrt();
                if res > 0.9 * last_res {
                    proposal = proposal.min(cg_eps * 0.1);
                }
                cg_eps = proposal.min(cg_eps).max(min);
                self.backend.set_cg_tolerance(cg_eps);
                last_res = res;
            }

            if s.adaptive_rho && k - last_rho_iter >= s.adaptive_rho_interval {
                let changed = self.rho_mgr.maybe_update(
                    info.prim,
                    info.prim_scale,
                    info.dual,
                    info.dual_scale,
                    s.adaptive_rho_tolerance,
                );
                if changed {
                    self.backend.update_rho(self.rho_mgr.rho_vec())?;
                    last_rho_iter = k;
                    if let Some(tb) = tracer.as_mut() {
                        let rho_bar = self.rho_mgr.rho_bar();
                        if let Some(r) = tb.trace.records.last_mut() {
                            r.rho_bar = rho_bar;
                        }
                        tb.event(k, "rho_update", format!("{rho_bar:?}"));
                    }
                }
            }
        }

        if let Some(tb) = tracer.as_mut() {
            let id = tb.loop_span;
            tb.timeline.end(id);
        }
        self.total_iterations += iterations as u64;
        let mut x = self.scaling.unscale_x(&self.x);
        let mut y = self.scaling.unscale_y(&self.y);
        let mut z = self.scaling.unscale_z(&self.z);
        let (mut prim_res, mut dual_res) = match last_info {
            Some(i) => (i.prim, i.dual),
            None => (f64::NAN, f64::NAN),
        };
        let mut polished = false;
        // Polish only with budget to spare: if the deadline expired between
        // convergence and here, the status stays Solved (the iterate is a
        // solution) but the optional refinement is skipped.
        if s.polish && status == Status::Solved && budget.check(Instant::now()).is_none() {
            let polish_span = tracer.as_mut().map(|tb| tb.timeline.start("polish"));
            if let Some(out) =
                crate::polish::polish(&self.orig, &y, s.polish_delta, s.polish_refine_iters)?
            {
                // Accept only if both residuals improve (OSQP's rule).
                if out.prim_res <= prim_res.max(1e-30) && out.dual_res <= dual_res.max(1e-30) {
                    x = out.x;
                    y = out.y;
                    z = out.z;
                    prim_res = out.prim_res;
                    dual_res = out.dual_res;
                    polished = true;
                }
            }
            if let (Some(tb), Some(id)) = (tracer.as_mut(), polish_span) {
                tb.timeline.end(id);
                tb.event(
                    iterations,
                    "polish",
                    if polished { "accepted" } else { "rejected" }.to_string(),
                );
            }
        }
        // Last line of defense, guard or no guard: never report Solved with
        // a non-finite solution.
        if status == Status::Solved
            && !(x.iter().all(|v| v.is_finite())
                && y.iter().all(|v| v.is_finite())
                && z.iter().all(|v| v.is_finite()))
        {
            status = Status::NumericalError;
        }
        let objective = self.orig.objective(&x);
        let trace = tracer.map(|tb| {
            let mut trace = tb.trace;
            trace.backend = self.backend.name().to_string();
            trace.status = status.to_string();
            trace.iterations = iterations as u64;
            // The timeline's origin is the start of `solve`; splice the
            // setup/scaling phases (measured in `Solver::new`, before the
            // timeline existed) in front and shift the live spans so the
            // whole trace shares one time axis.
            let setup_ns = self.setup_time.as_nanos() as u64;
            let scaling_ns = self.scaling_time.as_nanos() as u64;
            trace.spans.push(SpanRecord {
                name: "setup".to_string(),
                depth: 0,
                start_ns: 0,
                end_ns: setup_ns,
            });
            trace.spans.push(SpanRecord {
                name: "scaling".to_string(),
                depth: 1,
                start_ns: 0,
                end_ns: scaling_ns.min(setup_ns),
            });
            for mut span in tb.timeline.finish() {
                span.start_ns += setup_ns;
                span.end_ns += setup_ns;
                trace.spans.push(span);
            }
            trace
        });
        Ok(SolveResult {
            status,
            x,
            y,
            z,
            objective,
            iterations,
            prim_res,
            dual_res,
            polished,
            guard: guard.map(|g| g.report()).unwrap_or_default(),
            rho_updates: self.rho_mgr.updates(),
            backend: self.retired_stats.merged(self.backend.stats()),
            timings: TimingBreakdown {
                setup: self.setup_time,
                solve: t_start.elapsed(),
                kkt_solve: kkt_time,
            },
            trace,
        })
    }

    /// Applies one rung of the recovery ladder. Returns `Ok(Some(action))`
    /// when the solve should continue iterating (the label names the rung,
    /// for the trace), `Ok(None)` when the ladder is exhausted (caller
    /// reports [`Status::NumericalError`]).
    fn apply_recovery(
        &mut self,
        guard: &mut Guard,
        anomaly: &Anomaly,
        cg_eps: &mut f64,
    ) -> Result<Option<&'static str>, SolverError> {
        let can_fallback = self.backend.name() != "ldlt";
        match guard.recover(anomaly, can_fallback) {
            RecoveryAction::ResetIterates => {
                guard.restore(&mut self.x, &mut self.z, &mut self.y);
                Ok(Some("reset_iterates"))
            }
            RecoveryAction::TightenCgTolerance => {
                guard.restore(&mut self.x, &mut self.z, &mut self.y);
                *cg_eps = (*cg_eps * GUARD_CG_SHRINK).max(GUARD_CG_FLOOR);
                self.backend.set_cg_tolerance(*cg_eps);
                Ok(Some("tighten_cg_tolerance"))
            }
            RecoveryAction::FallbackToDirect => {
                guard.restore(&mut self.x, &mut self.z, &mut self.y);
                // The direct factorization is the safety net; if even it
                // cannot be built the error is structural and propagates.
                let direct = DirectLdltBackend::with_ordering(
                    &self.p,
                    &self.a,
                    self.settings.sigma,
                    self.rho_mgr.rho_vec(),
                    self.settings.ordering,
                )?;
                self.retired_stats = self.retired_stats.merged(self.backend.stats());
                self.backend = Box::new(direct);
                Ok(Some("fallback_to_direct"))
            }
            RecoveryAction::Abort => Ok(None),
        }
    }

    /// Primal-infeasibility certificate check on `δy = y − prev_y` (both in
    /// the workspace), allocation-free.
    fn detect_primal_infeasible(&mut self, eps: f64) -> Result<bool, SolverError> {
        let m = self.y.len();
        if m == 0 {
            return Ok(false);
        }
        // δȳ in scaled space, mapped to unscaled: δy = c⁻¹·E·δȳ.
        let cinv = self.scaling.cinv();
        let e = self.scaling.e();
        let dinv = self.scaling.dinv();
        for i in 0..m {
            self.ws.dy_scaled[i] = self.y[i] - self.ws.prev_y[i];
            self.ws.dy[i] = cinv * e[i] * self.ws.dy_scaled[i];
        }
        // Aᵀδy (unscaled) = c⁻¹·D⁻¹·Āᵀ·δȳ.
        self.at_cache.spmv(&self.ws.dy_scaled, &mut self.ws.at_dy)?;
        for (v, &di) in self.ws.at_dy.iter_mut().zip(dinv) {
            *v *= cinv * di;
        }
        Ok(primal_certificate(&self.ws.dy, &self.ws.at_dy, self.orig.l(), self.orig.u(), eps))
    }

    /// Dual-infeasibility certificate check on `δx = x − prev_x` (both in
    /// the workspace), allocation-free.
    fn detect_dual_infeasible(&mut self, eps: f64) -> Result<bool, SolverError> {
        // δx̄ scaled; unscaled δx = D·δx̄.
        let d = self.scaling.d();
        let dinv = self.scaling.dinv();
        let einv = self.scaling.einv();
        let cinv = self.scaling.cinv();
        for j in 0..self.x.len() {
            self.ws.dx_scaled[j] = self.x[j] - self.ws.prev_x[j];
            self.ws.dx[j] = self.ws.dx_scaled[j] * d[j];
        }
        // P·δx (unscaled) = c⁻¹·D⁻¹·P̄·δx̄.
        self.p.spmv(&self.ws.dx_scaled, &mut self.ws.p_dx)?;
        for (v, &di) in self.ws.p_dx.iter_mut().zip(dinv) {
            *v *= cinv * di;
        }
        // A·δx (unscaled) = E⁻¹·Ā·δx̄.
        self.a.spmv(&self.ws.dx_scaled, &mut self.ws.a_dx)?;
        for (v, &ei) in self.ws.a_dx.iter_mut().zip(einv) {
            *v *= ei;
        }
        Ok(dual_certificate(
            &self.ws.dx,
            &self.ws.p_dx,
            &self.ws.a_dx,
            self.orig.q(),
            self.orig.l(),
            self.orig.u(),
            eps,
        ))
    }
}
