//! OSQP-style ADMM solver for convex quadratic programs.
//!
//! Implements Algorithm 1 of the RSQP paper (which is the OSQP method of
//! Stellato et al. 2020): at every iteration the KKT system (Eq. 2) is
//! solved, followed by a Euclidean projection onto the constraint box and a
//! dual update. The KKT solve is delegated to a pluggable [`KktBackend`]:
//!
//! * [`DirectLdltBackend`] — sparse quasi-definite LDLᵀ with cached numeric
//!   factorization (the OSQP CPU default),
//! * [`CpuPcgBackend`] — matrix-free PCG on the reduced system (Eq. 3), the
//!   algorithm cuOSQP and RSQP's FPGA both run,
//! * any external implementation of [`KktBackend`] — `rsqp-core` plugs the
//!   cycle-level FPGA simulator in through this trait.
//!
//! The solver reproduces OSQP's practical machinery: Ruiz equilibration,
//! per-constraint ρ with equality boosting, adaptive ρ updates, unscaled
//! residual termination criteria, and primal/dual infeasibility
//! certificates.
//!
//! # Example
//!
//! ```
//! use rsqp_sparse::CsrMatrix;
//! use rsqp_solver::{QpProblem, Settings, Solver, Status};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // minimize  (1/2)(4x0^2 + 2x1^2 + 2x0x1) + x0 + x1
//! // subject to x0 + x1 = 1, 0 <= x0 <= 0.7, 0 <= x1 <= 0.7
//! let p = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
//! let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
//! let problem = QpProblem::new(
//!     p,
//!     vec![1.0, 1.0],
//!     a,
//!     vec![1.0, 0.0, 0.0],
//!     vec![1.0, 0.7, 0.7],
//! )?;
//! let mut solver = Solver::new(&problem, Settings::default())?;
//! let result = solver.solve()?;
//! assert_eq!(result.status, Status::Solved);
//! assert!((result.x[0] + result.x[1] - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod checkpoint;
mod control;
mod error;
mod guard;
mod infeasibility;
mod polish;
mod problem;
mod rho;
mod scaling;
mod settings;
mod solver;
mod status;
mod termination;
mod workspace;

pub use backend::{kkt_ordering, BackendStats, CpuPcgBackend, DirectLdltBackend, KktBackend};
pub use checkpoint::Checkpoint;
pub use control::{CancelToken, SolveControl};
pub use error::SolverError;
pub use guard::{Anomaly, Guard, GuardReport, GuardSettings, RecoveryAction};
pub use polish::{polish, PolishOutcome};
pub use problem::QpProblem;
pub use rho::{ConstraintKind, RhoManager};
pub use scaling::Scaling;
pub use settings::{CgTolerance, KktOrdering, LinSysKind, Settings};
pub use solver::{SolveResult, Solver, TimingBreakdown};
pub use status::Status;
// Trace types re-exported so downstream crates can consume
// `SolveResult::trace` without a direct `rsqp-obs` dependency.
pub use rsqp_obs::{IterationTrace, SolveTrace, TraceEvent};
