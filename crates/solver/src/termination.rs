//! Unscaled residual computation and termination tests.

use rsqp_sparse::vec_ops;

use crate::Scaling;

/// Residuals and the norms needed by the ρ-adaptation rule, all in
/// **unscaled** (original problem) space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualInfo {
    /// Primal residual `‖Ax − z‖∞`.
    pub prim: f64,
    /// Dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual: f64,
    /// Primal tolerance `eps_abs + eps_rel·max(‖Ax‖∞, ‖z‖∞)`.
    pub eps_prim: f64,
    /// Dual tolerance `eps_abs + eps_rel·max(‖Px‖∞, ‖Aᵀy‖∞, ‖q‖∞)`.
    pub eps_dual: f64,
    /// `max(‖Ax‖∞, ‖z‖∞)` — the primal normalization for ρ adaptation.
    pub prim_scale: f64,
    /// `max(‖Px‖∞, ‖Aᵀy‖∞, ‖q‖∞)` — the dual normalization.
    pub dual_scale: f64,
}

impl ResidualInfo {
    /// True when both residuals meet their tolerances.
    pub fn converged(&self) -> bool {
        self.prim <= self.eps_prim && self.dual <= self.eps_dual
    }
}

/// Computes [`ResidualInfo`] from *scaled-space* intermediate products.
///
/// Inputs are the scaled quantities the solver already has on hand
/// (`Āx̄`, `z̄`, `P̄x̄`, `Āᵀȳ`, `q̄`); the function performs the unscaling
/// using `D⁻¹`, `E⁻¹` and `c⁻¹`.
pub fn residuals(
    scaling: &Scaling,
    ax: &[f64],
    z: &[f64],
    px: &[f64],
    aty: &[f64],
    q: &[f64],
    eps_abs: f64,
    eps_rel: f64,
) -> ResidualInfo {
    let einv = scaling.einv();
    let dinv = scaling.dinv();
    let cinv = scaling.cinv();

    // Primal: ‖E⁻¹(Āx̄ − z̄)‖∞ and its normalization.
    let mut prim = 0.0f64;
    let mut norm_ax = 0.0f64;
    let mut norm_z = 0.0f64;
    for i in 0..ax.len() {
        prim = prim.max((einv[i] * (ax[i] - z[i])).abs());
        norm_ax = norm_ax.max((einv[i] * ax[i]).abs());
        norm_z = norm_z.max((einv[i] * z[i]).abs());
    }

    // Dual: c⁻¹·‖D⁻¹(P̄x̄ + q̄ + Āᵀȳ)‖∞ and its normalization.
    let mut dual = 0.0f64;
    let mut norm_px = 0.0f64;
    let mut norm_aty = 0.0f64;
    for j in 0..px.len() {
        dual = dual.max((dinv[j] * (px[j] + q[j] + aty[j])).abs());
        norm_px = norm_px.max((dinv[j] * px[j]).abs());
        norm_aty = norm_aty.max((dinv[j] * aty[j]).abs());
    }
    dual *= cinv;
    norm_px *= cinv;
    norm_aty *= cinv;
    let norm_q = cinv * vec_ops::scaled_inf_norm(dinv, q);

    let prim_scale = norm_ax.max(norm_z);
    let dual_scale = norm_px.max(norm_aty).max(norm_q);
    ResidualInfo {
        prim,
        dual,
        eps_prim: eps_abs + eps_rel * prim_scale,
        eps_dual: eps_abs + eps_rel * dual_scale,
        prim_scale,
        dual_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_requires_both_residuals() {
        let mut r = ResidualInfo {
            prim: 0.5,
            dual: 0.5,
            eps_prim: 1.0,
            eps_dual: 1.0,
            prim_scale: 1.0,
            dual_scale: 1.0,
        };
        assert!(r.converged());
        r.prim = 2.0;
        assert!(!r.converged());
        r.prim = 0.5;
        r.dual = 2.0;
        assert!(!r.converged());
    }

    #[test]
    fn identity_scaling_residuals_match_hand_computation() {
        let sc = Scaling::identity(2, 2);
        let info = residuals(
            &sc,
            &[1.0, 2.0],  // Ax
            &[1.0, 1.0],  // z
            &[0.5, 0.0],  // Px
            &[0.0, -0.5], // Aty
            &[0.0, 0.25], // q
            0.1,
            0.1,
        );
        assert!((info.prim - 1.0).abs() < 1e-15); // |2-1|
        assert!((info.dual - 0.5).abs() < 1e-15); // max(|0.5|, |-0.25|)
        assert!((info.eps_prim - (0.1 + 0.1 * 2.0)).abs() < 1e-15);
        assert!((info.eps_dual - (0.1 + 0.1 * 0.5)).abs() < 1e-15);
        assert_eq!(info.prim_scale, 2.0);
        assert_eq!(info.dual_scale, 0.5);
    }

    #[test]
    fn empty_constraint_block_is_trivially_primal_feasible() {
        let sc = Scaling::identity(2, 0);
        let info = residuals(&sc, &[], &[], &[0.0, 0.0], &[0.0, 0.0], &[0.0, 0.0], 0.1, 0.1);
        assert_eq!(info.prim, 0.0);
        assert!(info.prim <= info.eps_prim);
    }
}
