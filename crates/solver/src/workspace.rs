//! Pre-sized iterate and scratch buffers for the ADMM loop.
//!
//! The solver used to allocate ~10 vectors at the top of every `solve` call
//! and several more inside each infeasibility check. Holding them here —
//! sized once at setup — makes the steady-state iteration allocation-free,
//! which the `zero_alloc` integration test asserts with a counting
//! allocator.

/// All per-iteration scratch the ADMM loop needs, owned by the solver so
/// repeated `solve` calls (warm starts, parametric re-solves, retries)
/// never re-allocate.
#[derive(Debug, Clone)]
pub(crate) struct IterateWorkspace {
    /// KKT solution x̃ (length n).
    pub xtilde: Vec<f64>,
    /// KKT solution z̃ (length m).
    pub ztilde: Vec<f64>,
    /// Pre-projection z candidate (length m).
    pub zcand: Vec<f64>,
    /// x from the previous iteration (dual-infeasibility delta).
    pub prev_x: Vec<f64>,
    /// y from the previous iteration (primal-infeasibility delta).
    pub prev_y: Vec<f64>,
    /// Residual buffer `A x` (length m).
    pub ax: Vec<f64>,
    /// Residual buffer `P x` (length n).
    pub px: Vec<f64>,
    /// Residual buffer `Aᵀ y` (length n).
    pub aty: Vec<f64>,
    /// Scaled dual delta δȳ (length m).
    pub dy_scaled: Vec<f64>,
    /// Unscaled dual delta δy (length m).
    pub dy: Vec<f64>,
    /// `Aᵀ δy` (length n).
    pub at_dy: Vec<f64>,
    /// Scaled primal delta δx̄ (length n).
    pub dx_scaled: Vec<f64>,
    /// Unscaled primal delta δx (length n).
    pub dx: Vec<f64>,
    /// `P δx` (length n).
    pub p_dx: Vec<f64>,
    /// `A δx` (length m).
    pub a_dx: Vec<f64>,
}

impl IterateWorkspace {
    /// Allocates every buffer for an `n`-variable, `m`-constraint problem.
    pub fn new(n: usize, m: usize) -> Self {
        IterateWorkspace {
            xtilde: vec![0.0; n],
            ztilde: vec![0.0; m],
            zcand: vec![0.0; m],
            prev_x: vec![0.0; n],
            prev_y: vec![0.0; m],
            ax: vec![0.0; m],
            px: vec![0.0; n],
            aty: vec![0.0; n],
            dy_scaled: vec![0.0; m],
            dy: vec![0.0; m],
            at_dy: vec![0.0; n],
            dx_scaled: vec![0.0; n],
            dx: vec![0.0; n],
            p_dx: vec![0.0; n],
            a_dx: vec![0.0; m],
        }
    }
}
