//! Per-constraint step-size (ρ) management with adaptive updates.
//!
//! OSQP uses a *vector* ρ: equality constraints get a stiffer value
//! (`1e3·ρ̄`), loose (unbounded) constraints a minimal one. The scalar base
//! ρ̄ adapts to the ratio of primal and dual residuals; the KKT backend is
//! informed whenever the vector actually changes (which is what forces the
//! numeric refactorization in the direct method — §2.2 of the paper).

/// Lower clamp for ρ values.
pub const RHO_MIN: f64 = 1e-6;
/// Upper clamp for ρ values.
pub const RHO_MAX: f64 = 1e6;
/// Multiplier applied to equality constraints.
const RHO_EQ_FACTOR: f64 = 1e3;
/// Bound gap below which a constraint is treated as an equality.
const RHO_EQ_TOL: f64 = 1e-10;

/// Classification of each constraint row, derived from its bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// `l = u` (within tolerance).
    Equality,
    /// Finite bound on at least one side.
    Inequality,
    /// `l = -∞` and `u = +∞`.
    Loose,
}

/// Manages the scalar base ρ̄ and the derived per-constraint vector.
#[derive(Debug, Clone, PartialEq)]
pub struct RhoManager {
    rho_bar: f64,
    kinds: Vec<ConstraintKind>,
    rho_vec: Vec<f64>,
    rho_inv_vec: Vec<f64>,
    updates: usize,
}

impl RhoManager {
    /// Builds the manager from the initial ρ̄ and the (scaled) bounds.
    pub fn new(rho_bar: f64, l: &[f64], u: &[f64]) -> Self {
        let kinds = classify(l, u);
        let mut mgr = RhoManager {
            rho_bar: rho_bar.clamp(RHO_MIN, RHO_MAX),
            kinds,
            rho_vec: Vec::new(),
            rho_inv_vec: Vec::new(),
            updates: 0,
        };
        mgr.rebuild();
        mgr
    }

    /// Re-derives the ρ and 1/ρ vectors from the current ρ̄ and kinds,
    /// reusing the existing buffers (adaptive updates run mid-solve on the
    /// allocation-free hot path; only a bounds update may resize).
    fn rebuild(&mut self) {
        self.rho_vec.resize(self.kinds.len(), 0.0);
        self.rho_inv_vec.resize(self.kinds.len(), 0.0);
        for ((r, ri), k) in self.rho_vec.iter_mut().zip(&mut self.rho_inv_vec).zip(&self.kinds) {
            *r = match k {
                ConstraintKind::Equality => (RHO_EQ_FACTOR * self.rho_bar).clamp(RHO_MIN, RHO_MAX),
                ConstraintKind::Inequality => self.rho_bar,
                ConstraintKind::Loose => RHO_MIN,
            };
            *ri = 1.0 / *r;
        }
    }

    /// Re-derives constraint kinds after a bounds update.
    pub fn update_bounds(&mut self, l: &[f64], u: &[f64]) {
        self.kinds = classify(l, u);
        self.rebuild();
    }

    /// Replaces the scalar base ρ̄ in place (OSQP's manual `update_rho`),
    /// rebuilding the per-constraint vectors into the existing buffers — the
    /// classification and the adaptive-update counter are preserved, and no
    /// allocation happens when the constraint count is unchanged.
    pub fn set_rho_bar(&mut self, rho_bar: f64) {
        self.rho_bar = rho_bar.clamp(RHO_MIN, RHO_MAX);
        self.rebuild();
    }

    /// Current scalar base ρ̄.
    pub fn rho_bar(&self) -> f64 {
        self.rho_bar
    }

    /// Per-constraint ρ vector.
    pub fn rho_vec(&self) -> &[f64] {
        &self.rho_vec
    }

    /// Per-constraint `1/ρ` vector.
    pub fn rho_inv_vec(&self) -> &[f64] {
        &self.rho_inv_vec
    }

    /// Constraint classification.
    pub fn kinds(&self) -> &[ConstraintKind] {
        &self.kinds
    }

    /// Number of accepted adaptive updates so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Computes the candidate ρ̄ from normalized residuals:
    /// `ρ̄·√((r_prim/s_prim)/(r_dual/s_dual))`.
    ///
    /// Returns `None` when the inputs are degenerate (zero scales or
    /// residuals), in which case no update should happen.
    pub fn candidate(&self, r_prim: f64, s_prim: f64, r_dual: f64, s_dual: f64) -> Option<f64> {
        if s_prim <= 0.0 || s_dual <= 0.0 || r_prim <= 0.0 || r_dual <= 0.0 {
            return None;
        }
        let ratio = (r_prim / s_prim) / (r_dual / s_dual);
        if !ratio.is_finite() || ratio <= 0.0 {
            return None;
        }
        Some((self.rho_bar * ratio.sqrt()).clamp(RHO_MIN, RHO_MAX))
    }

    /// Applies an adaptive update if the candidate differs from the current
    /// ρ̄ by more than `tolerance` (multiplicatively). Returns `true` when
    /// the vector changed (so the backend must be refreshed).
    pub fn maybe_update(
        &mut self,
        r_prim: f64,
        s_prim: f64,
        r_dual: f64,
        s_dual: f64,
        tolerance: f64,
    ) -> bool {
        let Some(new_rho) = self.candidate(r_prim, s_prim, r_dual, s_dual) else {
            return false;
        };
        if new_rho > self.rho_bar * tolerance || new_rho < self.rho_bar / tolerance {
            self.rho_bar = new_rho;
            self.rebuild();
            self.updates += 1;
            true
        } else {
            false
        }
    }
}

fn classify(l: &[f64], u: &[f64]) -> Vec<ConstraintKind> {
    l.iter()
        .zip(u)
        .map(|(&li, &ui)| {
            if li.is_infinite() && li < 0.0 && ui.is_infinite() && ui > 0.0 {
                ConstraintKind::Loose
            } else if (ui - li).abs() <= RHO_EQ_TOL {
                ConstraintKind::Equality
            } else {
                ConstraintKind::Inequality
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    #[test]
    fn classification_covers_all_kinds() {
        let mgr = RhoManager::new(0.1, &[1.0, 0.0, -INF, -INF], &[1.0, 2.0, INF, 3.0]);
        assert_eq!(
            mgr.kinds(),
            &[
                ConstraintKind::Equality,
                ConstraintKind::Inequality,
                ConstraintKind::Loose,
                ConstraintKind::Inequality
            ]
        );
        assert!((mgr.rho_vec()[0] - 100.0).abs() < 1e-12); // 1e3 * 0.1
        assert!((mgr.rho_vec()[1] - 0.1).abs() < 1e-12);
        assert!((mgr.rho_vec()[2] - RHO_MIN).abs() < 1e-18);
    }

    #[test]
    fn rho_inv_is_reciprocal() {
        let mgr = RhoManager::new(0.2, &[0.0], &[1.0]);
        assert!((mgr.rho_vec()[0] * mgr.rho_inv_vec()[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn candidate_scales_with_residual_ratio() {
        let mgr = RhoManager::new(1.0, &[0.0], &[1.0]);
        // primal residual dominates -> rho grows
        let c = mgr.candidate(1.0, 1.0, 0.01, 1.0).unwrap();
        assert!((c - 10.0).abs() < 1e-12);
        // dual dominates -> rho shrinks
        let c = mgr.candidate(0.01, 1.0, 1.0, 1.0).unwrap();
        assert!((c - 0.1).abs() < 1e-12);
    }

    #[test]
    fn candidate_rejects_degenerate_inputs() {
        let mgr = RhoManager::new(1.0, &[0.0], &[1.0]);
        assert!(mgr.candidate(0.0, 1.0, 1.0, 1.0).is_none());
        assert!(mgr.candidate(1.0, 0.0, 1.0, 1.0).is_none());
    }

    #[test]
    fn update_respects_tolerance_band() {
        let mut mgr = RhoManager::new(1.0, &[0.0], &[1.0]);
        // ratio sqrt = 2 < 5 -> no update
        assert!(!mgr.maybe_update(4.0, 1.0, 1.0, 1.0, 5.0));
        assert_eq!(mgr.updates(), 0);
        // ratio sqrt = 10 > 5 -> update
        assert!(mgr.maybe_update(100.0, 1.0, 1.0, 1.0, 5.0));
        assert!((mgr.rho_bar() - 10.0).abs() < 1e-12);
        assert_eq!(mgr.updates(), 1);
    }

    #[test]
    fn update_clamps_to_bounds() {
        let mut mgr = RhoManager::new(1.0, &[0.0], &[1.0]);
        assert!(mgr.maybe_update(1e30, 1.0, 1e-30, 1.0, 5.0));
        assert!(mgr.rho_bar() <= RHO_MAX);
    }

    #[test]
    fn set_rho_bar_preserves_kinds_and_counter() {
        let mut mgr = RhoManager::new(1.0, &[1.0, 0.0, -INF], &[1.0, 2.0, INF]);
        assert!(mgr.maybe_update(100.0, 1.0, 1.0, 1.0, 5.0));
        assert_eq!(mgr.updates(), 1);
        mgr.set_rho_bar(0.5);
        assert_eq!(mgr.updates(), 1, "manual update must not reset the adaptive counter");
        assert!((mgr.rho_bar() - 0.5).abs() < 1e-15);
        assert!((mgr.rho_vec()[0] - 500.0).abs() < 1e-12); // equality: 1e3 * 0.5
        assert!((mgr.rho_vec()[1] - 0.5).abs() < 1e-15);
        assert!((mgr.rho_vec()[2] - RHO_MIN).abs() < 1e-18);
        mgr.set_rho_bar(1e30);
        assert!(mgr.rho_bar() <= RHO_MAX);
    }

    #[test]
    fn bounds_update_reclassifies() {
        let mut mgr = RhoManager::new(0.1, &[0.0], &[1.0]);
        assert_eq!(mgr.kinds()[0], ConstraintKind::Inequality);
        mgr.update_bounds(&[1.0], &[1.0]);
        assert_eq!(mgr.kinds()[0], ConstraintKind::Equality);
    }
}
