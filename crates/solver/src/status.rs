use std::fmt;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Residuals met the tolerances.
    Solved,
    /// The iteration cap was reached before the tolerances were met.
    MaxIterationsReached,
    /// The wall-clock budget was exhausted before the tolerances were met.
    TimeLimitReached,
    /// A [`CancelToken`](crate::CancelToken) was tripped; the returned
    /// iterate is the last completed ADMM iteration's, not a solution.
    Cancelled,
    /// A primal-infeasibility certificate was found (`y` direction).
    PrimalInfeasible,
    /// A dual-infeasibility certificate was found (`x` direction, unbounded
    /// objective).
    DualInfeasible,
    /// The iterates became non-finite or diverged and the recovery ladder
    /// was exhausted; the returned vectors are the last known-good iterate,
    /// not a solution.
    NumericalError,
}

impl Status {
    /// True when the returned iterate is an (approximate) optimizer.
    pub fn is_solved(self) -> bool {
        matches!(self, Status::Solved)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Solved => "solved",
            Status::MaxIterationsReached => "maximum iterations reached",
            Status::TimeLimitReached => "time limit reached",
            Status::Cancelled => "cancelled",
            Status::PrimalInfeasible => "primal infeasible",
            Status::DualInfeasible => "dual infeasible",
            Status::NumericalError => "numerical error",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_predicates() {
        assert_eq!(Status::Solved.to_string(), "solved");
        assert!(Status::Solved.is_solved());
        assert!(!Status::PrimalInfeasible.is_solved());
        assert!(Status::DualInfeasible.to_string().contains("dual"));
        assert!(!Status::NumericalError.is_solved());
        assert_eq!(Status::NumericalError.to_string(), "numerical error");
        assert!(!Status::Cancelled.is_solved());
        assert_eq!(Status::Cancelled.to_string(), "cancelled");
    }
}
