//! Solution polishing (OSQP §5.2 of Stellato et al. 2020).
//!
//! After ADMM terminates, the active constraints are guessed from the signs
//! of the duals, and the equality-constrained QP restricted to that active
//! set is solved exactly (regularized LDLᵀ plus iterative refinement). If
//! the polished point has smaller residuals it replaces the ADMM iterate —
//! often turning a 1e-3-accurate solution into a machine-precision one.

use rsqp_linsys::Ldlt;
use rsqp_sparse::{vec_ops, CooMatrix};

use crate::{QpProblem, SolverError};

/// Outcome of a polish attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct PolishOutcome {
    /// Polished primal iterate.
    pub x: Vec<f64>,
    /// Polished dual iterate.
    pub y: Vec<f64>,
    /// Polished slack `z = A x`.
    pub z: Vec<f64>,
    /// Unscaled primal residual at the polished point.
    pub prim_res: f64,
    /// Unscaled dual residual at the polished point.
    pub dual_res: f64,
}

/// Attempts to polish the dual iterate `y`'s implied active set on the
/// original (unscaled) problem.
///
/// `delta` is the regularization added to both diagonal blocks;
/// `refine_iters` is the number of iterative-refinement sweeps.
///
/// Returns `None` when the active-set KKT system cannot be factorized (e.g.
/// a rank-deficient active set) — the caller keeps the ADMM iterate.
///
/// # Errors
///
/// Never fails with an error today; the `Result` leaves room for allocation
/// limits.
pub fn polish(
    problem: &QpProblem,
    y: &[f64],
    delta: f64,
    refine_iters: usize,
) -> Result<Option<PolishOutcome>, SolverError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    // Guess the active set from the dual signs.
    let mut active: Vec<(usize, f64)> = Vec::new(); // (row, bound value)
    for i in 0..m {
        let (li, ui) = (problem.l()[i], problem.u()[i]);
        if li == ui {
            // Equality constraints are always active, regardless of the
            // dual sign (which may be exactly zero at the optimum).
            active.push((i, li));
        } else if y[i] < 0.0 {
            if li.is_finite() {
                active.push((i, li));
            }
        } else if y[i] > 0.0 && ui.is_finite() {
            active.push((i, ui));
        }
    }
    let k = active.len();

    // Reduced KKT: [[P + δI, A_actᵀ], [A_act, -δI]].
    let dim = n + k;
    let mut coo = CooMatrix::with_capacity(dim, dim, problem.p().nnz() + dim);
    for r in 0..n {
        let (cols, vals) = problem.p().row(r);
        for (&cc, &v) in cols.iter().zip(vals) {
            if cc >= r {
                coo.push(r, cc, v);
            }
        }
        coo.push(r, r, delta);
    }
    for (slot, &(row, _)) in active.iter().enumerate() {
        let (cols, vals) = problem.a().row(row);
        for (&cc, &v) in cols.iter().zip(vals) {
            coo.push(cc, n + slot, v);
        }
        coo.push(n + slot, n + slot, -delta);
    }
    let kkt = coo.to_csc();
    let Ok(factor) = Ldlt::factor(&kkt) else {
        return Ok(None);
    };

    // rhs = [-q; bound values]; iterative refinement against the
    // unregularized KKT operator.
    let mut rhs = vec![0.0; dim];
    for j in 0..n {
        rhs[j] = -problem.q()[j];
    }
    for (slot, &(_, b)) in active.iter().enumerate() {
        rhs[n + slot] = b;
    }
    let mut sol = factor.solve(&rhs)?;
    for _ in 0..refine_iters {
        let residual = kkt_residual(problem, &active, &sol, &rhs)?;
        let mut corr = residual;
        factor.solve_in_place(&mut corr)?;
        for (s, c) in sol.iter_mut().zip(&corr) {
            *s += c;
        }
    }

    // Assemble the polished point.
    let x_pol = sol[..n].to_vec();
    let mut y_pol = vec![0.0; m];
    for (slot, &(row, _)) in active.iter().enumerate() {
        y_pol[row] = sol[n + slot];
    }
    let mut z_pol = vec![0.0; m];
    problem.a().spmv(&x_pol, &mut z_pol)?;

    // Residuals at the polished point.
    let mut prim: f64 = 0.0;
    for i in 0..m {
        prim = prim.max(problem.l()[i] - z_pol[i]).max(z_pol[i] - problem.u()[i]);
    }
    let prim = prim.max(0.0);
    let mut grad = vec![0.0; n];
    problem.p().spmv(&x_pol, &mut grad)?;
    let mut aty = vec![0.0; n];
    problem.a().spmv_transpose(&y_pol, &mut aty)?;
    for j in 0..n {
        grad[j] += problem.q()[j] + aty[j];
    }
    let dual = vec_ops::inf_norm(&grad);
    if !prim.is_finite() || !dual.is_finite() {
        return Ok(None);
    }
    Ok(Some(PolishOutcome { x: x_pol, y: y_pol, z: z_pol, prim_res: prim, dual_res: dual }))
}

/// `rhs − K_unregularized · sol` for the active-set KKT.
fn kkt_residual(
    problem: &QpProblem,
    active: &[(usize, f64)],
    sol: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, SolverError> {
    let n = problem.num_vars();
    let k = active.len();
    let mut out = rhs.to_vec();
    // Top block: P x + A_actᵀ ν.
    let mut px = vec![0.0; n];
    problem.p().spmv(&sol[..n], &mut px)?;
    for j in 0..n {
        out[j] -= px[j];
    }
    for (slot, &(row, _)) in active.iter().enumerate() {
        let (cols, vals) = problem.a().row(row);
        let nu = sol[n + slot];
        let mut ax = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            out[c] -= v * nu;
            ax += v * sol[c];
        }
        out[n + slot] -= ax;
    }
    debug_assert_eq!(out.len(), n + k);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    fn box_qp() -> QpProblem {
        QpProblem::new(
            CsrMatrix::identity(2),
            vec![-2.0, -0.5],
            CsrMatrix::identity(2),
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .expect("valid problem")
    }

    #[test]
    fn polish_recovers_exact_active_set_solution() {
        // Solution: x = (1, 0.5); constraint 0 active at u, constraint 1
        // inactive. Feed slightly-off iterates with the right dual signs.
        let qp = box_qp();
        let y = vec![0.9, 0.0]; // y0 > 0 -> upper bound active
        let out = polish(&qp, &y, 1e-7, 3).unwrap().expect("polish succeeds");
        assert!((out.x[0] - 1.0).abs() < 1e-9, "{}", out.x[0]);
        assert!((out.x[1] - 0.5).abs() < 1e-9);
        assert!(out.prim_res < 1e-9);
        assert!(out.dual_res < 1e-9);
        // Dual of the active constraint: stationarity x0 - 2 + y0 = 0.
        assert!((out.y[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn polish_with_empty_active_set_solves_unconstrained() {
        let qp = QpProblem::new(
            CsrMatrix::from_diag(&[2.0, 4.0]),
            vec![-2.0, -4.0],
            CsrMatrix::identity(2),
            vec![-10.0, -10.0],
            vec![10.0, 10.0],
        )
        .expect("valid problem");
        let out = polish(&qp, &[0.0, 0.0], 1e-7, 3).unwrap().expect("polish succeeds");
        assert!((out.x[0] - 1.0).abs() < 1e-9);
        assert!((out.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn polish_ignores_infinite_bounds() {
        let qp = QpProblem::new(
            CsrMatrix::identity(1),
            vec![-1.0],
            CsrMatrix::identity(1),
            vec![f64::NEG_INFINITY],
            vec![f64::INFINITY],
        )
        .expect("valid problem");
        // Dual sign suggests an active bound that does not exist.
        let out = polish(&qp, &[0.5], 1e-7, 2).unwrap().expect("ok");
        assert!((out.x[0] - 1.0).abs() < 1e-9);
        assert_eq!(out.y[0], 0.0);
    }
}
