use rsqp_sparse::{vec_ops, CsrMatrix};

use crate::SolverError;

/// Value above which a bound is treated as infinite (OSQP's `OSQP_INFTY`).
pub const QP_INFTY: f64 = 1e30;

/// A convex quadratic program in OSQP standard form (Eq. 1 of the paper):
///
/// ```text
/// minimize   (1/2) xᵀ P x + qᵀ x
/// subject to l ≤ A x ≤ u
/// ```
///
/// `P` must be symmetric positive semidefinite (full symmetric storage) and
/// every `l_i ≤ u_i`. Bounds with magnitude ≥ `1e30` are treated as
/// infinite.
#[derive(Debug, Clone, PartialEq)]
pub struct QpProblem {
    p: CsrMatrix,
    q: Vec<f64>,
    a: CsrMatrix,
    l: Vec<f64>,
    u: Vec<f64>,
    name: String,
}

/// Rejects non-finite entries in problem data (NaN poisons every downstream
/// residual check, so it must be stopped at the boundary).
fn require_finite(name: &str, data: &[f64]) -> Result<(), SolverError> {
    if let Some(i) = data.iter().position(|v| !v.is_finite()) {
        return Err(SolverError::InvalidProblem(format!(
            "{name} contains a non-finite entry ({}) at index {i}",
            data[i]
        )));
    }
    Ok(())
}

/// Rejects NaN bounds; ±∞ are legitimate "no bound" sentinels.
fn require_bounds_well_formed(l: &[f64], u: &[f64]) -> Result<(), SolverError> {
    for i in 0..l.len() {
        if l[i].is_nan() || u[i].is_nan() {
            return Err(SolverError::InvalidProblem(format!(
                "bounds contain NaN at index {i} (l = {}, u = {})",
                l[i], u[i]
            )));
        }
        if l[i] > u[i] {
            return Err(SolverError::InvalidProblem(format!(
                "l[{i}] = {} > u[{i}] = {}",
                l[i], u[i]
            )));
        }
    }
    Ok(())
}

impl QpProblem {
    /// Builds and validates a problem.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] if shapes disagree, `P` is not
    /// square or not symmetric (to 1e-10 relative), some `l_i > u_i`, or any
    /// datum is non-finite (bounds may be ±∞, never NaN).
    pub fn new(
        p: CsrMatrix,
        q: Vec<f64>,
        a: CsrMatrix,
        l: Vec<f64>,
        u: Vec<f64>,
    ) -> Result<Self, SolverError> {
        let n = p.nrows();
        if p.ncols() != n {
            return Err(SolverError::InvalidProblem(format!(
                "P must be square, got {}x{}",
                n,
                p.ncols()
            )));
        }
        if q.len() != n {
            return Err(SolverError::InvalidProblem(format!(
                "q has length {} but P is {n}x{n}",
                q.len()
            )));
        }
        if a.ncols() != n {
            return Err(SolverError::InvalidProblem(format!(
                "A has {} columns but the problem has {n} variables",
                a.ncols()
            )));
        }
        let m = a.nrows();
        if l.len() != m || u.len() != m {
            return Err(SolverError::InvalidProblem(format!(
                "bounds have lengths {}/{} but A has {m} rows",
                l.len(),
                u.len()
            )));
        }
        require_finite("P", p.data())?;
        require_finite("A", a.data())?;
        require_finite("q", &q)?;
        require_bounds_well_formed(&l, &u)?;
        // Symmetry check: P == Pᵀ entry-wise within a relative tolerance.
        let pt = p.transpose();
        let scale = 1.0 + vec_ops::inf_norm(p.data());
        if p.indptr() != pt.indptr() || p.indices() != pt.indices() {
            return Err(SolverError::InvalidProblem(
                "P has a structurally non-symmetric sparsity pattern".into(),
            ));
        }
        for (a_v, b_v) in p.data().iter().zip(pt.data()) {
            if (a_v - b_v).abs() > 1e-10 * scale {
                return Err(SolverError::InvalidProblem("P is not symmetric".into()));
            }
        }
        Ok(QpProblem { p, q, a, l, u, name: String::new() })
    }

    /// Attaches a human-readable name (used by the benchmark harness).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The problem name (empty if unset).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Quadratic cost matrix `P`.
    pub fn p(&self) -> &CsrMatrix {
        &self.p
    }

    /// Linear cost vector `q`.
    pub fn q(&self) -> &[f64] {
        &self.q
    }

    /// Constraint matrix `A`.
    pub fn a(&self) -> &CsrMatrix {
        &self.a
    }

    /// Lower bounds `l`.
    pub fn l(&self) -> &[f64] {
        &self.l
    }

    /// Upper bounds `u`.
    pub fn u(&self) -> &[f64] {
        &self.u
    }

    /// Number of decision variables `n`.
    pub fn num_vars(&self) -> usize {
        self.p.nrows()
    }

    /// Number of constraints `m`.
    pub fn num_constraints(&self) -> usize {
        self.a.nrows()
    }

    /// `nnz(P) + nnz(A)` — the size measure used on every x-axis of the
    /// paper's evaluation figures.
    pub fn total_nnz(&self) -> usize {
        self.p.nnz() + self.a.nnz()
    }

    /// Objective value `(1/2) xᵀPx + qᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "objective input length");
        let mut px = vec![0.0; x.len()];
        self.p.spmv(x, &mut px).expect("shape validated at construction");
        0.5 * vec_ops::dot(x, &px) + vec_ops::dot(&self.q, x)
    }

    /// Maximum violation of `l ≤ Ax ≤ u` at `x` (0 when feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn primal_infeasibility(&self, x: &[f64]) -> f64 {
        let mut ax = vec![0.0; self.num_constraints()];
        self.a.spmv(x, &mut ax).expect("shape validated at construction");
        let mut viol = 0.0f64;
        for i in 0..ax.len() {
            viol = viol.max(self.l[i] - ax[i]).max(ax[i] - self.u[i]);
        }
        viol.max(0.0)
    }

    /// Replaces the bound vectors, keeping the matrices: the parametric
    /// update used when re-solving the same problem *structure* with new
    /// data (the architecture-reuse scenario motivating RSQP §1).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] on length mismatch,
    /// `l_i > u_i`, or NaN bounds.
    pub fn update_bounds(&mut self, l: Vec<f64>, u: Vec<f64>) -> Result<(), SolverError> {
        let m = self.num_constraints();
        if l.len() != m || u.len() != m {
            return Err(SolverError::InvalidProblem("bound length mismatch".into()));
        }
        require_bounds_well_formed(&l, &u)?;
        self.l = l;
        self.u = u;
        Ok(())
    }

    /// Replaces the values of `P` and/or `A`, keeping the sparsity
    /// structure. This is OSQP's `update_P_A`: the parametric scenario where
    /// problem data changes but the structure — and hence the customized
    /// architecture — stays fixed.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] if a replacement has a
    /// different sparsity structure or breaks the symmetry of `P`.
    pub fn update_matrices(
        &mut self,
        p: Option<CsrMatrix>,
        a: Option<CsrMatrix>,
    ) -> Result<(), SolverError> {
        if let Some(p_new) = &p {
            if !rsqp_sparse::pattern::same_structure(p_new, &self.p) {
                return Err(SolverError::InvalidProblem(
                    "P replacement has a different sparsity structure".into(),
                ));
            }
        }
        if let Some(a_new) = &a {
            if !rsqp_sparse::pattern::same_structure(a_new, &self.a) {
                return Err(SolverError::InvalidProblem(
                    "A replacement has a different sparsity structure".into(),
                ));
            }
        }
        // Validate symmetry of the new P by round-tripping the constructor.
        let candidate = QpProblem::new(
            p.clone().unwrap_or_else(|| self.p.clone()),
            self.q.clone(),
            a.clone().unwrap_or_else(|| self.a.clone()),
            self.l.clone(),
            self.u.clone(),
        )?;
        *self = candidate.with_name(self.name.clone());
        Ok(())
    }

    /// Replaces the linear cost vector `q`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidProblem`] on length mismatch or
    /// non-finite entries.
    pub fn update_q(&mut self, q: Vec<f64>) -> Result<(), SolverError> {
        if q.len() != self.num_vars() {
            return Err(SolverError::InvalidProblem("q length mismatch".into()));
        }
        require_finite("q", &q)?;
        self.q = q;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> QpProblem {
        QpProblem::new(
            CsrMatrix::from_dense(&[vec![2.0, 0.5], vec![0.5, 1.0]]),
            vec![1.0, -1.0],
            CsrMatrix::from_dense(&[vec![1.0, 1.0]]),
            vec![-1.0],
            vec![1.0],
        )
        .unwrap()
    }

    #[test]
    fn accepts_valid_problem() {
        let p = valid();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.total_nnz(), 6);
    }

    #[test]
    fn objective_matches_hand_computation() {
        let p = valid();
        let x = [1.0, 2.0];
        // 0.5*(2 + 0.5*2 + 0.5*2 + 4) + (1 - 2) = 0.5*8 - 1 = 3
        assert!((p.objective(&x) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric_p() {
        let p = CsrMatrix::from_dense(&[vec![1.0, 2.0], vec![0.5, 1.0]]);
        let err = QpProblem::new(p, vec![0.0, 0.0], CsrMatrix::zeros(0, 2), vec![], vec![]);
        assert!(matches!(err, Err(SolverError::InvalidProblem(_))));
    }

    #[test]
    fn rejects_structurally_asymmetric_p() {
        let p = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]);
        assert!(QpProblem::new(p, vec![0.0; 2], CsrMatrix::zeros(0, 2), vec![], vec![]).is_err());
    }

    #[test]
    fn rejects_crossed_bounds() {
        let err = QpProblem::new(
            CsrMatrix::identity(1),
            vec![0.0],
            CsrMatrix::identity(1),
            vec![2.0],
            vec![1.0],
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_shape_mismatches() {
        assert!(QpProblem::new(
            CsrMatrix::identity(2),
            vec![0.0],
            CsrMatrix::identity(2),
            vec![0.0; 2],
            vec![0.0; 2]
        )
        .is_err());
        assert!(QpProblem::new(
            CsrMatrix::identity(2),
            vec![0.0; 2],
            CsrMatrix::identity(3),
            vec![0.0; 3],
            vec![0.0; 3]
        )
        .is_err());
    }

    #[test]
    fn rejects_non_finite_p_entries() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let p = CsrMatrix::from_dense(&[vec![bad, 0.0], vec![0.0, 1.0]]);
            let err = QpProblem::new(p, vec![0.0; 2], CsrMatrix::zeros(0, 2), vec![], vec![]);
            assert!(matches!(err, Err(SolverError::InvalidProblem(_))), "{bad}");
        }
    }

    #[test]
    fn rejects_non_finite_a_entries() {
        for bad in [f64::NAN, f64::INFINITY] {
            let a = CsrMatrix::from_dense(&[vec![bad, 1.0]]);
            let err = QpProblem::new(CsrMatrix::identity(2), vec![0.0; 2], a, vec![0.0], vec![1.0]);
            assert!(matches!(err, Err(SolverError::InvalidProblem(_))), "{bad}");
        }
    }

    #[test]
    fn rejects_non_finite_q_entries() {
        for bad in [f64::NAN, f64::INFINITY] {
            let err = QpProblem::new(
                CsrMatrix::identity(1),
                vec![bad],
                CsrMatrix::identity(1),
                vec![0.0],
                vec![1.0],
            );
            assert!(matches!(err, Err(SolverError::InvalidProblem(_))), "{bad}");
        }
        let mut p = valid();
        assert!(p.update_q(vec![f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn rejects_nan_bounds_but_accepts_infinite_sentinels() {
        let mk = |l: f64, u: f64| {
            QpProblem::new(
                CsrMatrix::identity(1),
                vec![0.0],
                CsrMatrix::identity(1),
                vec![l],
                vec![u],
            )
        };
        assert!(mk(f64::NAN, 1.0).is_err());
        assert!(mk(0.0, f64::NAN).is_err());
        // ±∞ are the "unbounded side" sentinels and must stay legal.
        assert!(mk(f64::NEG_INFINITY, f64::INFINITY).is_ok());
        assert!(mk(f64::NEG_INFINITY, 1.0).is_ok());
        let mut p = valid();
        assert!(p.update_bounds(vec![f64::NAN], vec![1.0]).is_err());
        assert!(p.update_bounds(vec![f64::NEG_INFINITY], vec![f64::INFINITY]).is_ok());
    }

    #[test]
    fn primal_infeasibility_measures_violation() {
        let p = valid();
        assert_eq!(p.primal_infeasibility(&[0.0, 0.0]), 0.0);
        assert!((p.primal_infeasibility(&[3.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parametric_updates() {
        let mut p = valid();
        p.update_bounds(vec![-2.0], vec![2.0]).unwrap();
        assert_eq!(p.l()[0], -2.0);
        assert!(p.update_bounds(vec![1.0], vec![-1.0]).is_err());
        p.update_q(vec![5.0, 5.0]).unwrap();
        assert_eq!(p.q()[0], 5.0);
        assert!(p.update_q(vec![1.0]).is_err());
    }

    #[test]
    fn name_roundtrip() {
        let p = valid().with_name("svm_10");
        assert_eq!(p.name(), "svm_10");
    }
}
