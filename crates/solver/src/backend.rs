//! Pluggable KKT-system backends.
//!
//! One ADMM iteration needs the solution `(x̃, z̃)` of Eq. (2). How that
//! system is solved is the entire difference between the CPU, GPU, and FPGA
//! incarnations of OSQP, so it is abstracted behind [`KktBackend`]:
//!
//! * [`DirectLdltBackend`] factors the quasi-definite KKT matrix once and
//!   reuses the numeric factorization until ρ changes;
//! * [`CpuPcgBackend`] solves the reduced system (Eq. 3) iteratively with
//!   warm-started PCG — the same computation RSQP maps onto the FPGA;
//! * `rsqp-core` provides a third implementation that runs the PCG
//!   instruction stream through the cycle-level architecture simulator.

use std::sync::Arc;

use rsqp_linsys::{
    min_degree_ordering, pcg_with, rcm_ordering, KktMatrix, Ldlt, PcgSettings, PcgWorkspace,
    ReducedKktOp, SymmetricPermutation,
};
use rsqp_par::ThreadPool;
use rsqp_sparse::CsrMatrix;

use crate::settings::KktOrdering;
use crate::SolverError;

/// Cumulative work counters reported by a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Number of KKT solves (one per ADMM iteration).
    pub kkt_solves: usize,
    /// Numeric factorizations performed (direct method only).
    pub factorizations: usize,
    /// Total inner PCG iterations (indirect methods only).
    pub cg_iterations: usize,
    /// Total sparse matrix-vector products evaluated.
    pub spmv_evals: usize,
}

impl BackendStats {
    /// Field-wise sum, used to combine counters across a backend retired by
    /// the recovery ladder and its replacement.
    pub fn merged(self, other: BackendStats) -> BackendStats {
        BackendStats {
            kkt_solves: self.kkt_solves + other.kkt_solves,
            factorizations: self.factorizations + other.factorizations,
            cg_iterations: self.cg_iterations + other.cg_iterations,
            spmv_evals: self.spmv_evals + other.spmv_evals,
        }
    }
}

/// A solver for the ADMM KKT system of Eq. (2).
///
/// Implementations receive the **scaled** problem data at construction and
/// the current scaled iterates at every call.
pub trait KktBackend {
    /// Short identifier used in reports (e.g. `"ldlt"`, `"cpu-pcg"`).
    fn name(&self) -> &str;

    /// Informs the backend that the ρ vector changed. Direct methods must
    /// refactorize; indirect methods just swap the diagonal.
    ///
    /// # Errors
    ///
    /// Returns an error if the refactorization fails.
    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError>;

    /// Sets the inner-solver relative tolerance (no-op for direct methods).
    fn set_cg_tolerance(&mut self, _eps: f64) {}

    /// Solves Eq. (2) for the current iterates, writing `x̃^{k+1}` and
    /// `z̃^{k+1}`.
    ///
    /// # Errors
    ///
    /// Returns an error on numerical failure.
    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError>;

    /// Replaces the matrix *values* (same structure) after a
    /// [`crate::QpProblem::update_matrices`]-style parametric update.
    ///
    /// # Errors
    ///
    /// Returns an error if the backend cannot apply the update (structure
    /// changed, refactorization failed) — the caller should then rebuild
    /// the backend from scratch.
    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError>;

    /// Cumulative work counters.
    fn stats(&self) -> BackendStats;
}

/// Computes the fill-reducing ordering [`DirectLdltBackend`] would use for
/// the KKT pattern of `(P, A)` under `ordering`, without factorizing.
/// Returns `None` for [`KktOrdering::Natural`] (no permutation).
///
/// The result depends only on the sparsity structure — the KKT values are
/// assembled with placeholder σ/ρ — so it can be computed once per pattern,
/// cached, and replayed through [`DirectLdltBackend::with_permutation`] for
/// every value instance of the structure (this is the symbolic half of the
/// factorization that `rsqp-core`'s customization cache amortizes).
///
/// # Errors
///
/// Returns [`SolverError::Linsys`] if the KKT assembly or the ordering
/// computation fails (inconsistent shapes).
pub fn kkt_ordering(
    p: &CsrMatrix,
    a: &CsrMatrix,
    ordering: KktOrdering,
) -> Result<Option<Vec<usize>>, SolverError> {
    let rho = vec![1.0; a.nrows()];
    let kkt = KktMatrix::assemble(p, a, 1.0, &rho)?;
    Ok(match ordering {
        KktOrdering::Natural => None,
        KktOrdering::Rcm => Some(rcm_ordering(kkt.matrix())?),
        KktOrdering::MinDegree => Some(min_degree_ordering(kkt.matrix())?),
    })
}

/// Direct LDLᵀ backend (OSQP's CPU default).
#[derive(Debug)]
pub struct DirectLdltBackend {
    n: usize,
    m: usize,
    sigma: f64,
    kkt: KktMatrix,
    factor: Ldlt,
    permutation: Option<SymmetricPermutation>,
    rho_inv: Vec<f64>,
    rhs: Vec<f64>,
    scratch: Vec<f64>,
    stats: BackendStats,
}

impl DirectLdltBackend {
    /// Assembles and factorizes the KKT matrix with the default
    /// (minimum-degree) fill-reducing ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Linsys`] if the assembly or factorization
    /// fails (e.g. `P` not PSD enough for quasi-definiteness).
    pub fn new(p: &CsrMatrix, a: &CsrMatrix, sigma: f64, rho: &[f64]) -> Result<Self, SolverError> {
        Self::with_ordering(p, a, sigma, rho, KktOrdering::MinDegree)
    }

    /// Assembles and factorizes the KKT matrix under a chosen ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Linsys`] on assembly/factorization failure.
    pub fn with_ordering(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        ordering: KktOrdering,
    ) -> Result<Self, SolverError> {
        let kkt = KktMatrix::assemble(p, a, sigma, rho)?;
        let permutation = match ordering {
            KktOrdering::Natural => None,
            KktOrdering::Rcm => {
                Some(SymmetricPermutation::new(kkt.matrix(), rcm_ordering(kkt.matrix())?)?)
            }
            KktOrdering::MinDegree => {
                Some(SymmetricPermutation::new(kkt.matrix(), min_degree_ordering(kkt.matrix())?)?)
            }
        };
        Self::from_parts(p, a, sigma, rho, kkt, permutation)
    }

    /// Assembles and factorizes under a caller-provided fill-reducing
    /// permutation, skipping the symbolic ordering search. The ordering of
    /// the KKT pattern depends only on the *structure* of `P` and `A`, so a
    /// permutation computed once (see [`kkt_ordering`]) transfers to every
    /// problem with the same sparsity pattern — including the re-equilibrated
    /// matrices a parametric session produces.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Linsys`] if `perm` is not a permutation of the
    /// KKT dimension `n + m` or the factorization fails.
    pub fn with_permutation(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        perm: Vec<usize>,
    ) -> Result<Self, SolverError> {
        let kkt = KktMatrix::assemble(p, a, sigma, rho)?;
        let permutation = Some(SymmetricPermutation::new(kkt.matrix(), perm)?);
        Self::from_parts(p, a, sigma, rho, kkt, permutation)
    }

    fn from_parts(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        kkt: KktMatrix,
        permutation: Option<SymmetricPermutation>,
    ) -> Result<Self, SolverError> {
        let factor = match &permutation {
            Some(sp) => Ldlt::factor(sp.matrix())?,
            None => Ldlt::factor(kkt.matrix())?,
        };
        let dim = p.nrows() + a.nrows();
        Ok(DirectLdltBackend {
            n: p.nrows(),
            m: a.nrows(),
            sigma,
            kkt,
            factor,
            permutation,
            rho_inv: rho.iter().map(|&r| 1.0 / r).collect(),
            rhs: vec![0.0; dim],
            scratch: vec![0.0; dim],
            stats: BackendStats { factorizations: 1, ..Default::default() },
        })
    }

    /// Number of stored entries in the `L` factor — a proxy for the
    /// fill-in / memory cost of the direct method.
    pub fn l_nnz(&self) -> usize {
        self.factor.l_nnz()
    }
}

impl KktBackend for DirectLdltBackend {
    fn name(&self) -> &str {
        "ldlt"
    }

    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError> {
        self.kkt.update_rho(rho)?;
        match &mut self.permutation {
            Some(sp) => {
                sp.refresh_values(self.kkt.matrix())?;
                self.factor.refactor(sp.matrix())?;
            }
            None => self.factor.refactor(self.kkt.matrix())?,
        }
        self.rho_inv = rho.iter().map(|&r| 1.0 / r).collect();
        self.stats.factorizations += 1;
        Ok(())
    }

    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError> {
        // rhs = [σx − q; z − ρ⁻¹y]
        for j in 0..self.n {
            self.rhs[j] = self.sigma * x[j] - q[j];
        }
        for i in 0..self.m {
            self.rhs[self.n + i] = z[i] - self.rho_inv[i] * y[i];
        }
        match &self.permutation {
            Some(sp) => {
                sp.permute_into(&self.rhs, &mut self.scratch);
                self.factor.solve_in_place(&mut self.scratch)?;
                sp.unpermute_into(&self.scratch, &mut self.rhs);
            }
            None => self.factor.solve_in_place(&mut self.rhs)?,
        }
        xtilde.copy_from_slice(&self.rhs[..self.n]);
        // z̃ = z + ρ⁻¹(ν − y)
        for i in 0..self.m {
            let nu = self.rhs[self.n + i];
            ztilde[i] = z[i] + self.rho_inv[i] * (nu - y[i]);
        }
        self.stats.kkt_solves += 1;
        Ok(())
    }

    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError> {
        // Reassemble (same structure by contract) and refactor.
        self.kkt = KktMatrix::assemble(p, a, self.sigma, rho)?;
        match &mut self.permutation {
            Some(sp) => {
                sp.refresh_values(self.kkt.matrix())?;
                self.factor.refactor(sp.matrix())?;
            }
            None => self.factor.refactor(self.kkt.matrix())?,
        }
        self.rho_inv = rho.iter().map(|&r| 1.0 / r).collect();
        self.stats.factorizations += 1;
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

/// Matrix-free PCG backend on the reduced KKT system (Eq. 3).
///
/// The backend owns its [`ReducedKktOp`] (with the cached gather transpose
/// `Aᵀ`), a [`PcgWorkspace`], and the right-hand-side buffers for the whole
/// solver lifetime, so steady-state ADMM iterations perform **zero heap
/// allocations**. All SpMVs and the PCG reductions dispatch on the backend's
/// thread pool; results are bit-identical for any pool size.
#[derive(Debug)]
pub struct CpuPcgBackend {
    op: ReducedKktOp,
    pool: Arc<ThreadPool>,
    sigma: f64,
    eps: f64,
    max_iter: usize,
    tmp_m: Vec<f64>,
    rhs: Vec<f64>,
    ws: PcgWorkspace,
    stats: BackendStats,
}

impl CpuPcgBackend {
    /// Creates a strictly serial backend, cloning the (scaled) problem
    /// matrices — the indirect method stores `P`, `A`, and `Aᵀ` separately,
    /// exactly as the paper's accelerator does (§2.2).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes and ρ length are inconsistent (callers
    /// construct it from an already-validated [`crate::QpProblem`]).
    pub fn new(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        eps: f64,
        max_iter: usize,
    ) -> Self {
        Self::with_threads(p, a, sigma, rho, eps, max_iter, 1)
    }

    /// Like [`CpuPcgBackend::new`], but dispatching all kernels on a pool of
    /// `threads` worker threads (`1` = serial, no pool spawned).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes and ρ length are inconsistent.
    pub fn with_threads(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        eps: f64,
        max_iter: usize,
        threads: usize,
    ) -> Self {
        let pool = Arc::new(ThreadPool::new(threads));
        let op = ReducedKktOp::with_pool(
            Arc::new(p.clone()),
            Arc::new(a.clone()),
            sigma,
            rho,
            Arc::clone(&pool),
        )
        .expect("consistent problem shapes");
        CpuPcgBackend {
            op,
            pool,
            sigma,
            eps,
            max_iter,
            tmp_m: vec![0.0; a.nrows()],
            rhs: vec![0.0; p.nrows()],
            ws: PcgWorkspace::new(p.nrows()),
            stats: BackendStats::default(),
        }
    }

    /// Current inner tolerance.
    pub fn cg_tolerance(&self) -> f64 {
        self.eps
    }

    /// Worker threads the backend's kernels dispatch on.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl KktBackend for CpuPcgBackend {
    fn name(&self) -> &str {
        "cpu-pcg"
    }

    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError> {
        if rho.len() != self.op.rho().len() {
            return Err(SolverError::Backend("rho length changed".into()));
        }
        self.op.update_rho(rho).map_err(SolverError::Linsys)
    }

    fn set_cg_tolerance(&mut self, eps: f64) {
        self.eps = eps;
    }

    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError> {
        let count0 = self.op.spmv_count();
        // rhs = σx − q + Aᵀ(ρ∘z − y)
        let rho = self.op.rho();
        for i in 0..self.tmp_m.len() {
            self.tmp_m[i] = rho[i] * z[i] - y[i];
        }
        for j in 0..self.rhs.len() {
            self.rhs[j] = self.sigma * x[j] - q[j];
        }
        self.op.at_spmv_acc(1.0, &self.tmp_m, &mut self.rhs)?;

        let settings = PcgSettings { eps: self.eps, eps_abs: 1e-15, max_iter: self.max_iter };
        xtilde.copy_from_slice(x);
        let summary =
            pcg_with(&mut self.op, &self.rhs, xtilde, &settings, &mut self.ws, Some(&self.pool));
        match summary {
            Ok(s) => {
                self.stats.cg_iterations += s.iterations;
                // z̃ = A x̃
                self.op.a_spmv(xtilde, ztilde)?;
                self.stats.spmv_evals += self.op.spmv_count() - count0;
                self.stats.kkt_solves += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.spmv_evals += self.op.spmv_count() - count0;
                Err(e.into())
            }
        }
    }

    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError> {
        self.op.update_values(p, a, rho).map_err(SolverError::Linsys)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (CsrMatrix, CsrMatrix, Vec<f64>) {
        let p = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
        let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 0.0]]);
        (p, a, vec![0.5, 0.25])
    }

    #[test]
    fn direct_and_pcg_backends_agree() {
        let (p, a, rho) = data();
        let sigma = 1e-6;
        let mut direct = DirectLdltBackend::new(&p, &a, sigma, &rho).unwrap();
        let mut iterative = CpuPcgBackend::new(&p, &a, sigma, &rho, 1e-12, 1000);
        let x = vec![0.1, -0.2];
        let z = vec![0.3, 0.4];
        let y = vec![-0.1, 0.2];
        let q = vec![1.0, -1.0];
        let (mut xt1, mut zt1) = (vec![0.0; 2], vec![0.0; 2]);
        let (mut xt2, mut zt2) = (vec![0.0; 2], vec![0.0; 2]);
        direct.solve_kkt(&x, &z, &y, &q, &mut xt1, &mut zt1).unwrap();
        iterative.solve_kkt(&x, &z, &y, &q, &mut xt2, &mut zt2).unwrap();
        for i in 0..2 {
            assert!((xt1[i] - xt2[i]).abs() < 1e-7, "x {} vs {}", xt1[i], xt2[i]);
            assert!((zt1[i] - zt2[i]).abs() < 1e-6, "z {} vs {}", zt1[i], zt2[i]);
        }
    }

    #[test]
    fn cached_permutation_matches_fresh_ordering() {
        let (p, a, rho) = data();
        let sigma = 1e-6;
        let perm = kkt_ordering(&p, &a, KktOrdering::MinDegree).unwrap().expect("permutation");
        let mut fresh =
            DirectLdltBackend::with_ordering(&p, &a, sigma, &rho, KktOrdering::MinDegree).unwrap();
        let mut cached = DirectLdltBackend::with_permutation(&p, &a, sigma, &rho, perm).unwrap();
        let x = vec![0.1, -0.2];
        let z = vec![0.3, 0.4];
        let y = vec![-0.1, 0.2];
        let q = vec![1.0, -1.0];
        let (mut xt1, mut zt1) = (vec![0.0; 2], vec![0.0; 2]);
        let (mut xt2, mut zt2) = (vec![0.0; 2], vec![0.0; 2]);
        fresh.solve_kkt(&x, &z, &y, &q, &mut xt1, &mut zt1).unwrap();
        cached.solve_kkt(&x, &z, &y, &q, &mut xt2, &mut zt2).unwrap();
        assert_eq!(xt1, xt2, "replayed ordering must reproduce the fresh factorization");
        assert_eq!(zt1, zt2);
    }

    #[test]
    fn with_permutation_rejects_invalid_perm() {
        let (p, a, rho) = data();
        assert!(DirectLdltBackend::with_permutation(&p, &a, 1e-6, &rho, vec![0, 0, 1, 2]).is_err());
        assert!(DirectLdltBackend::with_permutation(&p, &a, 1e-6, &rho, vec![0, 1]).is_err());
    }

    #[test]
    fn natural_ordering_has_no_permutation() {
        let (p, a, _) = data();
        assert!(kkt_ordering(&p, &a, KktOrdering::Natural).unwrap().is_none());
    }

    #[test]
    fn direct_backend_counts_factorizations() {
        let (p, a, rho) = data();
        let mut b = DirectLdltBackend::new(&p, &a, 1e-6, &rho).unwrap();
        assert_eq!(b.stats().factorizations, 1);
        b.update_rho(&[1.0, 1.0]).unwrap();
        assert_eq!(b.stats().factorizations, 2);
        assert!(b.l_nnz() > 0);
    }

    #[test]
    fn pcg_backend_tracks_cg_iterations() {
        let (p, a, rho) = data();
        let mut b = CpuPcgBackend::new(&p, &a, 1e-6, &rho, 1e-10, 1000);
        let (mut xt, mut zt) = (vec![0.0; 2], vec![0.0; 2]);
        b.solve_kkt(&[0.0; 2], &[0.0; 2], &[0.0; 2], &[1.0, 1.0], &mut xt, &mut zt).unwrap();
        assert!(b.stats().cg_iterations > 0);
        assert!(b.stats().spmv_evals > 0);
        assert_eq!(b.stats().kkt_solves, 1);
    }

    #[test]
    fn pcg_update_rho_validates_length() {
        let (p, a, rho) = data();
        let mut b = CpuPcgBackend::new(&p, &a, 1e-6, &rho, 1e-8, 100);
        assert!(b.update_rho(&[1.0]).is_err());
        assert!(b.update_rho(&[1.0, 1.0]).is_ok());
    }

    #[test]
    fn backend_names_are_distinct() {
        let (p, a, rho) = data();
        let d = DirectLdltBackend::new(&p, &a, 1e-6, &rho).unwrap();
        let c = CpuPcgBackend::new(&p, &a, 1e-6, &rho, 1e-8, 100);
        assert_ne!(d.name(), c.name());
    }

    #[test]
    fn set_cg_tolerance_applies_to_pcg() {
        let (p, a, rho) = data();
        let mut c = CpuPcgBackend::new(&p, &a, 1e-6, &rho, 1e-8, 100);
        c.set_cg_tolerance(1e-3);
        assert_eq!(c.cg_tolerance(), 1e-3);
    }
}
