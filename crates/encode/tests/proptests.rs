//! Property-based tests for the encoding and scheduling layer.

use proptest::prelude::*;
use rsqp_encode::{
    baseline_set, dp_schedule, greedy_schedule, search_structures, Alphabet, SparsityString,
    StructureSet,
};
use rsqp_sparse::CsrMatrix;

/// Strategy: a list of row populations and a width C.
fn arb_rows_and_c() -> impl Strategy<Value = (Vec<usize>, usize)> {
    (prop::collection::vec(1usize..40, 1..80), prop::sample::select(vec![4usize, 8, 16, 32]))
}

fn matrix_of(rows: &[usize]) -> CsrMatrix {
    let ncols = 64;
    let mut t = Vec::new();
    for (i, &nnz) in rows.iter().enumerate() {
        for j in 0..nnz {
            t.push((i, j % ncols, 1.0));
        }
    }
    // j % ncols may collide for nnz > ncols; pad columns wide enough.
    let ncols = rows.iter().copied().max().unwrap_or(1).max(ncols);
    let mut t2 = Vec::new();
    for (i, &nnz) in rows.iter().enumerate() {
        for j in 0..nnz {
            t2.push((i, j, 1.0));
        }
    }
    let _ = t;
    CsrMatrix::from_triplets(rows.len(), ncols, t2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encoding_conserves_nnz((rows, c) in arb_rows_and_c()) {
        let m = matrix_of(&rows);
        let s = SparsityString::encode(&m, c);
        prop_assert_eq!(s.nnz(), m.nnz());
        // Provenance covers every non-zero exactly once.
        let covered: usize = s.sources().iter().map(|p| p.count).sum();
        prop_assert_eq!(covered, m.nnz());
        // Character capacities dominate the chunk populations.
        let al = s.alphabet();
        for (ch, src) in s.chars().iter().zip(s.sources()) {
            prop_assert!(src.count <= al.width(*ch));
        }
    }

    #[test]
    fn schedules_are_complete_and_ep_consistent((rows, c) in arb_rows_and_c()) {
        let m = matrix_of(&rows);
        let s = SparsityString::encode(&m, c);
        let base = baseline_set(Alphabet::new(c));
        for sched in [greedy_schedule(&s, &base), dp_schedule(&s, &base)] {
            prop_assert!(sched.is_complete());
            prop_assert_eq!(sched.ep(), c * sched.cycles() - m.nnz());
            // Baseline: exactly one char per cycle.
            prop_assert_eq!(sched.cycles(), s.len());
        }
    }

    #[test]
    fn dp_is_lower_bound_for_greedy((rows, c) in arb_rows_and_c(), target in 2usize..5) {
        let m = matrix_of(&rows);
        let s = SparsityString::encode(&m, c);
        let set = search_structures(&s, target);
        let g = greedy_schedule(&s, &set);
        let d = dp_schedule(&s, &set);
        prop_assert!(g.is_complete());
        prop_assert!(d.is_complete());
        prop_assert!(d.cycles() <= g.cycles());
        // Any schedule needs at least ceil(nnz / C) cycles.
        prop_assert!(d.cycles() >= m.nnz().div_ceil(c));
    }

    #[test]
    fn search_never_worse_than_baseline((rows, c) in arb_rows_and_c()) {
        let m = matrix_of(&rows);
        let s = SparsityString::encode(&m, c);
        let base_cycles = greedy_schedule(&s, &baseline_set(Alphabet::new(c))).cycles();
        let set = search_structures(&s, 4);
        let custom_cycles = greedy_schedule(&s, &set).cycles();
        prop_assert!(custom_cycles <= base_cycles);
    }

    #[test]
    fn structure_sets_roundtrip_notation(counts in prop::collection::vec(0usize..3, 3)) {
        // Compose a homogeneous-run notation for C = 16 and reparse it.
        let al = Alphabet::new(16);
        let mut notation = String::new();
        let widths = [(16usize, 'a'), (4, 'c'), (1, 'e')];
        for (&n, &(k, ch)) in counts.iter().zip(widths.iter()) {
            if n > 0 {
                notation.push_str(&format!("{k}{ch}"));
            }
        }
        notation.push_str("1e"); // always include fallback notation
        let set = StructureSet::parse(&notation, al);
        let shown = set.to_string();
        let prefix_ok = shown.starts_with("16{");
        prop_assert!(prefix_ok, "unexpected notation prefix");
        // Reparse the inner notation and compare structure counts.
        let inner = shown.trim_start_matches("16{").trim_end_matches('}');
        let reparsed = StructureSet::parse(inner, al);
        prop_assert_eq!(reparsed.len(), set.len());
    }
}
