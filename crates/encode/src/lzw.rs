//! LZW dictionary mining over sparsity strings (§4.2).
//!
//! Problem (4) — pick at most `|S|_target` structures minimizing the
//! scheduled length — is combinatorial, so the paper "uses a method based on
//! the dictionary-based lossless compression algorithm LZW to search for a
//! candidate S". This module runs LZW over the string and reports the
//! dictionary phrases together with how often the encoder actually emitted
//! them; frequent long phrases are exactly the recurring computation
//! patterns worth dedicating MAC-tree connections to.

use std::collections::HashMap;

use crate::{Alphabet, DOLLAR};

/// The result of one LZW pass: dictionary phrases with emission counts.
#[derive(Debug, Clone)]
pub struct LzwDictionary {
    phrases: HashMap<Vec<u8>, usize>,
}

impl LzwDictionary {
    /// Runs LZW over `chars` and records, for every phrase the encoder
    /// emits, how many times it was emitted.
    pub fn build(chars: &[u8]) -> Self {
        let mut dict: HashMap<Vec<u8>, ()> = HashMap::new();
        let mut phrases: HashMap<Vec<u8>, usize> = HashMap::new();
        // Single characters are implicitly in the dictionary.
        let mut w: Vec<u8> = Vec::new();
        for &ch in chars {
            let mut wc = w.clone();
            wc.push(ch);
            let known = wc.len() == 1 || dict.contains_key(&wc);
            if known {
                w = wc;
            } else {
                *phrases.entry(w.clone()).or_insert(0) += 1;
                dict.insert(wc, ());
                w = vec![ch];
            }
        }
        if !w.is_empty() {
            *phrases.entry(w).or_insert(0) += 1;
        }
        LzwDictionary { phrases }
    }

    /// Number of distinct emitted phrases.
    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    /// True when no phrase was emitted (empty input).
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Emission count of a phrase (0 if never emitted).
    pub fn count(&self, phrase: &[u8]) -> usize {
        self.phrases.get(phrase).copied().unwrap_or(0)
    }

    /// Candidate MAC structures: phrases of ≥ 2 characters whose slot widths
    /// fit the datapath (`Σ width ≤ C`, no `$`), ranked by estimated cycle
    /// savings `count · (len − 1)`.
    pub fn candidates(&self, alphabet: Alphabet, limit: usize) -> Vec<(Vec<u8>, usize)> {
        let mut out: Vec<(Vec<u8>, usize)> = self
            .phrases
            .iter()
            .filter(|(p, _)| {
                p.len() >= 2
                    && !p.contains(&DOLLAR)
                    && p.iter().map(|&l| alphabet.width(l)).sum::<usize>() <= alphabet.c()
            })
            .map(|(p, &cnt)| {
                let savings = cnt * (p.len() - 1);
                (p.clone(), savings)
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(limit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_pattern_is_discovered() {
        // "ab" repeated: LZW learns "ab", "ba", "aba", ... and emits
        // multi-character phrases often.
        let s: Vec<u8> = b"abababababababababababab".to_vec();
        let d = LzwDictionary::build(&s);
        assert!(!d.is_empty());
        let cands = d.candidates(Alphabet::new(4), 10);
        assert!(!cands.is_empty());
        // Top candidate must be a substring of the repetition.
        let top = std::str::from_utf8(&cands[0].0).unwrap().to_string();
        assert!("abababab".contains(&top), "top candidate {top}");
    }

    #[test]
    fn empty_input_yields_empty_dictionary() {
        let d = LzwDictionary::build(b"");
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn counts_reflect_repetition() {
        let many = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        let d = LzwDictionary::build(many);
        // "aa" must have been emitted at least once and 'a' phrases dominate.
        let total: usize = (0..5).map(|k| d.count(&vec![b'a'; k + 1])).sum();
        assert!(total >= 3);
    }

    #[test]
    fn candidates_respect_width_and_dollar_rules() {
        let al = Alphabet::new(4);
        // 'c' has width 4 at C=4, so "cc" (width 8) must be filtered out;
        // anything with '$' too.
        let s: Vec<u8> = b"cccccccc$c$c$c$c".to_vec();
        let d = LzwDictionary::build(&s);
        for (p, _) in d.candidates(al, 100) {
            assert!(!p.contains(&DOLLAR));
            let w: usize = p.iter().map(|&l| al.width(l)).sum();
            assert!(w <= 4);
        }
    }

    #[test]
    fn candidate_limit_is_respected() {
        let s: Vec<u8> = b"abbaabbaabbaabbaabba".to_vec();
        let d = LzwDictionary::build(&s);
        assert!(d.candidates(Alphabet::new(8), 2).len() <= 2);
    }
}
