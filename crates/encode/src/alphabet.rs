//! The sparsity alphabet and row-string encoding (§4.1).

use rsqp_sparse::CsrMatrix;

/// The continuation character for rows longer than `C`: a full-width chunk
/// whose partial sum is accumulated into the next pack of the same row.
pub const DOLLAR: u8 = b'$';

/// The character alphabet for a datapath of width `C`.
///
/// Characters `a, b, c, …` stand for rows with at most `1, 2, 4, …, C`
/// non-zeros (log₂ buckets, as in the paper: "we use log₂(nnz_row) instead
/// of nnz_row to encode the sparsity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alphabet {
    c: usize,
}

impl Alphabet {
    /// Creates the alphabet for width `c`.
    ///
    /// # Panics
    ///
    /// Panics unless `c` is a power of two in `[2, 1024]`.
    pub fn new(c: usize) -> Self {
        assert!(
            c.is_power_of_two() && (2..=1024).contains(&c),
            "C must be a power of two in [2, 1024], got {c}"
        );
        Alphabet { c }
    }

    /// The datapath width `C`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of letters (`log₂C + 1`): `a` through the full-width letter.
    pub fn num_letters(&self) -> usize {
        self.c.trailing_zeros() as usize + 1
    }

    /// The letter for a row with `nnz` stored entries (`nnz ≤ C`).
    ///
    /// # Panics
    ///
    /// Panics if `nnz > C`.
    pub fn letter_for(&self, nnz: usize) -> u8 {
        assert!(nnz <= self.c, "row population {nnz} exceeds width {}", self.c);
        let bucket = rsqp_sparse::pattern::log2_bucket(nnz);
        b'a' + bucket as u8
    }

    /// The capacity (width in lanes) of a letter: `a → 1`, `b → 2`, `c → 4`…
    /// `$` has width `C`.
    ///
    /// # Panics
    ///
    /// Panics for letters outside the alphabet.
    pub fn width(&self, letter: u8) -> usize {
        if letter == DOLLAR {
            return self.c;
        }
        let idx = (letter as i32) - (b'a' as i32);
        assert!(
            (0..self.num_letters() as i32).contains(&idx),
            "letter {:?} outside alphabet for C={}",
            letter as char,
            self.c
        );
        1usize << idx
    }

    /// The full-width letter (`g` when `C = 64`).
    pub fn full_letter(&self) -> u8 {
        b'a' + (self.num_letters() - 1) as u8
    }
}

/// Provenance of one character: which matrix row (chunk) it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackSource {
    /// Matrix row index.
    pub row: usize,
    /// Offset of the chunk's first non-zero within the row.
    pub offset: usize,
    /// Number of actual non-zeros in this chunk.
    pub count: usize,
}

/// A matrix sparsity structure encoded as a string of bucket letters, with
/// per-character provenance back to the matrix rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityString {
    alphabet: Alphabet,
    chars: Vec<u8>,
    sources: Vec<PackSource>,
    nnz: usize,
}

impl SparsityString {
    /// Encodes a matrix for datapath width `c`.
    ///
    /// Rows with more than `c` non-zeros are emitted as `⌊nnz/c⌋` `$`
    /// characters followed by a remainder letter (if any) — the paper's
    /// "series of `$` … broken down to a series of `g`".
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a power of two in `[2, 1024]`.
    pub fn encode(m: &CsrMatrix, c: usize) -> Self {
        let alphabet = Alphabet::new(c);
        let mut chars = Vec::with_capacity(m.nrows());
        let mut sources = Vec::with_capacity(m.nrows());
        for row in 0..m.nrows() {
            let nnz = m.row_nnz(row);
            if nnz == 0 {
                // Empty rows produce no work for the SpMV engine: the result
                // lane is zero-filled by the alignment logic.
                continue;
            }
            let mut off = 0;
            let mut remaining = nnz;
            while remaining > c {
                chars.push(DOLLAR);
                sources.push(PackSource { row, offset: off, count: c });
                off += c;
                remaining -= c;
            }
            chars.push(alphabet.letter_for(remaining));
            sources.push(PackSource { row, offset: off, count: remaining });
        }
        SparsityString { alphabet, chars, sources, nnz: m.nnz() }
    }

    /// Concatenates several encoded matrices (e.g. `P`, `A`, `Aᵀ`) so a
    /// single structure set can be searched for the whole SpMV workload.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets (widths) differ or `parts` is empty.
    pub fn concat(parts: &[&SparsityString]) -> Self {
        assert!(!parts.is_empty(), "concat of zero strings");
        let alphabet = parts[0].alphabet;
        assert!(
            parts.iter().all(|p| p.alphabet == alphabet),
            "concat requires identical alphabets"
        );
        let mut chars = Vec::new();
        let mut sources = Vec::new();
        let mut nnz = 0;
        for p in parts {
            chars.extend_from_slice(&p.chars);
            sources.extend_from_slice(&p.sources);
            nnz += p.nnz;
        }
        SparsityString { alphabet, chars, sources, nnz }
    }

    /// Rebuilds a string from raw parts (used for prefix sampling in the
    /// structure search).
    ///
    /// # Panics
    ///
    /// Panics if `chars` and `sources` lengths disagree.
    pub fn from_parts(
        alphabet: Alphabet,
        chars: Vec<u8>,
        sources: Vec<PackSource>,
        nnz: usize,
    ) -> Self {
        assert_eq!(chars.len(), sources.len(), "chars/sources length mismatch");
        SparsityString { alphabet, chars, sources, nnz }
    }

    /// The alphabet in use.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The characters of the string.
    pub fn chars(&self) -> &[u8] {
        &self.chars
    }

    /// The per-character provenance.
    pub fn sources(&self) -> &[PackSource] {
        &self.sources
    }

    /// String length (number of row chunks).
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// True for a matrix with no stored entries.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Total non-zeros of the encoded matrix (used in the `E_p` formula).
    pub fn nnz(&self) -> usize {
        self.nnz
    }
}

impl std::fmt::Display for SparsityString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(std::str::from_utf8(&self.chars).expect("alphabet is ASCII"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_letters_and_widths() {
        let a = Alphabet::new(64);
        assert_eq!(a.num_letters(), 7);
        assert_eq!(a.letter_for(1), b'a');
        assert_eq!(a.letter_for(2), b'b');
        assert_eq!(a.letter_for(3), b'c');
        assert_eq!(a.letter_for(4), b'c');
        assert_eq!(a.letter_for(64), b'g');
        assert_eq!(a.width(b'a'), 1);
        assert_eq!(a.width(b'g'), 64);
        assert_eq!(a.width(DOLLAR), 64);
        assert_eq!(a.full_letter(), b'g');
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn alphabet_rejects_non_power_of_two() {
        Alphabet::new(6);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn letter_for_rejects_oversized_rows() {
        Alphabet::new(4).letter_for(5);
    }

    fn row_matrix(rows: &[usize], ncols: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for (i, &nnz) in rows.iter().enumerate() {
            for j in 0..nnz {
                t.push((i, j % ncols, 1.0));
            }
        }
        CsrMatrix::from_triplets(rows.len(), ncols, t)
    }

    #[test]
    fn encodes_paper_example() {
        // Figure 2(a): rows with 4, 2, 2, 1, 1, 1, 3, 1 nnz. The figure
        // uses direct counts (a=1, b=2, c=3, d=4) for illustration; with the
        // log₂ buckets used on real problems (§4.1) both the 3- and 4-nnz
        // rows map to 'c' at C=4, giving "cbbaaaca".
        let m = row_matrix(&[4, 2, 2, 1, 1, 1, 3, 1], 8);
        let s = SparsityString::encode(&m, 4);
        assert_eq!(s.to_string(), "cbbaaaca");
        assert_eq!(s.nnz(), 15);
    }

    #[test]
    fn long_rows_become_dollar_chunks() {
        let m = row_matrix(&[10, 2], 16);
        let s = SparsityString::encode(&m, 4);
        // 10 = 4 + 4 + 2 -> "$$b", then "b".
        assert_eq!(s.to_string(), "$$bb");
        assert_eq!(s.sources()[0], PackSource { row: 0, offset: 0, count: 4 });
        assert_eq!(s.sources()[1], PackSource { row: 0, offset: 4, count: 4 });
        assert_eq!(s.sources()[2], PackSource { row: 0, offset: 8, count: 2 });
        assert_eq!(s.sources()[3], PackSource { row: 1, offset: 0, count: 2 });
    }

    #[test]
    fn exact_multiple_has_no_remainder_letter() {
        let m = row_matrix(&[8], 8);
        let s = SparsityString::encode(&m, 4);
        // 8 = 4 + 4 -> "$" then final full-width letter for the last chunk.
        assert_eq!(s.to_string(), "$c");
        assert_eq!(s.sources()[1].count, 4);
    }

    #[test]
    fn empty_rows_are_skipped() {
        let m = CsrMatrix::from_triplets(3, 4, vec![(1, 0, 1.0)]);
        let s = SparsityString::encode(&m, 4);
        assert_eq!(s.to_string(), "a");
        assert_eq!(s.sources()[0].row, 1);
    }

    #[test]
    fn concat_preserves_provenance_and_nnz() {
        let m1 = row_matrix(&[2], 4);
        let m2 = row_matrix(&[1, 1], 4);
        let s1 = SparsityString::encode(&m1, 4);
        let s2 = SparsityString::encode(&m2, 4);
        let s = SparsityString::concat(&[&s1, &s2]);
        assert_eq!(s.to_string(), "baa");
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.len(), 3);
    }
}

impl SparsityString {
    /// Character histogram over the alphabet (index 0 = `a`, …, last =
    /// `$`). The run-length structure this summarizes is what the LZW
    /// search exploits.
    pub fn histogram(&self) -> Vec<usize> {
        let letters = self.alphabet.num_letters();
        let mut hist = vec![0usize; letters + 1];
        for &ch in &self.chars {
            if ch == DOLLAR {
                hist[letters] += 1;
            } else {
                hist[(ch - b'a') as usize] += 1;
            }
        }
        hist
    }

    /// Shannon entropy of the character distribution in bits. Low entropy
    /// (long homogeneous runs, few distinct letters) predicts a large Δη
    /// from customization; the eqqp class has the highest entropy of the
    /// benchmark and the smallest gains (Figure 9).
    pub fn entropy_bits(&self) -> f64 {
        let hist = self.histogram();
        let total: usize = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in &hist {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Number of maximal homogeneous runs (e.g. `aaabba` has 3 runs). Fewer
    /// runs per character means more exploitable repetition.
    pub fn run_count(&self) -> usize {
        let mut runs = 0;
        let mut prev = None;
        for &ch in &self.chars {
            if Some(ch) != prev {
                runs += 1;
                prev = Some(ch);
            }
        }
        runs
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    fn string_of(rows: &[usize]) -> SparsityString {
        let mut t = Vec::new();
        for (i, &nnz) in rows.iter().enumerate() {
            for j in 0..nnz {
                t.push((i, j, 1.0));
            }
        }
        SparsityString::encode(&CsrMatrix::from_triplets(rows.len(), 64, t), 4)
    }

    #[test]
    fn histogram_counts_letters() {
        let s = string_of(&[1, 1, 2, 4]); // "aabc"
        assert_eq!(s.histogram(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn entropy_of_uniform_string_is_zero() {
        let s = string_of(&[1; 10]);
        assert_eq!(s.entropy_bits(), 0.0);
        assert_eq!(s.run_count(), 1);
    }

    #[test]
    fn entropy_grows_with_variety() {
        let uniform = string_of(&[1; 12]);
        let mixed = string_of(&[1, 2, 4, 1, 2, 4, 1, 2, 4, 1, 2, 4]);
        assert!(mixed.entropy_bits() > uniform.entropy_bits());
        assert_eq!(mixed.run_count(), 12);
        // Three letters equally likely -> log2(3) bits.
        assert!((mixed.entropy_bits() - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn empty_string_stats() {
        let s = SparsityString::encode(&CsrMatrix::zeros(2, 2), 4);
        assert_eq!(s.entropy_bits(), 0.0);
        assert_eq!(s.run_count(), 0);
    }
}
