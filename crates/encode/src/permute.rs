//! Problem-structure adaptation by row permutation (§4.4).
//!
//! The paper notes that rows of `A` can be permuted (with the bounds and
//! duals permuted alongside) to create longer repeated substrings in the
//! sparsity string, lowering the achievable `E_p` — but that the KKT
//! symmetry constraint makes the net effect small. This module provides the
//! permutation construction so the claim can be measured (see the
//! `ablation_permute` harness).

use rsqp_sparse::CsrMatrix;

use crate::Alphabet;

/// A permutation that stably groups rows by their sparsity-string character
/// (rows with equal `⌈log₂ nnz⌉` buckets become contiguous). Grouped rows
/// maximize homogeneous runs like `aaaa…`, the patterns the structure
/// search exploits best.
///
/// Returns `perm` with new row `i` = old row `perm[i]`.
pub fn bucket_sort_rows(m: &CsrMatrix, c: usize) -> Vec<usize> {
    let alphabet = Alphabet::new(c);
    let mut order: Vec<usize> = (0..m.nrows()).collect();
    order.sort_by_key(|&i| {
        let nnz = m.row_nnz(i);
        if nnz == 0 {
            // Empty rows sort first; they do not appear in the string.
            0u8
        } else if nnz > c {
            // Long rows sort last ($ chunks).
            u8::MAX
        } else {
            alphabet.letter_for(nnz)
        }
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baseline_set, greedy_schedule, search_structures, SparsityString};

    fn alternating_matrix() -> CsrMatrix {
        // Rows alternate between 1 and 4 nnz: the unsorted string "adadad…"
        // has no runs; sorting produces "aaa…ddd…".
        let mut t = Vec::new();
        for i in 0..40 {
            let nnz = if i % 2 == 0 { 1 } else { 4 };
            for j in 0..nnz {
                t.push((i, j, 1.0));
            }
        }
        CsrMatrix::from_triplets(40, 8, t)
    }

    #[test]
    fn bucket_sort_groups_rows() {
        let m = alternating_matrix();
        let perm = bucket_sort_rows(&m, 8);
        let sorted = m.permute_rows(&perm);
        let s = SparsityString::encode(&sorted, 8);
        let text = s.to_string();
        // All 'a's come before all 'c's (4 nnz -> bucket c at C=8).
        let first_c = text.find('c').unwrap();
        let last_a = text.rfind('a').unwrap();
        assert!(last_a < first_c, "{text}");
    }

    #[test]
    fn sorting_can_reduce_ep() {
        let m = alternating_matrix();
        let c = 8;
        let original = SparsityString::encode(&m, c);
        let sorted = SparsityString::encode(&m.permute_rows(&bucket_sort_rows(&m, c)), c);
        let set_orig = search_structures(&original, 3);
        let set_sorted = search_structures(&sorted, 3);
        let ep_orig = greedy_schedule(&original, &set_orig).ep();
        let ep_sorted = greedy_schedule(&sorted, &set_sorted).ep();
        assert!(ep_sorted <= ep_orig, "sorted {ep_sorted} vs original {ep_orig}");
    }

    #[test]
    fn permutation_is_valid_and_baseline_invariant() {
        let m = alternating_matrix();
        let perm = bucket_sort_rows(&m, 8);
        let mut check = perm.clone();
        check.sort_unstable();
        assert_eq!(check, (0..40).collect::<Vec<_>>());
        // The baseline schedule (one char per cycle) is permutation
        // invariant — permutation only helps customized sets.
        let c = 8;
        let base = baseline_set(Alphabet::new(c));
        let a = greedy_schedule(&SparsityString::encode(&m, c), &base).cycles();
        let b = greedy_schedule(&SparsityString::encode(&m.permute_rows(&perm), c), &base).cycles();
        assert_eq!(a, b);
    }
}
