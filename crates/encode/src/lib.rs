//! Sparsity-string encoding and MAC-tree structure customization (§4.1–4.2
//! of the RSQP paper).
//!
//! The paper describes a problem's sparsity structure as a string: each
//! matrix row becomes a character according to `⌈log₂(nnz_row)⌉` (rows with
//! ≤1 non-zero are `a`, ≤2 are `b`, ≤4 are `c`, … up to the datapath width
//! `C`; longer rows are split into full-width `$` chunks plus a remainder).
//! Frequent substrings of this string are computation patterns that a
//! customized MAC reduction tree can finish in a single clock cycle.
//!
//! This crate implements the full pipeline:
//!
//! * [`Alphabet`] / [`SparsityString`] — the encoding itself, with
//!   provenance back to matrix rows (needed downstream for the compressed
//!   vector buffers),
//! * [`MacStructure`] / [`StructureSet`] — customized MAC-tree input
//!   partitions, with the paper's `64{8d4e1g}` notation,
//! * [`greedy_schedule`] / [`dp_schedule`] — mapping the string onto a
//!   structure set by string replacement (the paper's method) or by an
//!   optimal dynamic program (our ablation),
//! * [`LzwDictionary`] / [`search_structures`] — the dictionary-based
//!   lossless-compression search for a good structure set under a size
//!   budget `|S|_target` (Eq. 4).
//!
//! # Example
//!
//! ```
//! use rsqp_encode::{Alphabet, search_structures, dp_schedule, SparsityString};
//! use rsqp_sparse::CsrMatrix;
//!
//! let m = CsrMatrix::from_triplets(4, 8, vec![
//!     (0, 0, 1.0), (0, 1, 1.0),          // 2 nnz -> 'b'
//!     (1, 2, 1.0), (1, 3, 1.0),          // 'b'
//!     (2, 4, 1.0),                        // 'a'
//!     (3, 5, 1.0),                        // 'a'
//! ]);
//! let s = SparsityString::encode(&m, 4);
//! assert_eq!(s.to_string(), "bbaa");
//! let set = search_structures(&s, 3);
//! let schedule = dp_schedule(&s, &set);
//! assert!(schedule.cycles() <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod lzw;
pub mod permute;
mod schedule;
mod search;
mod structure;

pub use alphabet::{Alphabet, PackSource, SparsityString, DOLLAR};
pub use lzw::LzwDictionary;
pub use schedule::{dp_schedule, greedy_schedule, Schedule, ScheduledPack};
pub use search::{baseline_set, search_structures, search_structures_with_candidates};
pub use structure::{MacStructure, StructureSet};
