//! MAC-tree structures and structure sets (§3.2, §4.1).

use std::fmt;

use crate::{Alphabet, DOLLAR};

/// One customized input partition of the `C`-wide MAC tree.
///
/// A structure is a sequence of letters whose widths sum to at most `C`;
/// e.g. with `C = 4` the structure `"ca"` partitions the 4 multipliers into
/// a 3-wide (padded to 4-capacity `c` slot is width 4? no: `c` has width 4 —
/// see below) — concretely, slot `i` accepts any row chunk whose letter
/// width is ≤ the slot's width, and the whole pack completes in one cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MacStructure {
    letters: Vec<u8>,
    widths: Vec<usize>,
}

impl MacStructure {
    /// Builds a structure from its letters.
    ///
    /// # Panics
    ///
    /// Panics if the letters are outside the alphabet, the structure is
    /// empty, or the widths sum to more than `C`.
    pub fn new(letters: &[u8], alphabet: Alphabet) -> Self {
        assert!(!letters.is_empty(), "empty MAC structure");
        let widths: Vec<usize> = letters.iter().map(|&l| alphabet.width(l)).collect();
        let total: usize = widths.iter().sum();
        assert!(
            total <= alphabet.c(),
            "structure width {total} exceeds datapath width {}",
            alphabet.c()
        );
        MacStructure { letters: letters.to_vec(), widths }
    }

    /// The slot letters.
    pub fn letters(&self) -> &[u8] {
        &self.letters
    }

    /// The slot widths (lanes per slot).
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Number of slots (= rows finished per cycle when this structure
    /// fires; also the number of dedicated adder-tree outputs it needs).
    pub fn num_slots(&self) -> usize {
        self.letters.len()
    }

    /// Sum of slot widths.
    pub fn total_width(&self) -> usize {
        self.widths.iter().sum()
    }

    /// Whether this structure can consume the next `num_slots` characters
    /// starting at `pos` of `chars` in a single cycle: every character's
    /// width must fit its slot.
    pub fn matches(&self, chars: &[u8], pos: usize, alphabet: Alphabet) -> bool {
        if pos + self.letters.len() > chars.len() {
            return false;
        }
        self.widths
            .iter()
            .zip(&chars[pos..pos + self.letters.len()])
            .all(|(&w, &ch)| alphabet.width(ch) <= w)
    }

    /// Lane offset of each slot (prefix sums of the widths).
    pub fn slot_offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.widths.len());
        let mut acc = 0;
        for &w in &self.widths {
            out.push(acc);
            acc += w;
        }
        out
    }
}

impl fmt::Display for MacStructure {
    /// Run-length notation: `"8d4e1g"` means 8 slots of `d`? No — in the
    /// paper's notation each `<count><letter>` group is one *homogeneous
    /// structure*; a single structure displays as one group when
    /// homogeneous (`"4c"` = four `c` slots) and as the raw letter string
    /// in braces otherwise (`"{ca}"`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self.letters[0];
        if self.letters.iter().all(|&l| l == first) {
            write!(f, "{}{}", self.letters.len(), first as char)
        } else {
            write!(f, "{{{}}}", std::str::from_utf8(&self.letters).expect("ASCII"))
        }
    }
}

/// A set of MAC-tree structures sharing one `C`-wide datapath.
///
/// The set always contains the full-width single-output structure (the
/// baseline reduction tree) as a fallback, so every string can be
/// scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureSet {
    alphabet: Alphabet,
    structures: Vec<MacStructure>,
}

impl StructureSet {
    /// Creates a set containing only the fallback full-width structure.
    pub fn baseline(alphabet: Alphabet) -> Self {
        let fallback = MacStructure::new(&[alphabet.full_letter()], alphabet);
        StructureSet { alphabet, structures: vec![fallback] }
    }

    /// Creates a set from the given structures, appending the fallback if
    /// missing.
    ///
    /// # Panics
    ///
    /// Panics if any structure was built for a different width.
    pub fn new(alphabet: Alphabet, mut structures: Vec<MacStructure>) -> Self {
        for s in &structures {
            assert!(s.total_width() <= alphabet.c(), "structure too wide for this alphabet");
        }
        let fallback = MacStructure::new(&[alphabet.full_letter()], alphabet);
        if !structures.contains(&fallback) {
            structures.push(fallback);
        }
        // Deduplicate while keeping order.
        let mut seen = std::collections::HashSet::new();
        structures.retain(|s| seen.insert(s.clone()));
        StructureSet { alphabet, structures }
    }

    /// Parses the paper's notation: a concatenation of `<count><letter>`
    /// groups, each group one homogeneous structure. `"8d4e1g"` with
    /// `C = 64` is `S = {dddddddd, eeee, g}`.
    ///
    /// # Panics
    ///
    /// Panics on malformed notation or over-wide groups.
    pub fn parse(notation: &str, alphabet: Alphabet) -> Self {
        let bytes = notation.as_bytes();
        let mut structures = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            assert!(i > start && i < bytes.len(), "malformed structure notation {notation:?}");
            let count: usize = notation[start..i].parse().expect("digits checked");
            let letter = bytes[i];
            i += 1;
            assert!(count > 0, "zero-count group in {notation:?}");
            structures.push(MacStructure::new(&vec![letter; count], alphabet));
        }
        StructureSet::new(alphabet, structures)
    }

    /// The alphabet (and hence `C`).
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The structures, fallback included.
    pub fn structures(&self) -> &[MacStructure] {
        &self.structures
    }

    /// Number of structures (the `|S|` of Eq. 4).
    pub fn len(&self) -> usize {
        self.structures.len()
    }

    /// A structure set is never empty (the fallback is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of dedicated adder-tree outputs across structures —
    /// the routing-complexity driver in the area/f_max models.
    pub fn total_outputs(&self) -> usize {
        self.structures.iter().map(MacStructure::num_slots).sum()
    }

    /// Structures sorted for the paper's greedy replacement: longest
    /// (most slots) first, wider total second.
    pub fn by_descending_length(&self) -> Vec<&MacStructure> {
        let mut v: Vec<&MacStructure> = self.structures.iter().collect();
        v.sort_by(|a, b| {
            b.num_slots().cmp(&a.num_slots()).then(b.total_width().cmp(&a.total_width()))
        });
        v
    }
}

impl fmt::Display for StructureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.alphabet.c())?;
        for s in &self.structures {
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// Convenience: the `$` character is only consumable by the fallback; this
/// is enforced by giving `$` width `C` in the alphabet.
pub(crate) fn _dollar_width_note() -> u8 {
    DOLLAR
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a4() -> Alphabet {
        Alphabet::new(4)
    }

    #[test]
    #[should_panic(expected = "exceeds datapath width")]
    fn overwide_structure_panics() {
        MacStructure::new(b"ca", a4());
    }

    #[test]
    fn paper_example_structures() {
        // C = 4: {bb, c} — "bb" covers two 2-wide rows per cycle.
        let al = a4();
        let bb = MacStructure::new(b"bb", al);
        assert_eq!(bb.num_slots(), 2);
        assert_eq!(bb.total_width(), 4);
        assert_eq!(bb.slot_offsets(), vec![0, 2]);
        // "ba" fits in "bb" (a is narrower than b).
        assert!(bb.matches(b"ba", 0, al));
        assert!(bb.matches(b"aa", 0, al));
        assert!(!bb.matches(b"bc", 0, al));
        assert!(!bb.matches(b"b", 0, al)); // too short
    }

    #[test]
    fn dollar_only_fits_full_width_slot() {
        let al = a4();
        let full = MacStructure::new(b"c", al);
        assert!(full.matches(b"$", 0, al));
        let bb = MacStructure::new(b"bb", al);
        assert!(!bb.matches(b"$a", 0, al));
    }

    #[test]
    fn baseline_set_is_single_fallback() {
        let set = StructureSet::baseline(a4());
        assert_eq!(set.len(), 1);
        assert_eq!(set.structures()[0].letters(), b"c");
        assert_eq!(set.total_outputs(), 1);
    }

    #[test]
    fn set_appends_and_dedupes_fallback() {
        let al = a4();
        let set = StructureSet::new(al, vec![MacStructure::new(b"bb", al)]);
        assert_eq!(set.len(), 2);
        let set2 =
            StructureSet::new(al, vec![MacStructure::new(b"c", al), MacStructure::new(b"c", al)]);
        assert_eq!(set2.len(), 1);
    }

    #[test]
    fn parse_paper_notation() {
        let al = Alphabet::new(64);
        let set = StructureSet::parse("8d4e1g", al);
        // 8 d's (8*8=64), 4 e's (4*16=64), 1 g (64); fallback g merges.
        assert_eq!(set.len(), 3);
        assert_eq!(set.structures()[0].num_slots(), 8);
        assert_eq!(set.structures()[1].num_slots(), 4);
        assert_eq!(set.structures()[2].num_slots(), 1);
        assert_eq!(set.to_string(), "64{8d4e1g}");
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn parse_rejects_garbage() {
        StructureSet::parse("abc", Alphabet::new(16));
    }

    #[test]
    fn descending_length_ordering() {
        let al = Alphabet::new(16);
        let set = StructureSet::parse("16a2d1e", al);
        let order = set.by_descending_length();
        assert_eq!(order[0].num_slots(), 16);
        assert_eq!(order[1].num_slots(), 2);
        assert_eq!(order[2].num_slots(), 1);
    }

    #[test]
    fn heterogeneous_display_uses_braces() {
        let al = Alphabet::new(8);
        let s = MacStructure::new(b"ba", al);
        assert_eq!(s.to_string(), "{ba}");
        let h = MacStructure::new(b"bb", al);
        assert_eq!(h.to_string(), "2b");
    }
}
