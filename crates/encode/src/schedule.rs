//! Scheduling row strings onto a structure set (§4.2).
//!
//! Given a sparsity string and a structure set `S`, a *schedule* assigns
//! every character (row chunk) to a slot of some structure firing, such that
//! each firing consumes a contiguous run of characters, one per slot, each
//! fitting its slot width. The number of firings is the number of clock
//! cycles the SpMV engine needs for the value stream, and
//! `E_p = C·cycles − nnz` is the zero-padding overhead of Eq. (4).
//!
//! Two schedulers are provided:
//!
//! * [`greedy_schedule`] — the paper's method: iterated string replacement,
//!   longest structure first, each structure also matching all narrower
//!   character combinations (the `ba|ab|aa` regular expression step);
//! * [`dp_schedule`] — an exact dynamic program over the same matching
//!   semantics (our ablation; never worse than greedy).

use crate::{SparsityString, StructureSet};

/// One firing of one structure: `len` consecutive characters starting at
/// `pos` consumed in a single cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledPack {
    /// Index of the structure in the set.
    pub structure: usize,
    /// First character position consumed.
    pub pos: usize,
    /// Number of characters consumed (= the structure's slot count).
    pub len: usize,
}

/// A complete schedule of a sparsity string onto a structure set.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    c: usize,
    nnz: usize,
    string_len: usize,
    packs: Vec<ScheduledPack>,
}

impl Schedule {
    /// Number of clock cycles (structure firings).
    pub fn cycles(&self) -> usize {
        self.packs.len()
    }

    /// The firings in string order.
    pub fn packs(&self) -> &[ScheduledPack] {
        &self.packs
    }

    /// Zero-padding overhead `E_p = C·cycles − nnz`.
    pub fn ep(&self) -> usize {
        self.c * self.cycles() - self.nnz
    }

    /// Datapath width the schedule was built for.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Total non-zeros covered.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Verifies the schedule covers every character exactly once.
    pub fn is_complete(&self) -> bool {
        let mut covered = vec![false; self.string_len];
        for p in &self.packs {
            for i in p.pos..p.pos + p.len {
                if i >= self.string_len || covered[i] {
                    return false;
                }
                covered[i] = true;
            }
        }
        covered.iter().all(|&c| c)
    }
}

/// The paper's greedy replacement scheduler.
///
/// Structures are tried longest-first; each scans left-to-right and claims
/// every contiguous, still-unclaimed run it dominates. The full-width
/// fallback guarantees completeness.
pub fn greedy_schedule(s: &SparsityString, set: &StructureSet) -> Schedule {
    let alphabet = s.alphabet();
    assert_eq!(alphabet, set.alphabet(), "string and structure set use different alphabets");
    let chars = s.chars();
    let n = chars.len();
    let mut claimed = vec![false; n];
    let mut packs = Vec::new();

    // Map back from sorted order to set indices.
    let order = set.by_descending_length();
    for st in order {
        let idx =
            set.structures().iter().position(|x| x == st).expect("structure comes from the set");
        let len = st.num_slots();
        if len > n {
            continue;
        }
        let mut pos = 0;
        while pos + len <= n {
            if claimed[pos] {
                pos += 1;
                continue;
            }
            // The run must be contiguous and unclaimed (a claimed character
            // acts as the '*' separator of the paper's replacement).
            if (pos..pos + len).any(|i| claimed[i]) || !st.matches(chars, pos, alphabet) {
                pos += 1;
                continue;
            }
            for i in pos..pos + len {
                claimed[i] = true;
            }
            packs.push(ScheduledPack { structure: idx, pos, len });
            pos += len;
        }
    }
    debug_assert!(claimed.iter().all(|&c| c), "fallback must cover leftovers");
    packs.sort_by_key(|p| p.pos);
    Schedule { c: alphabet.c(), nnz: s.nnz(), string_len: n, packs }
}

/// Exact minimum-cycle scheduler (dynamic program).
///
/// `cost[i] = 1 + min over structures matching at i of cost[i + len]`.
/// Shares the matching semantics with [`greedy_schedule`], so its cycle
/// count is a lower bound for the greedy result under the same `S`.
pub fn dp_schedule(s: &SparsityString, set: &StructureSet) -> Schedule {
    let alphabet = s.alphabet();
    assert_eq!(alphabet, set.alphabet(), "string and structure set use different alphabets");
    let chars = s.chars();
    let n = chars.len();
    let mut cost = vec![usize::MAX; n + 1];
    let mut choice = vec![usize::MAX; n];
    cost[n] = 0;
    for i in (0..n).rev() {
        for (k, st) in set.structures().iter().enumerate() {
            let len = st.num_slots();
            if i + len <= n && cost[i + len] != usize::MAX && st.matches(chars, i, alphabet) {
                let c = 1 + cost[i + len];
                if c < cost[i] {
                    cost[i] = c;
                    choice[i] = k;
                }
            }
        }
        debug_assert_ne!(cost[i], usize::MAX, "fallback guarantees feasibility");
    }
    let mut packs = Vec::with_capacity(cost[0]);
    let mut i = 0;
    while i < n {
        let k = choice[i];
        let len = set.structures()[k].num_slots();
        packs.push(ScheduledPack { structure: k, pos: i, len });
        i += len;
    }
    Schedule { c: alphabet.c(), nnz: s.nnz(), string_len: n, packs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alphabet;
    use rsqp_sparse::CsrMatrix;

    fn string_of(rows: &[usize], c: usize) -> SparsityString {
        let ncols = 128;
        let mut t = Vec::new();
        for (i, &nnz) in rows.iter().enumerate() {
            for j in 0..nnz {
                t.push((i, j, 1.0));
            }
        }
        SparsityString::encode(&CsrMatrix::from_triplets(rows.len(), ncols, t), c)
    }

    #[test]
    fn baseline_schedules_one_char_per_cycle() {
        let s = string_of(&[4, 2, 2, 1, 1, 1, 3, 1], 4); // "cbbaaaca"
        let set = StructureSet::baseline(Alphabet::new(4));
        let g = greedy_schedule(&s, &set);
        assert_eq!(g.cycles(), 8);
        assert_eq!(g.ep(), 4 * 8 - 15);
        assert!(g.is_complete());
    }

    #[test]
    fn paper_example_with_bb_structure() {
        // "cbbaaaca" with S = {bb, c}: greedy finds bb at pos 1, then the
        // aa|ab|ba matches at pos 3-4, leftovers c,a,c,a each 1 cycle:
        // [c][bb][aa][a][c][a] = 6 cycles (matches the paper's Figure 2(e)
        // count for its S = {bb, d}).
        let s = string_of(&[4, 2, 2, 1, 1, 1, 3, 1], 4);
        let al = Alphabet::new(4);
        let set = StructureSet::parse("2b1c", al);
        let g = greedy_schedule(&s, &set);
        assert_eq!(g.cycles(), 6, "packs {:?}", g.packs());
        assert!(g.is_complete());
        let d = dp_schedule(&s, &set);
        assert_eq!(d.cycles(), 6);
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        for rows in [
            vec![1usize; 16],
            vec![2, 1, 2, 1, 2, 1, 4, 4],
            vec![3, 1, 3, 1, 3, 1],
            vec![4, 4, 2, 2, 1, 1, 1, 1],
        ] {
            let s = string_of(&rows, 4);
            let al = Alphabet::new(4);
            for notation in ["2b1c", "4a1c", "4a2b1c"] {
                let set = StructureSet::parse(notation, al);
                let g = greedy_schedule(&s, &set);
                let d = dp_schedule(&s, &set);
                assert!(d.cycles() <= g.cycles(), "{notation} on {rows:?}");
                assert!(g.is_complete() && d.is_complete());
            }
        }
    }

    #[test]
    fn dp_beats_greedy_on_adversarial_string() {
        // "abb" with S = {ab, bb, c}: greedy (longest-first, ab before bb?
        // both length 2) may take "ab" at 0 leaving "b" for the fallback
        // (2 cycles... also 2 for dp). Construct a real gap:
        // "aabb" with S = {aa+? } keep simple — verify dp optimality on
        // "baa" with S={aa, c}: greedy scans aa at pos 1 -> [b][aa] = 2,
        // dp same. Hard to force a gap with homogeneous sets; use a
        // heterogeneous set {ba} vs "aba": greedy takes ba at 1 -> [a][ba]
        // = 2 cycles; dp also 2. At minimum assert dp <= greedy here.
        let s = string_of(&[1, 2, 2], 4); // "abb"
        let al = Alphabet::new(4);
        let set = StructureSet::new(
            al,
            vec![crate::MacStructure::new(b"ab", al), crate::MacStructure::new(b"bb", al)],
        );
        let g = greedy_schedule(&s, &set);
        let d = dp_schedule(&s, &set);
        assert!(d.cycles() <= g.cycles());
        assert!(d.cycles() <= 2);
    }

    #[test]
    fn dollar_chunks_fall_back_to_full_width() {
        let s = string_of(&[10], 4); // "$$b"
        let al = Alphabet::new(4);
        let set = StructureSet::parse("2b1c", al);
        let g = greedy_schedule(&s, &set);
        assert_eq!(g.cycles(), 3);
        assert!(g.is_complete());
    }

    #[test]
    fn empty_string_schedules_to_zero_cycles() {
        let s = SparsityString::encode(&CsrMatrix::zeros(3, 3), 4);
        let set = StructureSet::baseline(Alphabet::new(4));
        let g = greedy_schedule(&s, &set);
        assert_eq!(g.cycles(), 0);
        assert_eq!(g.ep(), 0);
        assert!(g.is_complete());
        assert_eq!(dp_schedule(&s, &set).cycles(), 0);
    }

    #[test]
    fn ep_decreases_with_better_structures() {
        let s = string_of(&[1; 32], 8); // 32 'a' rows
        let al = Alphabet::new(8);
        let baseline = greedy_schedule(&s, &StructureSet::baseline(al));
        let custom = greedy_schedule(&s, &StructureSet::parse("8a1d", al));
        assert_eq!(baseline.cycles(), 32);
        assert_eq!(custom.cycles(), 4);
        assert!(custom.ep() < baseline.ep());
    }

    #[test]
    fn schedule_positions_are_sorted_and_disjoint() {
        let s = string_of(&[2, 2, 1, 1, 4, 2, 2, 1], 4);
        let al = Alphabet::new(4);
        let set = StructureSet::parse("2b1c", al);
        let g = greedy_schedule(&s, &set);
        let mut last_end = 0;
        for p in g.packs() {
            assert!(p.pos >= last_end);
            last_end = p.pos + p.len;
        }
    }
}
