//! Structure-set search under a size budget (Eq. 4).
//!
//! Candidates come from two sources:
//!
//! * the LZW dictionary phrases (heterogeneous patterns like `ca`),
//! * the homogeneous full-width runs `k·letter` with `k·width = C` (the
//!   shapes appearing in the paper's Table 3, e.g. `16a`, `4d`, `2e`),
//!
//! and are greedily added to the fallback-only set while the *measured*
//! scheduled cycle count keeps improving, up to `|S|_target` structures.

use crate::{greedy_schedule, Alphabet, LzwDictionary, MacStructure, SparsityString, StructureSet};

/// Cap on how many characters of the string the search evaluates schedules
/// on (a prefix sample keeps the search fast on 10⁶-nnz problems; the final
/// schedule still runs on the full string).
const SEARCH_SAMPLE: usize = 60_000;
/// Cap on LZW candidates scored per search.
const LZW_CANDIDATES: usize = 24;

/// The baseline architecture's structure set: a single full-width
/// single-output MAC tree (and `C` full vector copies on the CVB side).
pub fn baseline_set(alphabet: Alphabet) -> StructureSet {
    StructureSet::baseline(alphabet)
}

/// Searches a structure set with at most `s_target` structures (fallback
/// included) for the given string, using LZW mining plus homogeneous-run
/// candidates and greedy forward selection on measured cycle counts.
pub fn search_structures(s: &SparsityString, s_target: usize) -> StructureSet {
    search_structures_with_candidates(s, s_target, LZW_CANDIDATES)
}

/// [`search_structures`] with an explicit cap on scored LZW candidates.
pub fn search_structures_with_candidates(
    s: &SparsityString,
    s_target: usize,
    lzw_limit: usize,
) -> StructureSet {
    let alphabet = s.alphabet();
    let sample = sample_of(s);

    // Candidate pool.
    let mut pool: Vec<MacStructure> = Vec::new();
    // Homogeneous runs: k copies of each letter with k*width == C.
    for idx in 0..alphabet.num_letters() {
        let letter = b'a' + idx as u8;
        let width = alphabet.width(letter);
        let k = alphabet.c() / width;
        if k >= 2 {
            pool.push(MacStructure::new(&vec![letter; k], alphabet));
        }
    }
    // LZW phrases.
    let dict = LzwDictionary::build(sample.chars());
    for (phrase, _savings) in dict.candidates(alphabet, lzw_limit) {
        let st = MacStructure::new(&phrase, alphabet);
        if !pool.contains(&st) {
            pool.push(st);
        }
    }

    // Greedy forward selection on measured (greedy-scheduled) cycles.
    let mut chosen: Vec<MacStructure> = Vec::new();
    let mut best_cycles =
        greedy_schedule(&sample, &StructureSet::new(alphabet, chosen.clone())).cycles();
    while chosen.len() + 1 < s_target {
        let mut best: Option<(usize, usize)> = None; // (pool idx, cycles)
        for (i, cand) in pool.iter().enumerate() {
            if chosen.contains(cand) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(cand.clone());
            let cycles = greedy_schedule(&sample, &StructureSet::new(alphabet, trial)).cycles();
            if cycles < best_cycles && best.is_none_or(|(_, bc)| cycles < bc) {
                best = Some((i, cycles));
            }
        }
        match best {
            Some((i, cycles)) => {
                chosen.push(pool[i].clone());
                best_cycles = cycles;
            }
            None => break,
        }
    }
    StructureSet::new(alphabet, chosen)
}

fn sample_of(s: &SparsityString) -> SparsityString {
    if s.len() <= SEARCH_SAMPLE {
        return s.clone();
    }
    // Truncate by rebuilding from the prefix (provenance preserved).
    let alphabet = s.alphabet();
    let chars = s.chars()[..SEARCH_SAMPLE].to_vec();
    let sources = s.sources()[..SEARCH_SAMPLE].to_vec();
    let nnz = sources.iter().map(|p| p.count).sum();
    SparsityString::from_parts(alphabet, chars, sources, nnz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp_schedule;
    use rsqp_sparse::CsrMatrix;

    fn string_of(rows: &[usize], c: usize) -> SparsityString {
        let mut t = Vec::new();
        for (i, &nnz) in rows.iter().enumerate() {
            for j in 0..nnz {
                t.push((i, j, 1.0));
            }
        }
        SparsityString::encode(&CsrMatrix::from_triplets(rows.len(), 256, t), c)
    }

    #[test]
    fn search_finds_the_obvious_structure() {
        // A string of single-nnz rows: the all-'a' structure is the winner.
        let s = string_of(&vec![1; 64], 8);
        let set = search_structures(&s, 3);
        let cycles = greedy_schedule(&s, &set).cycles();
        assert_eq!(cycles, 8, "set {set}");
    }

    #[test]
    fn search_respects_target_size() {
        let mut rows = Vec::new();
        for i in 0..200 {
            rows.push(match i % 4 {
                0 => 1,
                1 => 2,
                2 => 4,
                _ => 8,
            });
        }
        let s = string_of(&rows, 8);
        for target in [1, 2, 3, 4] {
            let set = search_structures(&s, target);
            assert!(set.len() <= target.max(1), "|S|={} target={target}", set.len());
        }
    }

    #[test]
    fn customization_improves_over_baseline() {
        let mut rows = Vec::new();
        for _ in 0..100 {
            rows.extend_from_slice(&[2, 2, 1, 1]);
        }
        let s = string_of(&rows, 16);
        let base = greedy_schedule(&s, &baseline_set(s.alphabet()));
        let set = search_structures(&s, 4);
        let custom = greedy_schedule(&s, &set);
        assert!(
            custom.cycles() * 3 < base.cycles(),
            "custom {} vs base {}",
            custom.cycles(),
            base.cycles()
        );
        assert!(custom.ep() < base.ep());
    }

    #[test]
    fn dp_schedule_validates_search_result() {
        let rows: Vec<usize> = (0..300).map(|i| 1 + (i % 3)).collect();
        let s = string_of(&rows, 8);
        let set = search_structures(&s, 4);
        let d = dp_schedule(&s, &set);
        assert!(d.is_complete());
        assert!(d.cycles() <= greedy_schedule(&s, &set).cycles());
    }

    #[test]
    fn degenerate_target_returns_baseline() {
        let s = string_of(&[1, 2, 3], 4);
        let set = search_structures(&s, 1);
        assert_eq!(set.len(), 1);
    }
}
