//! QP problem persistence: a directory layout of Matrix Market files plus
//! plain-text vectors, interoperable with the OSQP benchmark dumps.
//!
//! ```text
//! <dir>/
//!   P.mtx    # quadratic cost (coordinate real general)
//!   A.mtx    # constraints
//!   q.txt    # one value per line
//!   l.txt    # "-inf"/"inf" allowed
//!   u.txt
//!   name.txt # problem name (optional)
//! ```

use std::io;
use std::path::Path;

use rsqp_solver::QpProblem;
use rsqp_sparse::io::{read_matrix_market, write_matrix_market};

/// Saves a problem into `dir` (created if missing).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_problem(problem: &QpProblem, dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut p_file = std::fs::File::create(dir.join("P.mtx"))?;
    write_matrix_market(problem.p(), &mut p_file)?;
    let mut a_file = std::fs::File::create(dir.join("A.mtx"))?;
    write_matrix_market(problem.a(), &mut a_file)?;
    std::fs::write(dir.join("q.txt"), render_vector(problem.q()))?;
    std::fs::write(dir.join("l.txt"), render_vector(problem.l()))?;
    std::fs::write(dir.join("u.txt"), render_vector(problem.u()))?;
    std::fs::write(dir.join("name.txt"), problem.name())?;
    Ok(())
}

/// Loads a problem saved by [`save_problem`].
///
/// # Errors
///
/// Returns `InvalidData` for malformed files or an invalid QP (e.g.
/// `l > u`), and propagates I/O errors.
pub fn load_problem(dir: impl AsRef<Path>) -> io::Result<QpProblem> {
    let dir = dir.as_ref();
    let p = read_matrix_market(std::fs::File::open(dir.join("P.mtx"))?).map_err(invalid)?;
    let a = read_matrix_market(std::fs::File::open(dir.join("A.mtx"))?).map_err(invalid)?;
    let q = parse_vector(&std::fs::read_to_string(dir.join("q.txt"))?)?;
    let l = parse_vector(&std::fs::read_to_string(dir.join("l.txt"))?)?;
    let u = parse_vector(&std::fs::read_to_string(dir.join("u.txt"))?)?;
    let name = std::fs::read_to_string(dir.join("name.txt")).unwrap_or_default();
    let problem = QpProblem::new(p, q, a, l, u).map_err(invalid)?;
    Ok(problem.with_name(name.trim()))
}

fn render_vector(v: &[f64]) -> String {
    let mut out = String::new();
    for &x in v {
        if x == f64::INFINITY {
            out.push_str("inf\n");
        } else if x == f64::NEG_INFINITY {
            out.push_str("-inf\n");
        } else {
            out.push_str(&format!("{x:?}\n"));
        }
    }
    out
}

fn parse_vector(text: &str) -> io::Result<Vec<f64>> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| match l {
            "inf" | "+inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            other => other.parse::<f64>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad value {other:?}: {e}"))
            }),
        })
        .collect()
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Domain};
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn roundtrip_preserves_the_problem() {
        let qp = generate(Domain::Lasso, 4, 9);
        let dir = std::env::temp_dir().join("rsqp_problem_io_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_problem(&qp, &dir).unwrap();
        let back = load_problem(&dir).unwrap();
        assert_eq!(back.p(), qp.p());
        assert_eq!(back.a(), qp.a());
        assert_eq!(back.q(), qp.q());
        assert_eq!(back.l(), qp.l());
        assert_eq!(back.u(), qp.u());
        assert_eq!(back.name(), qp.name());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infinities_survive_roundtrip() {
        let qp = generate(Domain::Svm, 4, 2); // has ±inf bounds
        assert!(qp.l().iter().any(|v| v.is_infinite()));
        let dir = std::env::temp_dir().join("rsqp_problem_io_inf_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_problem(&qp, &dir).unwrap();
        let back = load_problem(&dir).unwrap();
        assert_eq!(back.l(), qp.l());
        assert_eq!(back.u(), qp.u());
        // And the loaded problem solves identically.
        let mut s = Solver::new(&back, Settings::default()).unwrap();
        assert_eq!(s.solve().unwrap().status, Status::Solved);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_corrupt_directories() {
        let dir = std::env::temp_dir().join("rsqp_problem_io_bad_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("P.mtx"), "garbage").unwrap();
        assert!(load_problem(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vector_parsing_edges() {
        assert_eq!(
            parse_vector("1.5\n-inf\ninf\n").unwrap(),
            vec![1.5, f64::NEG_INFINITY, f64::INFINITY]
        );
        assert!(parse_vector("abc").is_err());
        assert_eq!(parse_vector("\n\n").unwrap(), Vec::<f64>::new());
    }
}
