//! Linear model-predictive-control benchmark problem.
//!
//! Tracks the OSQP benchmark's MPC formulation: for a random linear system
//! `x_{k+1} = A_d x_k + B_d u_k` with `nx` states and `nu = max(1, nx/2)`
//! inputs over a horizon of `T = 10`, solve
//!
//! ```text
//! minimize   Σ_{k=0}^{T-1} x_kᵀQx_k + u_kᵀRu_k  +  x_TᵀQ_T x_T
//! subject to x_0 = x_init,  x_{k+1} = A_d x_k + B_d u_k,
//!            |x_k| ≤ x_max,  |u_k| ≤ u_max
//! ```
//!
//! stacked over the horizon. The constraint matrix has the banded block
//! structure visible in Figure 2(g) of the paper.

use rsqp_solver::QpProblem;
use rsqp_sparse::CooMatrix;

use crate::util::{dense_randn, randn, rng_for};

/// Horizon length used by the benchmark.
pub const HORIZON: usize = 10;

/// Generates a control problem with `size` states.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn generate(size: usize, seed: u64) -> QpProblem {
    assert!(size > 0, "control problem needs at least one state");
    let nx = size;
    let nu = (nx / 2).max(1);
    let t = HORIZON;
    let mut vrng = rng_for("control-values", size, seed);

    // Random stable-ish dynamics.
    let mut a_dyn = dense_randn(nx, nx, &mut vrng);
    for (i, row) in a_dyn.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v *= 0.3 / (nx as f64).sqrt();
            if i == j {
                *v += 0.9;
            }
        }
    }
    let b_dyn = dense_randn(nx, nu, &mut vrng);

    // Costs.
    let q_diag: Vec<f64> = (0..nx).map(|_| 1.0 + 9.0 * rand_unit(&mut vrng)).collect();
    let qt_diag: Vec<f64> = q_diag.iter().map(|v| 10.0 * v).collect();
    let r_diag: Vec<f64> = vec![0.1; nu];
    let x_init: Vec<f64> = (0..nx).map(|_| 0.5 * randn(&mut vrng)).collect();

    let n = (t + 1) * nx + t * nu;
    let m = (t + 1) * nx + n;
    let x_off = |k: usize| k * nx;
    let u_off = |k: usize| (t + 1) * nx + k * nu;

    // Objective.
    let mut p = CooMatrix::with_capacity(n, n, n);
    for k in 0..t {
        for i in 0..nx {
            p.push(x_off(k) + i, x_off(k) + i, q_diag[i]);
        }
    }
    for i in 0..nx {
        p.push(x_off(t) + i, x_off(t) + i, qt_diag[i]);
    }
    for k in 0..t {
        for i in 0..nu {
            p.push(u_off(k) + i, u_off(k) + i, r_diag[i]);
        }
    }
    let q = vec![0.0; n];

    // Constraints: initial state, dynamics, then box bounds on everything.
    let mut a = CooMatrix::with_capacity(m, n, (t + 1) * nx * (nx + nu) + n);
    let mut l = Vec::with_capacity(m);
    let mut u = Vec::with_capacity(m);
    for i in 0..nx {
        a.push(i, x_off(0) + i, 1.0);
        l.push(x_init[i]);
        u.push(x_init[i]);
    }
    for k in 0..t {
        let row0 = (k + 1) * nx;
        for i in 0..nx {
            for j in 0..nx {
                if a_dyn[i][j] != 0.0 {
                    a.push(row0 + i, x_off(k) + j, a_dyn[i][j]);
                }
            }
            for j in 0..nu {
                if b_dyn[i][j] != 0.0 {
                    a.push(row0 + i, u_off(k) + j, b_dyn[i][j]);
                }
            }
            a.push(row0 + i, x_off(k + 1) + i, -1.0);
            l.push(0.0);
            u.push(0.0);
        }
    }
    let bounds_row0 = (t + 1) * nx;
    for j in 0..n {
        a.push(bounds_row0 + j, j, 1.0);
        let is_state = j < (t + 1) * nx;
        let bound = if is_state { 10.0 } else { 1.0 };
        l.push(-bound);
        u.push(bound);
    }

    QpProblem::new(p.to_csr(), q, a.to_csr(), l, u)
        .expect("control generator produces valid problems")
        .with_name(format!("control_{size:04}"))
}

fn rand_unit(rng: &mut rand::rngs::SmallRng) -> f64 {
    use rand::Rng;
    rng.gen_range(0.0..1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn shapes_are_consistent() {
        let qp = generate(4, 1);
        let nx = 4;
        let nu = 2;
        let n = (HORIZON + 1) * nx + HORIZON * nu;
        assert_eq!(qp.num_vars(), n);
        assert_eq!(qp.num_constraints(), (HORIZON + 1) * nx + n);
    }

    #[test]
    fn same_structure_across_seeds() {
        let a = generate(3, 1);
        let b = generate(3, 2);
        assert!(rsqp_sparse::pattern::same_structure(a.p(), b.p()));
        assert!(rsqp_sparse::pattern::same_structure(a.a(), b.a()));
    }

    #[test]
    fn solves_to_optimality() {
        let qp = generate(3, 42);
        let mut s = Solver::new(&qp, Settings::default()).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        assert!(qp.primal_infeasibility(&r.x) < 1e-2);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_panics() {
        generate(0, 0);
    }
}
