//! Markowitz portfolio optimization with a factor risk model.
//!
//! With `k = size` factors and `n = 100·k` assets, risk is modeled as
//! `Σ = F·Fᵀ + D` (factor loadings `F ∈ R^{n×k}` at 50 % density, diagonal
//! idiosyncratic risk `D`). Introducing `y = Fᵀx` keeps the QP sparse:
//!
//! ```text
//! minimize   (1/2)(xᵀDx + yᵀy) − μᵀx
//! subject to y = Fᵀx,  1ᵀx = 1,  0 ≤ x ≤ 1
//! ```
//!
//! This is the parametric problem class the paper uses to motivate
//! architecture reuse: backtesting re-solves the same structure with
//! different `μ` up to 120 000 times (§1).

use rand::Rng;
use rsqp_solver::QpProblem;
use rsqp_sparse::CooMatrix;

use crate::util::{randn, rng_for, sprandn};

/// Number of assets per factor.
pub const ASSETS_PER_FACTOR: usize = 100;

/// Generates a portfolio problem with `size` factors (`100·size` assets).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn generate(size: usize, seed: u64) -> QpProblem {
    assert!(size > 0, "portfolio problem needs at least one factor");
    let k = size;
    let n = ASSETS_PER_FACTOR * k;
    let mut prng = rng_for("portfolio-pattern", size, 0);
    let mut vrng = rng_for("portfolio-values", size, seed);

    // F: n x k loadings, 50% density.
    let f = sprandn(n, k, 0.5, &mut prng, &mut vrng);
    let d_diag: Vec<f64> = (0..n).map(|_| vrng.gen_range(0.0..1.0) * (k as f64).sqrt()).collect();
    let mu: Vec<f64> = (0..n).map(|_| randn(&mut vrng)).collect();

    let nvar = n + k;
    // P = blkdiag(D, I_k); explicit diagonal keeps the structure seed-stable.
    let mut p = CooMatrix::with_capacity(nvar, nvar, nvar);
    for (i, &d) in d_diag.iter().enumerate() {
        p.push(i, i, d);
    }
    for j in 0..k {
        p.push(n + j, n + j, 1.0);
    }
    let mut q = vec![0.0; nvar];
    for i in 0..n {
        q[i] = -mu[i];
    }

    // Constraints: [Fᵀ −I; 1ᵀ 0; I 0].
    let m = k + 1 + n;
    let mut a = CooMatrix::with_capacity(m, nvar, f.nnz() + k + n + n);
    let ft = f.transpose();
    for r in 0..k {
        let (cols, vals) = ft.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            a.push(r, c, v);
        }
        a.push(r, n + r, -1.0);
    }
    for j in 0..n {
        a.push(k, j, 1.0);
    }
    for j in 0..n {
        a.push(k + 1 + j, j, 1.0);
    }
    let mut l = vec![0.0; m];
    let mut u = vec![0.0; m];
    l[k] = 1.0;
    u[k] = 1.0;
    for i in 0..n {
        l[k + 1 + i] = 0.0;
        u[k + 1 + i] = 1.0;
    }

    QpProblem::new(p.to_csr(), q, a.to_csr(), l, u)
        .expect("portfolio generator produces valid problems")
        .with_name(format!("portfolio_{size:04}"))
}

/// Draws a fresh expected-return vector `μ` for the parametric re-solve
/// scenario (same structure, new `q`). Returns the new `q` vector.
pub fn resample_returns(problem: &QpProblem, seed: u64) -> Vec<f64> {
    let n = problem
        .name()
        .strip_prefix("portfolio_")
        .and_then(|s| s.parse::<usize>().ok())
        .map(|k| k * ASSETS_PER_FACTOR)
        .unwrap_or(problem.num_vars());
    let mut vrng = rng_for("portfolio-mu", n, seed);
    let mut q = problem.q().to_vec();
    for qi in q.iter_mut().take(n) {
        *qi = -randn(&mut vrng);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn shapes_are_consistent() {
        let qp = generate(2, 1);
        let (k, n) = (2, 200);
        assert_eq!(qp.num_vars(), n + k);
        assert_eq!(qp.num_constraints(), k + 1 + n);
    }

    #[test]
    fn same_structure_across_seeds() {
        let a = generate(2, 1);
        let b = generate(2, 9);
        assert!(rsqp_sparse::pattern::same_structure(a.p(), b.p()));
        assert!(rsqp_sparse::pattern::same_structure(a.a(), b.a()));
    }

    #[test]
    fn solution_is_a_portfolio() {
        let qp = generate(1, 3);
        // Bound violation of an unpolished ADMM iterate scales with the
        // tolerance; solve tightly so the -1e-3 weight check is meaningful.
        let settings = Settings { eps_abs: 1e-5, eps_rel: 1e-5, ..Settings::default() };
        let mut s = Solver::new(&qp, settings).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        let total: f64 = r.x[..100].iter().sum();
        assert!((total - 1.0).abs() < 1e-2, "weights sum to {total}");
        assert!(r.x[..100].iter().all(|&w| w > -1e-3));
    }

    #[test]
    fn resample_returns_only_touches_asset_block() {
        let qp = generate(1, 3);
        let q2 = resample_returns(&qp, 77);
        assert_eq!(q2.len(), qp.num_vars());
        assert_ne!(&q2[..100], &qp.q()[..100]);
        assert_eq!(&q2[100..], &qp.q()[100..]);
    }
}
