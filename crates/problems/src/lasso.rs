//! Lasso (ℓ₁-regularized least squares) as a QP.
//!
//! For a data matrix `A_d ∈ R^{m_s×n}` (`m_s = 10·n` samples, 15 % density)
//! the lasso `min (1/2)‖A_d x − b‖² + λ‖x‖₁` is rewritten with residuals
//! `y = A_d x − b` and the usual ℓ₁ split `|x| ≤ t`:
//!
//! ```text
//! minimize   (1/2) yᵀy + λ·1ᵀt
//! subject to A_d x − y = b,   −t ≤ x ≤ t
//! ```

use rsqp_solver::QpProblem;
use rsqp_sparse::{vec_ops, CooMatrix};

use crate::util::{randn, rng_for, sprandn};

/// Samples per feature.
pub const SAMPLES_PER_FEATURE: usize = 10;

/// Generates a lasso problem with `size` features.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn generate(size: usize, seed: u64) -> QpProblem {
    assert!(size > 0, "lasso problem needs at least one feature");
    let n = size;
    let ms = SAMPLES_PER_FEATURE * n;
    let mut prng = rng_for("lasso-pattern", size, 0);
    let mut vrng = rng_for("lasso-values", size, seed);

    let ad = sprandn(ms, n, 0.15, &mut prng, &mut vrng);
    // Ground-truth sparse coefficients and noisy observations.
    let v: Vec<f64> = (0..n)
        .map(|_| if randn(&mut vrng) > 0.0 { randn(&mut vrng) / (n as f64).sqrt() } else { 0.0 })
        .collect();
    let mut b = vec![0.0; ms];
    ad.spmv(&v, &mut b).expect("generator shapes are consistent");
    for bi in &mut b {
        *bi += 0.01 * randn(&mut vrng);
    }
    let mut atb = vec![0.0; n];
    ad.spmv_transpose(&b, &mut atb).expect("generator shapes are consistent");
    let lambda = 0.2 * vec_ops::inf_norm(&atb);

    // Variables (x, y, t).
    let nvar = 2 * n + ms;
    let (y_off, t_off) = (n, n + ms);
    let mut p = CooMatrix::with_capacity(nvar, nvar, ms);
    for i in 0..ms {
        p.push(y_off + i, y_off + i, 1.0);
    }
    let mut q = vec![0.0; nvar];
    for i in 0..n {
        q[t_off + i] = lambda;
    }

    let m = ms + 2 * n;
    let mut a = CooMatrix::with_capacity(m, nvar, ad.nnz() + ms + 4 * n);
    let mut l = Vec::with_capacity(m);
    let mut u = Vec::with_capacity(m);
    // A_d x − y = b.
    for r in 0..ms {
        let (cols, vals) = ad.row(r);
        for (&c, &val) in cols.iter().zip(vals) {
            a.push(r, c, val);
        }
        a.push(r, y_off + r, -1.0);
        l.push(b[r]);
        u.push(b[r]);
    }
    // x − t ≤ 0.
    for i in 0..n {
        a.push(ms + i, i, 1.0);
        a.push(ms + i, t_off + i, -1.0);
        l.push(f64::NEG_INFINITY);
        u.push(0.0);
    }
    // x + t ≥ 0.
    for i in 0..n {
        a.push(ms + n + i, i, 1.0);
        a.push(ms + n + i, t_off + i, 1.0);
        l.push(0.0);
        u.push(f64::INFINITY);
    }

    QpProblem::new(p.to_csr(), q, a.to_csr(), l, u)
        .expect("lasso generator produces valid problems")
        .with_name(format!("lasso_{size:04}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn shapes_are_consistent() {
        let qp = generate(5, 1);
        assert_eq!(qp.num_vars(), 2 * 5 + 50);
        assert_eq!(qp.num_constraints(), 50 + 10);
    }

    #[test]
    fn same_structure_across_seeds() {
        let a = generate(4, 1);
        let b = generate(4, 5);
        assert!(rsqp_sparse::pattern::same_structure(a.p(), b.p()));
        assert!(rsqp_sparse::pattern::same_structure(a.a(), b.a()));
    }

    #[test]
    fn solves_and_epigraph_holds() {
        let qp = generate(6, 11);
        let mut s = Solver::new(&qp, Settings::default()).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        // |x_i| <= t_i at the solution.
        let n = 6;
        let t_off = n + 60;
        for i in 0..n {
            assert!(r.x[i].abs() <= r.x[t_off + i] + 1e-3);
        }
    }
}
