//! Huber-loss robust regression as a QP.
//!
//! `min Σ_i huber_M(a_iᵀx − b_i)` with the standard split into a quadratic
//! part `w` and slack pair `(r, s)`:
//!
//! ```text
//! minimize   wᵀw + 2M·1ᵀ(r + s)
//! subject to A_d x − w − r + s = b,   r ≥ 0,   s ≥ 0
//! ```
//!
//! `A_d` has `m_s = 10·n` rows at 15 % density; `M = 1`.

use rsqp_solver::QpProblem;
use rsqp_sparse::CooMatrix;

use crate::util::{randn, rng_for, sprandn};

/// Samples per feature.
pub const SAMPLES_PER_FEATURE: usize = 10;
/// Huber threshold.
pub const HUBER_M: f64 = 1.0;

/// Generates a Huber-fitting problem with `size` features.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn generate(size: usize, seed: u64) -> QpProblem {
    assert!(size > 0, "huber problem needs at least one feature");
    let n = size;
    let ms = SAMPLES_PER_FEATURE * n;
    let mut prng = rng_for("huber-pattern", size, 0);
    let mut vrng = rng_for("huber-values", size, seed);

    let ad = sprandn(ms, n, 0.15, &mut prng, &mut vrng);
    let v: Vec<f64> = (0..n).map(|_| randn(&mut vrng) / (n as f64).sqrt()).collect();
    let mut b = vec![0.0; ms];
    ad.spmv(&v, &mut b).expect("generator shapes are consistent");
    // Salt-and-pepper outliers on 5% of samples.
    for (i, bi) in b.iter_mut().enumerate() {
        *bi += if i % 20 == 0 { 10.0 * randn(&mut vrng) } else { 0.01 * randn(&mut vrng) };
    }

    // Variables (x, w, r, s).
    let nvar = n + 3 * ms;
    let (w_off, r_off, s_off) = (n, n + ms, n + 2 * ms);
    let mut p = CooMatrix::with_capacity(nvar, nvar, ms);
    for i in 0..ms {
        p.push(w_off + i, w_off + i, 2.0);
    }
    let mut q = vec![0.0; nvar];
    for i in 0..ms {
        q[r_off + i] = 2.0 * HUBER_M;
        q[s_off + i] = 2.0 * HUBER_M;
    }

    let m = 3 * ms;
    let mut a = CooMatrix::with_capacity(m, nvar, ad.nnz() + 5 * ms);
    let mut l = Vec::with_capacity(m);
    let mut u = Vec::with_capacity(m);
    for row in 0..ms {
        let (cols, vals) = ad.row(row);
        for (&c, &val) in cols.iter().zip(vals) {
            a.push(row, c, val);
        }
        a.push(row, w_off + row, -1.0);
        a.push(row, r_off + row, -1.0);
        a.push(row, s_off + row, 1.0);
        l.push(b[row]);
        u.push(b[row]);
    }
    for i in 0..ms {
        a.push(ms + i, r_off + i, 1.0);
        l.push(0.0);
        u.push(f64::INFINITY);
    }
    for i in 0..ms {
        a.push(2 * ms + i, s_off + i, 1.0);
        l.push(0.0);
        u.push(f64::INFINITY);
    }

    QpProblem::new(p.to_csr(), q, a.to_csr(), l, u)
        .expect("huber generator produces valid problems")
        .with_name(format!("huber_{size:04}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn shapes_are_consistent() {
        let qp = generate(3, 1);
        assert_eq!(qp.num_vars(), 3 + 3 * 30);
        assert_eq!(qp.num_constraints(), 3 * 30);
    }

    #[test]
    fn same_structure_across_seeds() {
        let a = generate(3, 1);
        let b = generate(3, 2);
        assert!(rsqp_sparse::pattern::same_structure(a.a(), b.a()));
    }

    #[test]
    fn solves_with_nonnegative_slacks() {
        let qp = generate(4, 5);
        let settings =
            Settings { eps_abs: 1e-6, eps_rel: 1e-6, max_iter: 20_000, ..Default::default() };
        let mut s = Solver::new(&qp, settings).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        let (n, ms) = (4, 40);
        for i in 0..ms {
            assert!(r.x[n + ms + i] > -1e-3, "r slack negative");
            assert!(r.x[n + 2 * ms + i] > -1e-3, "s slack negative");
        }
    }
}
