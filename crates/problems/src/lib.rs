//! Benchmark problem generators for the RSQP reproduction.
//!
//! The RSQP paper evaluates on "120 problems across 6 applications with
//! dimensions ranging from less than 10² to over 10⁶ non-zeros,
//! automatically generated from the OSQP benchmark set" (§1, §5). This crate
//! ports those generators to Rust:
//!
//! | Domain | Formulation |
//! |---|---|
//! | [`control`] | linear MPC with box state/input constraints |
//! | [`portfolio`] | factor-model Markowitz portfolio optimization |
//! | [`lasso`] | ℓ₁-regularized least squares as a QP |
//! | [`huber`] | Huber-loss robust regression as a QP |
//! | [`svm`] | hinge-loss support vector machine as a QP |
//! | [`eqqp`] | random equality-constrained QP |
//!
//! All generators are deterministic given a seed, and every instance of a
//! given `(domain, size)` pair has the **same sparsity structure** — the
//! property the RSQP customization framework relies on to amortize the
//! hardware generation cost over many solves.
//!
//! # Example
//!
//! ```
//! use rsqp_problems::{generate, Domain};
//!
//! let qp = generate(Domain::Svm, 2, 7);
//! assert!(qp.num_vars() > 0);
//! assert!(qp.name().starts_with("svm"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod eqqp;
pub mod huber;
pub mod io;
pub mod lasso;
pub mod portfolio;
pub mod random;
mod suite;
pub mod svm;
mod util;

pub use suite::{benchmark_suite, small_suite, suite_with_sizes, BenchmarkProblem, Domain};
pub use util::sprandn;

use rsqp_solver::QpProblem;

/// Generates one benchmark problem.
///
/// `size` is a domain-specific scale knob (see each domain module); `seed`
/// fixes the numeric instance. Two calls with the same `(domain, size)` but
/// different seeds produce identical sparsity structures with different
/// values.
pub fn generate(domain: Domain, size: usize, seed: u64) -> QpProblem {
    match domain {
        Domain::Control => control::generate(size, seed),
        Domain::Portfolio => portfolio::generate(size, seed),
        Domain::Lasso => lasso::generate(size, seed),
        Domain::Huber => huber::generate(size, seed),
        Domain::Svm => svm::generate(size, seed),
        Domain::Eqqp => eqqp::generate(size, seed),
    }
}
