//! Shared random-matrix helpers for the generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsqp_sparse::{CooMatrix, CsrMatrix};

/// Deterministic RNG for a `(domain, size, seed)` triple.
///
/// The *structure stream* and the *value stream* are derived separately so
/// that different seeds keep the same sparsity pattern (see crate docs).
pub(crate) fn rng_for(tag: &str, size: usize, salt: u64) -> SmallRng {
    // FNV-1a over the tag, mixed with size and salt.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= (size as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= salt.wrapping_mul(0xd1b5_4a32_d192_ed03);
    SmallRng::seed_from_u64(h)
}

/// Standard-normal sample via Box-Muller (keeps the dependency surface to
/// `rand`'s uniform generator only).
pub(crate) fn randn(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Random sparse matrix with approximately `density·rows·cols` standard
/// normal entries (the `sprandn` of the original Python generators).
///
/// The sparsity *pattern* is drawn from `pattern_rng` and the values from
/// `value_rng`, so callers can fix the structure across numeric instances.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn sprandn(
    rows: usize,
    cols: usize,
    density: f64,
    pattern_rng: &mut SmallRng,
    value_rng: &mut SmallRng,
) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let target = ((rows * cols) as f64 * density).round() as usize;
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut coo = CooMatrix::with_capacity(rows, cols, target);
    if rows == 0 || cols == 0 {
        return coo.to_csr();
    }
    let mut attempts = 0usize;
    while seen.len() < target && attempts < 10 * target + 100 {
        attempts += 1;
        let r = pattern_rng.gen_range(0..rows);
        let c = pattern_rng.gen_range(0..cols);
        if seen.insert((r, c)) {
            coo.push(r, c, randn(value_rng));
        }
    }
    coo.to_csr()
}

/// Random dense matrix with standard normal entries.
pub(crate) fn dense_randn(rows: usize, cols: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    (0..rows).map(|_| (0..cols).map(|_| randn(rng)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprandn_hits_target_density() {
        let mut p = rng_for("t", 1, 0);
        let mut v = rng_for("t", 1, 1);
        let m = sprandn(50, 40, 0.15, &mut p, &mut v);
        let want = (50.0 * 40.0 * 0.15) as usize;
        assert!(m.nnz() >= want - 5 && m.nnz() <= want + 5, "nnz {}", m.nnz());
    }

    #[test]
    fn sprandn_structure_fixed_by_pattern_rng() {
        let mk = |value_salt| {
            let mut p = rng_for("s", 3, 0);
            let mut v = rng_for("s", 3, value_salt);
            sprandn(20, 20, 0.2, &mut p, &mut v)
        };
        let a = mk(1);
        let b = mk(2);
        assert_eq!(a.indptr(), b.indptr());
        assert_eq!(a.indices(), b.indices());
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn randn_has_roughly_zero_mean() {
        let mut rng = rng_for("mean", 0, 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| randn(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rng_for_is_deterministic_and_tag_sensitive() {
        let a: u64 = rng_for("x", 1, 2).gen();
        let b: u64 = rng_for("x", 1, 2).gen();
        let c: u64 = rng_for("y", 1, 2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sprandn_empty_shapes() {
        let mut p = rng_for("e", 0, 0);
        let mut v = rng_for("e", 0, 1);
        let m = sprandn(0, 10, 0.5, &mut p, &mut v);
        assert_eq!(m.nnz(), 0);
    }
}
