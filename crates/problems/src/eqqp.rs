//! Random equality-constrained QP.
//!
//! ```text
//! minimize   (1/2) xᵀPx + qᵀx
//! subject to A x = b
//! ```
//!
//! with `P = M·Mᵀ + 10⁻²·I` (`M = sprandn(n, n, 0.15)`) and a random
//! `A ∈ R^{n/2 × n}` at 15 % density. The Gram product makes `P` rows dense
//! and irregular — the class where the paper's customization helps least
//! (Figure 9).

use rsqp_solver::QpProblem;
use rsqp_sparse::{CooMatrix, CsrMatrix};

use crate::util::{randn, rng_for, sprandn};

/// Generates an equality-constrained QP with `size` variables.
///
/// # Panics
///
/// Panics if `size < 2`.
pub fn generate(size: usize, seed: u64) -> QpProblem {
    assert!(size >= 2, "eqqp needs at least two variables");
    let n = size;
    let p_rows = n / 2;
    let mut prng = rng_for("eqqp-pattern", size, 0);
    let mut vrng = rng_for("eqqp-values", size, seed);

    let m_mat = sprandn(n, n, 0.15, &mut prng, &mut vrng);
    let p = gram_plus_diag(&m_mat, 1e-2);
    let q: Vec<f64> = (0..n).map(|_| randn(&mut vrng)).collect();

    let a = sprandn(p_rows, n, 0.15, &mut prng, &mut vrng);
    let x_feas: Vec<f64> = (0..n).map(|_| randn(&mut vrng)).collect();
    let mut b = vec![0.0; p_rows];
    a.spmv(&x_feas, &mut b).expect("generator shapes are consistent");

    QpProblem::new(p, q, a, b.clone(), b)
        .expect("eqqp generator produces valid problems")
        .with_name(format!("eqqp_{size:04}"))
}

/// Computes `M·Mᵀ + α·I` as CSR without densifying.
fn gram_plus_diag(m: &CsrMatrix, alpha: f64) -> CsrMatrix {
    let n = m.nrows();
    // Work column-by-column of Mᵀ (i.e. columns of M): each column k of M
    // contributes the outer product of its non-zero entries.
    let mt = m.transpose();
    let mut coo = CooMatrix::new(n, n);
    for k in 0..mt.nrows() {
        let (rows, vals) = mt.row(k);
        for (idx_a, (&i, &vi)) in rows.iter().zip(vals).enumerate() {
            for (&j, &vj) in rows.iter().zip(vals).skip(idx_a) {
                coo.push(i, j, vi * vj);
                if i != j {
                    coo.push(j, i, vi * vj);
                }
            }
        }
    }
    for i in 0..n {
        coo.push(i, i, alpha);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn gram_is_symmetric_psd() {
        let mut prng = rng_for("t", 1, 0);
        let mut vrng = rng_for("t", 1, 1);
        let m = sprandn(8, 8, 0.3, &mut prng, &mut vrng);
        let g = gram_plus_diag(&m, 1e-2);
        let gt = g.transpose();
        assert_eq!(g, gt);
        // xᵀGx > 0 for a few vectors.
        for s in 0..3 {
            let x: Vec<f64> = (0..8).map(|i| ((i + s) as f64 * 0.77).sin()).collect();
            let mut gx = vec![0.0; 8];
            g.spmv(&x, &mut gx).unwrap();
            let quad: f64 = x.iter().zip(&gx).map(|(a, b)| a * b).sum();
            assert!(quad > 0.0);
        }
    }

    #[test]
    fn constraints_are_equalities() {
        let qp = generate(10, 1);
        assert_eq!(qp.l(), qp.u());
        assert_eq!(qp.num_constraints(), 5);
    }

    #[test]
    fn is_feasible_by_construction_and_solves() {
        let qp = generate(12, 7);
        let mut s = Solver::new(&qp, Settings::default()).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        assert!(qp.primal_infeasibility(&r.x) < 1e-2);
    }

    #[test]
    fn same_structure_across_seeds() {
        let a = generate(10, 1);
        let b = generate(10, 4);
        assert!(rsqp_sparse::pattern::same_structure(a.p(), b.p()));
        assert!(rsqp_sparse::pattern::same_structure(a.a(), b.a()));
    }
}
