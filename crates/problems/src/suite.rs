//! The 120-problem benchmark suite (6 domains × 20 sizes).

use std::fmt;

use rsqp_solver::QpProblem;

use crate::generate;

/// The six application domains of the OSQP/RSQP benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Linear model predictive control.
    Control,
    /// Factor-model portfolio optimization.
    Portfolio,
    /// ℓ₁-regularized least squares.
    Lasso,
    /// Huber-loss robust regression.
    Huber,
    /// Support vector machine.
    Svm,
    /// Random equality-constrained QP.
    Eqqp,
}

impl Domain {
    /// All six domains, in the paper's plotting order.
    pub fn all() -> [Domain; 6] {
        [
            Domain::Control,
            Domain::Portfolio,
            Domain::Lasso,
            Domain::Huber,
            Domain::Svm,
            Domain::Eqqp,
        ]
    }

    /// Lower-case identifier matching the paper's legend labels.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Control => "control",
            Domain::Portfolio => "portfolio",
            Domain::Lasso => "lasso",
            Domain::Huber => "huber",
            Domain::Svm => "svm",
            Domain::Eqqp => "eqqp",
        }
    }

    /// The default 20-point size schedule for this domain (log-spaced in the
    /// domain's size knob, spanning nnz ≈ 10² … a few 10⁵; see
    /// `EXPERIMENTS.md` for the deliberate top-end reduction versus the
    /// paper's 10⁶).
    pub fn size_schedule(self, points: usize) -> Vec<usize> {
        let (lo, hi) = match self {
            Domain::Control => (2, 60),
            Domain::Portfolio => (1, 60),
            Domain::Lasso => (4, 200),
            Domain::Huber => (4, 160),
            Domain::Svm => (4, 200),
            Domain::Eqqp => (10, 400),
        };
        log_spaced(lo, hi, points)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated benchmark instance with its provenance.
#[derive(Debug, Clone)]
pub struct BenchmarkProblem {
    /// Application domain.
    pub domain: Domain,
    /// Index of the instance within the domain (0-based).
    pub index: usize,
    /// The domain-specific size knob used.
    pub size: usize,
    /// The generated problem.
    pub problem: QpProblem,
}

/// Strictly increasing log-spaced integer schedule from `lo` to `hi`.
fn log_spaced(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    assert!(points > 0 && lo >= 1 && hi >= lo, "bad schedule parameters");
    if points == 1 {
        return vec![hi];
    }
    let (a, b) = ((lo as f64).ln(), (hi as f64).ln());
    let mut out = Vec::with_capacity(points);
    let mut last = 0usize;
    for i in 0..points {
        let t = i as f64 / (points - 1) as f64;
        let mut v = (a + t * (b - a)).exp().round() as usize;
        if v <= last {
            v = last + 1;
        }
        out.push(v);
        last = v;
    }
    out
}

/// Generates the full 120-problem benchmark (20 sizes for each of the 6
/// domains) with deterministic seeding.
pub fn benchmark_suite(seed: u64) -> Vec<BenchmarkProblem> {
    suite_with_sizes(seed, 20)
}

/// A reduced suite (3 sizes per domain, small instances) for tests and
/// micro-benchmarks.
pub fn small_suite(seed: u64) -> Vec<BenchmarkProblem> {
    Domain::all()
        .iter()
        .flat_map(|&domain| {
            let sizes: Vec<usize> = domain.size_schedule(20)[..3].to_vec();
            sizes.into_iter().enumerate().map(move |(index, size)| BenchmarkProblem {
                domain,
                index,
                size,
                problem: generate(domain, size, seed + index as u64),
            })
        })
        .collect()
}

/// Generates `points` sizes per domain following each domain's schedule.
pub fn suite_with_sizes(seed: u64, points: usize) -> Vec<BenchmarkProblem> {
    Domain::all()
        .iter()
        .flat_map(|&domain| {
            domain
                .size_schedule(points)
                .into_iter()
                .enumerate()
                .map(move |(index, size)| BenchmarkProblem {
                    domain,
                    index,
                    size,
                    problem: generate(domain, size, seed + index as u64),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spaced_is_strictly_increasing() {
        let s = log_spaced(2, 100, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 2);
        assert_eq!(*s.last().unwrap(), 100);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn log_spaced_handles_tight_ranges() {
        let s = log_spaced(2, 4, 5);
        assert_eq!(s.len(), 5);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn small_suite_covers_all_domains() {
        let suite = small_suite(1);
        assert_eq!(suite.len(), 18);
        for d in Domain::all() {
            assert_eq!(suite.iter().filter(|b| b.domain == d).count(), 3);
        }
        for b in &suite {
            assert!(b.problem.total_nnz() > 0);
            assert!(b.problem.name().starts_with(b.domain.name()));
        }
    }

    #[test]
    fn full_suite_has_120_problems_with_spread() {
        // Only check the schedule (generating all 120 here would be slow in
        // debug builds).
        let mut total = 0;
        for d in Domain::all() {
            let s = d.size_schedule(20);
            assert_eq!(s.len(), 20);
            total += s.len();
        }
        assert_eq!(total, 120);
    }

    #[test]
    fn domain_names_match_paper_legend() {
        let names: Vec<&str> = Domain::all().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["control", "portfolio", "lasso", "huber", "svm", "eqqp"]);
        assert_eq!(Domain::Svm.to_string(), "svm");
    }
}
