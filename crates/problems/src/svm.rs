//! Support vector machine (hinge loss) as a QP.
//!
//! ```text
//! minimize   (1/2) xᵀx + λ·1ᵀt
//! subject to t ≥ diag(b)·A_d·x + 1,   t ≥ 0
//! ```
//!
//! `A_d` has `m_s = 10·n` rows at 15 % density; labels `b_i = ±1` with a
//! class-dependent feature shift so the instance is non-trivially separable.

use rsqp_solver::QpProblem;
use rsqp_sparse::CooMatrix;

use crate::util::{rng_for, sprandn};

/// Samples per feature.
pub const SAMPLES_PER_FEATURE: usize = 10;
/// Hinge-loss weight.
pub const LAMBDA: f64 = 1.0;

/// Generates an SVM problem with `size` features.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn generate(size: usize, seed: u64) -> QpProblem {
    assert!(size > 0, "svm problem needs at least one feature");
    let n = size;
    let ms = SAMPLES_PER_FEATURE * n;
    let mut prng = rng_for("svm-pattern", size, 0);
    let mut vrng = rng_for("svm-values", size, seed);

    let mut ad = sprandn(ms, n, 0.15, &mut prng, &mut vrng);
    // First half of the samples get label +1 and a positive feature shift,
    // second half -1 and a negative shift.
    let labels: Vec<f64> = (0..ms).map(|i| if i < ms / 2 { 1.0 } else { -1.0 }).collect();
    {
        let indptr = ad.indptr().to_vec();
        let data = ad.data_mut();
        for i in 0..ms {
            for v in &mut data[indptr[i]..indptr[i + 1]] {
                *v += labels[i] / (n as f64).sqrt();
            }
        }
    }

    // Variables (x, t).
    let nvar = n + ms;
    let mut p = CooMatrix::with_capacity(nvar, nvar, n);
    for i in 0..n {
        p.push(i, i, 1.0);
    }
    let mut q = vec![0.0; nvar];
    for i in 0..ms {
        q[n + i] = LAMBDA;
    }

    // Constraints: diag(b)·A_d·x − t ≤ −1 and t ≥ 0.
    let m = 2 * ms;
    let mut a = CooMatrix::with_capacity(m, nvar, ad.nnz() + 2 * ms);
    let mut l = Vec::with_capacity(m);
    let mut u = Vec::with_capacity(m);
    for r in 0..ms {
        let (cols, vals) = ad.row(r);
        for (&c, &val) in cols.iter().zip(vals) {
            a.push(r, c, labels[r] * val);
        }
        a.push(r, n + r, -1.0);
        l.push(f64::NEG_INFINITY);
        u.push(-1.0);
    }
    for i in 0..ms {
        a.push(ms + i, n + i, 1.0);
        l.push(0.0);
        u.push(f64::INFINITY);
    }

    QpProblem::new(p.to_csr(), q, a.to_csr(), l, u)
        .expect("svm generator produces valid problems")
        .with_name(format!("svm_{size:04}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn shapes_are_consistent() {
        let qp = generate(4, 1);
        assert_eq!(qp.num_vars(), 4 + 40);
        assert_eq!(qp.num_constraints(), 80);
    }

    #[test]
    fn same_structure_across_seeds() {
        let a = generate(4, 1);
        let b = generate(4, 3);
        assert!(rsqp_sparse::pattern::same_structure(a.a(), b.a()));
    }

    #[test]
    fn hinge_slacks_are_consistent_at_solution() {
        let qp = generate(4, 9);
        let mut s = Solver::new(&qp, Settings::default()).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
        // t_i >= 0 at solution.
        for i in 0..40 {
            assert!(r.x[4 + i] > -1e-3);
        }
        // objective is positive (1't >= 0, x'x >= 0)
        assert!(r.objective > 0.0);
    }
}
