//! Random strictly convex box-constrained QPs, used by tests and examples
//! (not part of the paper's 6-domain benchmark).

use rand::Rng;
use rsqp_solver::QpProblem;
use rsqp_sparse::CooMatrix;

use crate::util::{randn, rng_for, sprandn};

/// Generates a random strictly convex QP with `n` variables and `m`
/// two-sided inequality constraints.
///
/// `P` is a diagonally-dominant symmetric matrix (hence positive definite),
/// `A` is 15 % dense, and the bounds always contain `Ax₀` for a random
/// feasible point `x₀`, so the problem is feasible by construction.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate(n: usize, m: usize, seed: u64) -> QpProblem {
    assert!(n > 0, "random QP needs at least one variable");
    let mut prng = rng_for("random-pattern", n + 1000 * m, 0);
    let mut vrng = rng_for("random-values", n + 1000 * m, seed);

    // Symmetric off-diagonal part + dominant diagonal.
    let off = sprandn(n, n, (4.0 / n as f64).min(0.3), &mut prng, &mut vrng);
    let mut coo = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0; n];
    for i in 0..n {
        let (cols, vals) = off.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            if j > i {
                coo.push(i, j, v);
                coo.push(j, i, v);
                rowsum[i] += v.abs();
                rowsum[j] += v.abs();
            }
        }
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        coo.push(i, i, rs + 1.0 + vrng.gen_range(0.0..2.0));
    }
    let p = coo.to_csr();
    let q: Vec<f64> = (0..n).map(|_| randn(&mut vrng)).collect();

    let a = sprandn(m, n, 0.15_f64.max((2.0 / n as f64).min(1.0)), &mut prng, &mut vrng);
    let x0: Vec<f64> = (0..n).map(|_| randn(&mut vrng)).collect();
    let mut ax0 = vec![0.0; m];
    a.spmv(&x0, &mut ax0).expect("generator shapes are consistent");
    let l: Vec<f64> = ax0.iter().map(|&v| v - vrng.gen_range(0.1..2.0)).collect();
    let u: Vec<f64> = ax0.iter().map(|&v| v + vrng.gen_range(0.1..2.0)).collect();

    QpProblem::new(p, q, a, l, u)
        .expect("random generator produces valid problems")
        .with_name(format!("random_{n}x{m}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn random_qp_is_feasible_and_solvable() {
        let qp = generate(15, 10, 3);
        let mut s = Solver::new(&qp, Settings::default()).unwrap();
        let r = s.solve().unwrap();
        assert_eq!(r.status, Status::Solved);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(10, 5, 1);
        let b = generate(10, 5, 1);
        assert_eq!(a.p(), b.p());
        assert_eq!(a.q(), b.q());
    }

    #[test]
    fn handles_zero_constraints() {
        let qp = generate(8, 0, 1);
        assert_eq!(qp.num_constraints(), 0);
        let mut s = Solver::new(&qp, Settings::default()).unwrap();
        assert_eq!(s.solve().unwrap().status, Status::Solved);
    }
}

/// Generates a primal-infeasible QP: two copies of a random constraint row
/// pinned to different right-hand sides.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate_primal_infeasible(n: usize, seed: u64) -> QpProblem {
    assert!(n > 0, "needs at least one variable");
    let base = generate(n, 3, seed);
    let mut prng = rng_for("infeasible-pattern", n, 0);
    let mut vrng = rng_for("infeasible-values", n, seed);
    let row = sprandn(1, n, (4.0 / n as f64).min(1.0), &mut prng, &mut vrng);
    let row = if row.nnz() == 0 { ones_row(n) } else { row };
    let a = rsqp_sparse::stack::vstack(&[base.a(), &row, &row]);
    let mut l = base.l().to_vec();
    let mut u = base.u().to_vec();
    l.push(0.0);
    u.push(0.0);
    l.push(1.0);
    u.push(1.0);
    QpProblem::new(base.p().clone(), base.q().to_vec(), a, l, u)
        .expect("structurally valid")
        .with_name(format!("infeasible_{n}"))
}

/// Generates a dual-infeasible (unbounded) QP: a zero-curvature direction
/// with strictly decreasing cost and one-sided constraints.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate_unbounded(n: usize, seed: u64) -> QpProblem {
    assert!(n > 0, "needs at least one variable");
    let mut vrng = rng_for("unbounded-values", n, seed);
    // P is PSD but singular: zero block on the last variable.
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n - 1 {
        coo.push(i, i, 1.0 + vrng.gen_range(0.0..1.0));
    }
    if n >= 1 {
        coo.push(n - 1, n - 1, 0.0);
    }
    let p = coo.to_csr();
    let mut q = vec![0.0; n];
    q[n - 1] = -1.0; // decreasing along the free direction
                     // Constraints: x_i bounded below only.
    let a = rsqp_sparse::CsrMatrix::identity(n);
    let l = vec![0.0; n];
    let u = vec![f64::INFINITY; n];
    QpProblem::new(p, q, a, l, u).expect("structurally valid").with_name(format!("unbounded_{n}"))
}

/// A 1×n all-ones row, used when the random constraint row came out empty.
fn ones_row(n: usize) -> rsqp_sparse::CsrMatrix {
    rsqp_sparse::CsrMatrix::from_triplets(1, n, (0..n).map(|j| (0, j, 1.0)).collect::<Vec<_>>())
}

#[cfg(test)]
mod degenerate_tests {
    use super::*;
    use rsqp_solver::{Settings, Solver, Status};

    #[test]
    fn infeasible_instances_are_detected() {
        for n in [3, 8, 15] {
            let qp = generate_primal_infeasible(n, n as u64);
            let mut s = Solver::new(&qp, Settings::default()).unwrap();
            let r = s.solve().unwrap();
            assert_eq!(r.status, Status::PrimalInfeasible, "n = {n}");
        }
    }

    #[test]
    fn unbounded_instances_are_detected() {
        for n in [2, 5, 12] {
            let qp = generate_unbounded(n, n as u64);
            let mut s = Solver::new(&qp, Settings::default()).unwrap();
            let r = s.solve().unwrap();
            assert_eq!(r.status, Status::DualInfeasible, "n = {n}");
        }
    }
}
