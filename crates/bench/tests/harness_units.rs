//! Unit tests for the bench harness plumbing: figure tables are well formed
//! and a full measurement record is internally consistent.

use rsqp_bench::{figures, measure_problem, solve_cpu, solve_fpga, HarnessOptions};
use rsqp_core::customize;
use rsqp_problems::{small_suite, suite_with_sizes};

#[test]
fn fig07_table_covers_the_suite() {
    let suite = suite_with_sizes(1, 2);
    let t = figures::fig07(&suite);
    assert_eq!(t.len(), suite.len());
    let csv = t.to_csv();
    assert!(csv.starts_with("app,name,size,n,m,nnz"));
    for bp in &suite {
        assert!(csv.contains(bp.problem.name()));
    }
}

#[test]
fn measurement_is_internally_consistent() {
    let opts = HarnessOptions { points: 2, c: 16, s_target: 3, seed: 7 };
    let bp = &small_suite(7)[0];
    let m = measure_problem(bp, &opts);
    assert_eq!(m.nnz, bp.problem.total_nnz());
    assert!(m.cpu_time.as_nanos() > 0);
    assert!(m.gpu_time.as_nanos() > 0);
    assert!(m.fpga_base_time >= m.fpga_custom_time || m.customization_speedup() < 1.0 + 1e-9);
    assert!((0.0..=1.0).contains(&m.cpu_kkt_fraction));
    assert!(m.gpu_power_w >= 44.0 && m.gpu_power_w <= 126.0);
    assert!(m.customization.eta_custom >= m.customization.eta_baseline);

    // All figure builders accept the measurement.
    for table in [
        figures::fig08(std::slice::from_ref(&m)),
        figures::fig09(std::slice::from_ref(&m)),
        figures::fig10(std::slice::from_ref(&m)),
        figures::fig11(std::slice::from_ref(&m)),
        figures::fig12(std::slice::from_ref(&m)),
        figures::fig13(std::slice::from_ref(&m)),
    ] {
        assert_eq!(table.len(), 1);
    }
}

#[test]
fn cpu_and_fpga_runners_agree_on_status() {
    let bp = &small_suite(3)[2];
    let cpu = solve_cpu(&bp.problem);
    let custom = customize(&bp.problem, 16, 3);
    let (fpga, time) = solve_fpga(&bp.problem, &custom.config);
    assert_eq!(cpu.status, fpga.status);
    assert!(time.as_secs_f64() > 0.0);
}

#[test]
fn summary_formats_and_filters() {
    let s = figures::summary("x", [1.0, 4.0, f64::NAN, -2.0].into_iter());
    assert!(s.contains("geomean 2.00"));
    assert!(s.contains("n = 2"));
    let empty = figures::summary("y", std::iter::empty());
    assert!(empty.contains("no data"));
}
