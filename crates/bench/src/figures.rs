//! Table builders for each figure/table of the paper's evaluation.

use rsqp_core::report::{fmt_f, fmt_secs, Table};
use rsqp_problems::BenchmarkProblem;

use crate::Measurement;

/// Figure 7: benchmark dimensions (nnz vs number of decision variables).
pub fn fig07(suite: &[BenchmarkProblem]) -> Table {
    let mut t = Table::new(["app", "name", "size", "n", "m", "nnz"]);
    for bp in suite {
        t.push([
            bp.domain.name().to_string(),
            bp.problem.name().to_string(),
            bp.size.to_string(),
            bp.problem.num_vars().to_string(),
            bp.problem.num_constraints().to_string(),
            bp.problem.total_nnz().to_string(),
        ]);
    }
    t
}

/// Figure 8: percentage of CPU solver time spent solving the KKT system.
pub fn fig08(measurements: &[Measurement]) -> Table {
    let mut t = Table::new(["app", "name", "nnz", "kkt_time_pct"]);
    for m in measurements {
        t.push([
            m.domain.to_string(),
            m.name.clone(),
            m.nnz.to_string(),
            format!("{:.2}", 100.0 * m.cpu_kkt_fraction),
        ]);
    }
    t
}

/// Figure 9: improvement of the match score η after customization.
pub fn fig09(measurements: &[Measurement]) -> Table {
    let mut t =
        Table::new(["app", "name", "nnz", "eta_baseline", "eta_custom", "delta_eta", "structures"]);
    for m in measurements {
        t.push([
            m.domain.to_string(),
            m.name.clone(),
            m.nnz.to_string(),
            fmt_f(m.customization.eta_baseline),
            fmt_f(m.customization.eta_custom),
            fmt_f(m.customization.eta_improvement()),
            m.customization.notation(),
        ]);
    }
    t
}

/// Figure 10: end-to-end solver speedup of the customized over the baseline
/// FPGA architecture.
pub fn fig10(measurements: &[Measurement]) -> Table {
    let mut t = Table::new(["app", "name", "nnz", "baseline_s", "customized_s", "speedup"]);
    for m in measurements {
        t.push([
            m.domain.to_string(),
            m.name.clone(),
            m.nnz.to_string(),
            fmt_secs(m.fpga_base_time),
            fmt_secs(m.fpga_custom_time),
            fmt_f(m.customization_speedup()),
        ]);
    }
    t
}

/// Figure 11: end-to-end speedup over the CPU of the GPU, the baseline
/// FPGA, and the customized FPGA.
pub fn fig11(measurements: &[Measurement]) -> Table {
    let mut t = Table::new([
        "app",
        "name",
        "nnz",
        "speedup_cuda",
        "speedup_no_customization",
        "speedup_customization",
    ]);
    for m in measurements {
        t.push([
            m.domain.to_string(),
            m.name.clone(),
            m.nnz.to_string(),
            fmt_f(m.speedup_over_cpu(m.gpu_time)),
            fmt_f(m.speedup_over_cpu(m.fpga_base_time)),
            fmt_f(m.speedup_over_cpu(m.fpga_custom_time)),
        ]);
    }
    t
}

/// Figure 12: absolute solver run time on CPU, GPU, and customized FPGA.
pub fn fig12(measurements: &[Measurement]) -> Table {
    let mut t = Table::new(["app", "name", "nnz", "mkl_s", "cuda_s", "customization_s"]);
    for m in measurements {
        t.push([
            m.domain.to_string(),
            m.name.clone(),
            m.nnz.to_string(),
            fmt_secs(m.cpu_time),
            fmt_secs(m.gpu_time),
            fmt_secs(m.fpga_custom_time),
        ]);
    }
    t
}

/// Figure 13: power efficiency (instances per second per watt) of the FPGA
/// and the GPU.
pub fn fig13(measurements: &[Measurement]) -> Table {
    use rsqp_core::perf::fpga::FPGA_POWER_W;
    use rsqp_core::perf::power::throughput_per_watt;
    let mut t = Table::new([
        "app",
        "name",
        "nnz",
        "fpga_throughput_per_w",
        "gpu_throughput_per_w",
        "fpga_advantage",
    ]);
    for m in measurements {
        let f = throughput_per_watt(m.fpga_custom_time, FPGA_POWER_W);
        let g = throughput_per_watt(m.gpu_time, m.gpu_power_w);
        t.push([
            m.domain.to_string(),
            m.name.clone(),
            m.nnz.to_string(),
            fmt_f(f),
            fmt_f(g),
            fmt_f(if g > 0.0 { f / g } else { 0.0 }),
        ]);
    }
    t
}

/// Summary statistics line used by several binaries: min/geomean/max of a
/// positive-valued column.
pub fn summary(label: &str, values: impl Iterator<Item = f64>) -> String {
    let v: Vec<f64> = values.filter(|x| x.is_finite() && *x > 0.0).collect();
    if v.is_empty() {
        return format!("{label}: no data");
    }
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = v.iter().cloned().fold(0.0f64, f64::max);
    let geo = (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    format!("{label}: min {min:.2}  geomean {geo:.2}  max {max:.2}  (n = {})", v.len())
}
