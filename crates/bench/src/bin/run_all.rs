//! Runs the complete evaluation once and prints every figure/table from a
//! single shared set of measurements (the cheapest way to regenerate the
//! whole of §5; see `EXPERIMENTS.md`).

use rsqp_bench::{figures, measure_problem, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    eprintln!("running with {opts:?} (pass --points 20 for the paper-scale sweep)");
    let suite = suite_with_sizes(opts.seed, opts.points);
    eprintln!("generated {} benchmark problems", suite.len());

    let mut measurements = Vec::with_capacity(suite.len());
    for (i, bp) in suite.iter().enumerate() {
        eprintln!(
            "[{}/{}] {} (nnz {})",
            i + 1,
            suite.len(),
            bp.problem.name(),
            bp.problem.total_nnz()
        );
        measurements.push(measure_problem(bp, &opts));
    }

    let outputs = [
        ("fig07_benchmark.csv", figures::fig07(&suite)),
        ("fig08_kkt_fraction.csv", figures::fig08(&measurements)),
        ("fig09_eta.csv", figures::fig09(&measurements)),
        ("fig10_custom_speedup.csv", figures::fig10(&measurements)),
        ("fig11_speedup.csv", figures::fig11(&measurements)),
        ("fig12_runtime.csv", figures::fig12(&measurements)),
        ("fig13_power.csv", figures::fig13(&measurements)),
    ];
    for (name, table) in &outputs {
        println!("==== {name} ====");
        println!("{}", table.to_text());
        table.write_csv(results_path(name)).expect("write csv");
    }

    println!("==== headline numbers ====");
    println!(
        "{}",
        figures::summary(
            "kkt share of CPU time (%)",
            measurements.iter().map(|m| 100.0 * m.cpu_kkt_fraction)
        )
    );
    println!(
        "{}",
        figures::summary(
            "delta eta",
            measurements.iter().map(|m| m.customization.eta_improvement())
        )
    );
    println!(
        "{}",
        figures::summary(
            "customization speedup (paper: 1.4-7.0x)",
            measurements.iter().map(|m| m.customization_speedup())
        )
    );
    println!(
        "{}",
        figures::summary(
            "fpga-custom speedup over cpu (paper: up to 31.2x)",
            measurements.iter().map(|m| m.speedup_over_cpu(m.fpga_custom_time))
        )
    );
    println!(
        "{}",
        figures::summary(
            "power-efficiency advantage over gpu (paper: up to 22.7x)",
            measurements.iter().map(|m| {
                use rsqp_core::perf::{fpga::FPGA_POWER_W, power::throughput_per_watt};
                throughput_per_watt(m.fpga_custom_time, FPGA_POWER_W)
                    / throughput_per_watt(m.gpu_time, m.gpu_power_w)
            })
        )
    );
}
