//! Figure 2(g): sparsity-string encoding excerpts of each benchmark domain.

use rsqp_bench::HarnessOptions;
use rsqp_encode::SparsityString;
use rsqp_problems::{generate, Domain};

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Figure 2(g): sparsity-string excerpts (C = 64, as in the paper)\n");
    for domain in Domain::all() {
        let size = domain.size_schedule(20)[opts.points.min(10)];
        let qp = generate(domain, size, opts.seed);
        for (label, m) in [("P", qp.p()), ("A", qp.a())] {
            let s = SparsityString::encode(m, 64);
            let text = s.to_string();
            let excerpt: String = text.chars().take(80).collect();
            println!(
                "{:>10} {label} (entropy {:.2} bits, {} runs / {} chars): {excerpt}{}",
                domain.name(),
                s.entropy_bits(),
                s.run_count(),
                s.len(),
                if text.len() > 80 { "…" } else { "" }
            );
        }
        println!();
    }
    println!("low entropy / few runs predict large customization gains; eqqp's");
    println!("high-entropy strings explain its small delta eta (Figure 9).");
}
