//! Repeated-solve (MPC session) benchmark with a regression gate.
//!
//! Runs the paper's flagship repeated-solve workload — a 40-step linear MPC
//! sequence on the control family, where each step carries a new initial
//! state in through the bounds — two ways:
//!
//! * **session**: one [`SolveSession`] with a shared
//!   [`CustomizationCache`]: the solver, its equilibration, and the cached
//!   customization + symbolic LDLᵀ ordering persist across steps, and every
//!   step warm-starts from the previous solution;
//! * **cold**: a fresh [`Solver`] per step (re-running setup, symbolic
//!   analysis, and the full ADMM iteration from zero) — the cost a caller
//!   pays without the session layer.
//!
//! The exactly-once customization contract is asserted **on every run**
//! (with or without `--check`): a 40-step single-pattern sequence must
//! record `cache_misses == 1` and `cache_hits == 39`, and the session's
//! mean per-step wall time must beat the cold baseline. Output is a flat
//! JSON map written to `BENCH_sessions.json`; with `--check`, the run
//! instead gates its dimensionless `speedup_*` metrics against that
//! committed baseline (25% regression band — raw nanoseconds are recorded
//! for inspection but not gated, since CI hosts differ).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rsqp_problems::control;
use rsqp_runtime::{CustomizationCache, SessionConfig, SolveSession, StepUpdate};
use rsqp_solver::{Settings, Solver, Status};

/// Baseline/output location, relative to the workspace root CI runs from.
const BASELINE: &str = "BENCH_sessions.json";
/// Gate: a speedup metric may not fall below this fraction of baseline.
const TOLERANCE: f64 = 0.75;
/// Steps in the MPC sequence; the ledger gate is tied to this.
const STEPS: u64 = 40;

struct Options {
    check: bool,
    quick: bool,
    update: bool,
}

fn parse_args() -> Options {
    let mut o = Options { check: false, quick: false, update: false };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => o.check = true,
            "--quick" => o.quick = true,
            "--update" => o.update = true,
            other => panic!("unknown option {other} (expected --check / --quick / --update)"),
        }
    }
    o
}

/// One benchmark report: insertion-ordered `(name, value)` pairs.
#[derive(Default)]
struct Report(Vec<(String, f64)>);

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        self.0.push((name.to_string(), value));
    }

    fn get(&self, name: &str) -> Option<f64> {
        self.0.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.0.iter().enumerate() {
            let sep = if i + 1 == self.0.len() { "" } else { "," };
            out.push_str(&format!("  \"{name}\": {value:.3}{sep}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Minimal parser for the flat `{"name": number, ...}` maps this
    /// binary writes.
    fn from_json(text: &str) -> Report {
        let mut report = Report::default();
        for piece in text.split(',') {
            let Some((key, value)) = piece.split_once(':') else { continue };
            let key = key.trim().trim_start_matches(['{', '\n', ' ']).trim_matches('"');
            let value = value.trim().trim_end_matches(['}', '\n', ' ']);
            if let Ok(v) = value.parse::<f64>() {
                if !key.is_empty() {
                    report.push(key, v);
                }
            }
        }
        report
    }
}

/// The MPC step input: seed `k`'s bounds carry that instance's initial
/// state (the first `nx` rows); dynamics and box rows are identical across
/// seeds, so only values change and the pattern key is stable.
fn step_bounds(size: usize, seed: u64) -> StepUpdate {
    let target = control::generate(size, seed);
    StepUpdate::Bounds { l: target.l().to_vec(), u: target.u().to_vec() }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let size = if opts.quick { 4 } else { 8 };
    let settings = Settings::default();
    let mut report = Report::default();
    report.push("steps", STEPS as f64);
    report.push("control_size", size as f64);

    // --- Session mode: persistent solver + pattern-keyed cache ----------
    let cache = Arc::new(CustomizationCache::new(4));
    let config =
        SessionConfig::default().with_settings(settings.clone()).with_cache(Arc::clone(&cache));
    let mut session = SolveSession::new(control::generate(size, 1), config);

    let mut session_total_ns = 0.0f64;
    let mut first_step_ns = 0.0f64;
    let mut session_iters = 0u64;
    for seed in 1..=STEPS {
        let updates = if seed == 1 { Vec::new() } else { vec![step_bounds(size, seed)] };
        let t = Instant::now();
        let step = session.step(updates).expect("session step");
        let ns = t.elapsed().as_nanos() as f64;
        session_total_ns += ns;
        if seed == 1 {
            first_step_ns = ns;
        }
        assert_eq!(step.result.status, Status::Solved, "session step {seed} did not solve");
        session_iters += step.result.iterations as u64;
    }

    // The exactly-once contract, asserted on every run: 40 steps of one
    // pattern touch the customization pipeline and the symbolic analysis
    // exactly once.
    let snap = session.metrics().snapshot();
    assert_eq!(snap.counter("session_steps"), STEPS);
    assert_eq!(
        snap.counter("cache_misses"),
        1,
        "a single-pattern {STEPS}-step sequence must customize exactly once"
    );
    assert_eq!(snap.counter("cache_hits"), STEPS - 1);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), STEPS - 1);

    report.push("session_total_ns", session_total_ns);
    report.push("session_first_step_ns", first_step_ns);
    report.push("session_mean_step_ns", session_total_ns / STEPS as f64);
    // Steady state excludes the one miss step that pays customization.
    report.push("session_steady_step_ns", (session_total_ns - first_step_ns) / (STEPS - 1) as f64);
    report.push("session_mean_iters", session_iters as f64 / STEPS as f64);
    report.push("cache_misses", cache.misses() as f64);
    report.push("cache_hits", cache.hits() as f64);

    // --- Cold baseline: fresh solver per step ---------------------------
    let mut cold_total_ns = 0.0f64;
    let mut cold_iters = 0u64;
    let base = control::generate(size, 1);
    for seed in 1..=STEPS {
        let mut problem = base.clone();
        if seed > 1 {
            let target = control::generate(size, seed);
            problem.update_bounds(target.l().to_vec(), target.u().to_vec()).unwrap();
        }
        let t = Instant::now();
        let mut solver = Solver::new(&problem, settings.clone()).expect("cold solver");
        let result = solver.solve().expect("cold solve");
        cold_total_ns += t.elapsed().as_nanos() as f64;
        assert_eq!(result.status, Status::Solved, "cold step {seed} did not solve");
        cold_iters += result.iterations as u64;
    }
    let cold_mean = cold_total_ns / STEPS as f64;
    let session_mean = session_total_ns / STEPS as f64;
    report.push("cold_total_ns", cold_total_ns);
    report.push("cold_mean_step_ns", cold_mean);
    report.push("cold_mean_iters", cold_iters as f64 / STEPS as f64);
    report.push("speedup_session_vs_cold", cold_mean / session_mean);

    // Sessions must pay off on their flagship workload, on every host.
    assert!(
        session_mean < cold_mean,
        "session mean step ({session_mean:.0} ns) is not below the cold baseline \
         ({cold_mean:.0} ns)"
    );

    println!("bench_sessions results (control_{size:04}, {STEPS} steps):");
    for (name, value) in &report.0 {
        println!("  {name:>26}: {value:.3}");
    }

    if opts.check && !opts.update {
        return check(&report);
    }
    std::fs::write(BASELINE, report.to_json()).expect("write baseline");
    println!("wrote {BASELINE}");
    ExitCode::SUCCESS
}

fn check(current: &Report) -> ExitCode {
    let Ok(text) = std::fs::read_to_string(BASELINE) else {
        eprintln!("no committed baseline at {BASELINE}; run bench_sessions to create one");
        return ExitCode::FAILURE;
    };
    let baseline = Report::from_json(&text);
    let mut failures = 0;
    for (name, base) in &baseline.0 {
        if !name.starts_with("speedup_") || *base <= 0.0 {
            continue;
        }
        match current.get(name) {
            Some(now) if now >= base * TOLERANCE => {
                println!("OK   {name}: {now:.3} (baseline {base:.3})");
            }
            Some(now) => {
                eprintln!(
                    "FAIL {name}: {now:.3} fell below {:.3} (baseline {base:.3} x {TOLERANCE})",
                    base * TOLERANCE
                );
                failures += 1;
            }
            None => {
                println!("SKIP {name}: not measured in this run");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} session speedup metric(s) regressed past the {TOLERANCE} band");
        ExitCode::FAILURE
    } else {
        println!("all gated metrics within tolerance");
        ExitCode::SUCCESS
    }
}
