//! Table 1: the RSQP instruction set, with the algorithm steps each class
//! implements, cross-checked against the generated PCG kernel.

use rsqp_arch::{instruction_class, kernels, ArchConfig, Machine};
use rsqp_core::report::Table;
use rsqp_sparse::CsrMatrix;
use std::collections::BTreeMap;

fn main() {
    let mut t = Table::new(["instruction class", "function", "usage"]);
    t.push([
        "Control",
        "Exit the algorithm loop if residual is less than threshold",
        "A1-8, A2-10",
    ]);
    t.push(["Scalar Arithmetic", "Addition, subtraction, division, multiplication", "A2-3,7,9"]);
    t.push(["Data transfer", "Read/write a vector from/to memory", "A2-1,10"]);
    t.push([
        "Vector Operations",
        "Linear combination, element-wise comparison/reciprocal/multiplication, dot product",
        "A1-4,5,6,7, A2-1,3,4,5,6,7,8",
    ]);
    t.push(["Vector Duplication", "Duplicate vector copies across buffers", "A2-1,3"]);
    t.push([
        "SpMV",
        "Multiply a matrix with a vector, write result to vector buffer",
        "A1-8, A2-1,3",
    ]);
    println!("Table 1: instruction set\n");
    println!("{}", t.to_text());

    // Cross-check: histogram of the generated PCG kernel's instructions.
    let p = CsrMatrix::identity(8);
    let a = CsrMatrix::identity(8);
    let at = a.transpose();
    let mut m = Machine::new(ArchConfig::baseline(8));
    let (pid, aid, atid) = (m.add_matrix(&p), m.add_matrix(&a), m.add_matrix(&at));
    let k = kernels::build_pcg(&mut m, pid, aid, atid, 8, 8, 100);
    let mut hist: BTreeMap<&str, usize> = BTreeMap::new();
    for i in k.program.instrs() {
        *hist.entry(instruction_class(i)).or_insert(0) += 1;
    }
    println!("instruction histogram of the generated Algorithm-2 kernel:");
    for (class, count) in hist {
        println!("  {class:>12}: {count}");
    }
}
