//! Figure 10: end-to-end solver speedup from problem-specific
//! customization (baseline vs customized FPGA architecture).

use rsqp_bench::{figures, measure_problem, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    let measurements: Vec<_> = suite.iter().map(|bp| measure_problem(bp, &opts)).collect();
    let t = figures::fig10(&measurements);
    println!("Figure 10: solver speedup from architectural customization\n");
    println!("{}", t.to_text());
    println!(
        "{}",
        figures::summary(
            "customization speedup",
            measurements.iter().map(|m| m.customization_speedup())
        )
    );
    let path = results_path("fig10_custom_speedup.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
