//! Ablation: the |S|_target sweep of Eq. (4) — more MAC-tree structures
//! lower E_p but cost area and (via routing pressure) f_max. This is the
//! trade-off Table 3 demonstrates with hand-picked points; here the LZW
//! search walks it automatically.

use rsqp_arch::{ArchConfig, ResourceModel};
use rsqp_bench::{results_path, HarnessOptions};
use rsqp_core::customize;
use rsqp_core::report::{fmt_f, Table};
use rsqp_problems::{generate, Domain};

fn main() {
    let opts = HarnessOptions::from_args();
    let qp = generate(Domain::Svm, 110, opts.seed);
    println!(
        "Ablation: |S|_target sweep on {} (nnz = {}, C = {})\n",
        qp.name(),
        qp.total_nnz(),
        opts.c
    );
    let model = ResourceModel;
    let mut t = Table::new([
        "s_target",
        "structures",
        "eta",
        "delta_eta",
        "fmax_mhz",
        "ff",
        "lut",
        "effective_spmv_per_us",
    ]);
    for target in 1..=6 {
        let r = customize(&qp, opts.c, target);
        let est = model.estimate(r.config.set());
        let cycles: usize = r.matrices.iter().map(|m| m.cycles_custom).sum();
        let spmv_rate = est.fmax_mhz / cycles as f64;
        t.push([
            target.to_string(),
            r.notation(),
            fmt_f(r.eta_custom),
            fmt_f(r.eta_improvement()),
            format!("{:.0}", est.fmax_mhz),
            est.ff.to_string(),
            est.lut.to_string(),
            fmt_f(spmv_rate),
        ]);
    }
    println!("{}", t.to_text());
    println!("note: beyond the sweet spot, extra structures buy little E_p but");
    println!("depress f_max — the diminishing returns the paper reports in §5.3.");
    let path = results_path("ablation_starget.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
    let _ = ArchConfig::baseline(opts.c); // silence unused-import lint paths
}
