//! Ablation: fill-in and factorization cost of the direct KKT solver under
//! natural, RCM, and minimum-degree orderings — the design choice behind
//! the CPU baseline's LDLT performance (DESIGN.md substitution table).

use rsqp_bench::{results_path, HarnessOptions};
use rsqp_core::report::Table;
use rsqp_linsys::{min_degree_ordering, rcm_ordering, KktMatrix, Ldlt, SymmetricPermutation};
use rsqp_problems::{generate, Domain};
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    let mut t = Table::new([
        "app",
        "kkt_dim",
        "kkt_nnz",
        "lnnz_natural",
        "lnnz_rcm",
        "lnnz_mindeg",
        "factor_ms_mindeg",
    ]);
    println!("Ablation: LDLT fill-in by ordering\n");
    for domain in Domain::all() {
        let size = domain.size_schedule(20)[opts.points.min(10)];
        let qp = generate(domain, size, opts.seed);
        let rho = vec![0.1; qp.num_constraints()];
        let kkt = KktMatrix::assemble(qp.p(), qp.a(), 1e-6, &rho).expect("valid");
        let dim = qp.num_vars() + qp.num_constraints();

        let natural = Ldlt::factor(kkt.matrix()).expect("quasi-definite").l_nnz();
        let rcm = {
            let sp = SymmetricPermutation::new(kkt.matrix(), rcm_ordering(kkt.matrix()).unwrap())
                .unwrap();
            Ldlt::factor(sp.matrix()).expect("quasi-definite").l_nnz()
        };
        let (mindeg, ms) = {
            let sp =
                SymmetricPermutation::new(kkt.matrix(), min_degree_ordering(kkt.matrix()).unwrap())
                    .unwrap();
            let t0 = Instant::now();
            let f = Ldlt::factor(sp.matrix()).expect("quasi-definite");
            (f.l_nnz(), t0.elapsed().as_secs_f64() * 1e3)
        };
        t.push([
            domain.name().to_string(),
            dim.to_string(),
            kkt.matrix().nnz().to_string(),
            natural.to_string(),
            rcm.to_string(),
            mindeg.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    println!("{}", t.to_text());
    let path = results_path("ablation_ordering.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
