//! Figure 11: end-to-end solver speedup over the CPU (MKL stand-in) of the
//! GPU model, the baseline FPGA, and the customized FPGA.

use rsqp_bench::{figures, measure_problem, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    let measurements: Vec<_> = suite.iter().map(|bp| measure_problem(bp, &opts)).collect();
    let t = figures::fig11(&measurements);
    println!("Figure 11: end-to-end speedup over the CPU baseline\n");
    println!("{}", t.to_text());
    println!(
        "{}",
        figures::summary(
            "fpga-custom speedup",
            measurements.iter().map(|m| m.speedup_over_cpu(m.fpga_custom_time))
        )
    );
    println!(
        "{}",
        figures::summary(
            "gpu speedup",
            measurements.iter().map(|m| m.speedup_over_cpu(m.gpu_time))
        )
    );
    let path = results_path("fig11_speedup.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
