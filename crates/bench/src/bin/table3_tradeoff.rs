//! Table 3: trade-off between performance and resources across
//! microarchitectural design points, on the svm instance with ≈20 616
//! non-zeros (the paper's case study).
//!
//! For every candidate architecture the harness reports the modeled f_max,
//! the match-score improvement Δη, the achieved SpMV throughput (one full
//! reduced-KKT operator evaluation: P, A, and Aᵀ streamed once), and the
//! DSP/FF/LUT estimates. An extra column shows the cycle count under the
//! optimal DP scheduler — the ablation `DESIGN.md` calls out.

use rsqp_arch::{ArchConfig, ResourceModel};
use rsqp_bench::{results_path, HarnessOptions};
use rsqp_core::report::{fmt_f, Table};
use rsqp_core::{customize, customize_with_config};
use rsqp_encode::{dp_schedule, greedy_schedule, Alphabet, SparsityString, StructureSet};
use rsqp_problems::{generate, Domain};

/// The paper's 11 design points (Table 3), as `(C, notation)`.
const DESIGN_POINTS: &[(usize, &str)] = &[
    (16, "1e"),
    (16, "16a1e"),
    (32, "32a4d1f"),
    (16, "16a2d1e"),
    (64, "64a4e1g"),
    (32, "4d1f"),
    (32, "32a4d2e1f"),
    (32, "4d2e1f"),
    (32, "16b4d1f"),
    (64, "4e1g"),
    (64, "8d4e1g"),
];

fn main() {
    let opts = HarnessOptions::from_args();
    // svm with ~20.6k nnz: feature count 110 lands closest.
    let qp = generate(Domain::Svm, 110, opts.seed);
    println!("Table 3: design points on {} (nnz(P)+nnz(A) = {})\n", qp.name(), qp.total_nnz());

    let model = ResourceModel;
    let at = qp.a().transpose();
    let mut t = Table::new([
        "architecture",
        "fmax_mhz",
        "delta_eta",
        "spmv_per_us",
        "dp_cycles_saved_pct",
        "dsp",
        "ff",
        "lut",
    ]);
    for &(c, notation) in DESIGN_POINTS {
        let set = StructureSet::parse(notation, Alphabet::new(c));
        let est = model.estimate(&set);
        let r = customize_with_config(&qp, ArchConfig::new(set.clone()));
        // One reduced-KKT operator evaluation streams P, A, Aᵀ once.
        let mut greedy_cycles = 0usize;
        let mut dp_cycles = 0usize;
        for m in [qp.p(), qp.a(), &at] {
            let s = SparsityString::encode(m, c);
            greedy_cycles += greedy_schedule(&s, &set).cycles();
            dp_cycles += dp_schedule(&s, &set).cycles();
        }
        let spmv_per_us = est.fmax_mhz / greedy_cycles as f64;
        let dp_saving = 100.0 * (greedy_cycles - dp_cycles) as f64 / greedy_cycles as f64;
        t.push([
            format!("{c}{{{notation}}}"),
            format!("{:.0}", est.fmax_mhz),
            fmt_f(r.eta_custom - r.eta_baseline),
            fmt_f(spmv_per_us),
            format!("{dp_saving:.1}"),
            est.dsp.to_string(),
            est.ff.to_string(),
            est.lut.to_string(),
        ]);
    }
    println!("{}", t.to_text());

    // What does our own search pick for this problem at each width?
    println!("structure sets chosen by the LZW search:");
    for c in [16, 32, 64] {
        let r = customize(&qp, c, opts.s_target);
        println!("  C = {c}: {} (delta eta {:.3})", r.notation(), r.eta_improvement());
    }
    let path = results_path("table3_tradeoff.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
