//! Figure 13: power efficiency (instances per second per watt) of the FPGA
//! and the GPU.

use rsqp_bench::{figures, measure_problem, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    let measurements: Vec<_> = suite.iter().map(|bp| measure_problem(bp, &opts)).collect();
    let t = figures::fig13(&measurements);
    println!("Figure 13: power efficiency (throughput per watt)\n");
    println!("{}", t.to_text());
    println!(
        "{}",
        figures::summary(
            "fpga advantage over gpu",
            measurements.iter().map(|m| {
                use rsqp_core::perf::{fpga::FPGA_POWER_W, power::throughput_per_watt};
                throughput_per_watt(m.fpga_custom_time, FPGA_POWER_W)
                    / throughput_per_watt(m.gpu_time, m.gpu_power_w)
            })
        )
    );
    let path = results_path("fig13_power.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
