//! Table 2: platform details of the evaluation system.

use rsqp_core::perf::platforms;
use rsqp_core::report::Table;

fn main() {
    let mut t = Table::new(["device", "model", "peak throughput", "lithography", "tdp"]);
    for p in platforms() {
        t.push([
            p.kind.to_string(),
            p.model.to_string(),
            format!("{} teraflops", p.peak_tflops),
            format!("{} nm", p.lithography_nm),
            format!("{} W", p.tdp_w),
        ]);
    }
    println!("Table 2: platform details\n");
    println!("{}", t.to_text());
    println!("CPU numbers in this reproduction are measured on the host; GPU");
    println!("and FPGA numbers come from the models documented in DESIGN.md.");
}
