//! Kernel and end-to-end benchmarks for the CPU hot path, with a
//! regression gate.
//!
//! Measures the layers the ADMM iteration spends its time in:
//!
//! * CSR SpMV, serial vs. pool-partitioned;
//! * `Aᵀx`, scatter kernel vs. the cached gather transpose;
//! * the reduced-KKT operator apply (Eq. 3), serial vs. 4-thread pool;
//! * a full PCG solve, per-call allocation (`pcg`) vs. reused workspace
//!   (`pcg_with`);
//! * end-to-end PCG-backend solves of the largest control/lasso suite
//!   instances at 1 and 4 kernel threads;
//! * a telemetry-overhead check: the disabled-tracing solve path must stay
//!   within 2% of the default-settings baseline path (asserted in-process,
//!   same host), with the traced path reported for visibility.
//!
//! Every parallel result is asserted **bit-identical** across pools of
//! 1, 2, and 8 threads before any number is reported.
//!
//! Output is a flat JSON map written to `BENCH_kernels.json`. With
//! `--check`, the run instead compares its dimensionless `speedup_*`
//! metrics against that committed baseline and fails when one falls below
//! 75% of its recorded value (a 25% regression band — raw nanosecond
//! metrics are recorded for inspection but not gated, since CI hosts
//! differ). Speedup metrics that need more cores than the host has are
//! recorded as absent and skipped by the gate.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rsqp_linsys::{pcg, pcg_with, LinearOperator, PcgSettings, PcgWorkspace, ReducedKktOp};
use rsqp_par::{available_threads, ThreadPool};
use rsqp_problems::{generate, Domain};
use rsqp_solver::{CgTolerance, LinSysKind, QpProblem, Settings, Solver};
use rsqp_sparse::{CooMatrix, CsrMatrix, RowPartition, TransposeCache};

/// Baseline/output location, relative to the workspace root CI runs from.
const BASELINE: &str = "BENCH_kernels.json";
/// Gate: a speedup metric may not fall below this fraction of baseline.
const TOLERANCE: f64 = 0.75;
/// Gate: the disabled-telemetry solve may not stray more than this
/// fraction from the default-settings baseline path (same process, same
/// host, interleaved best-of-N — so the band can be tight).
const TRACE_OVERHEAD_TOLERANCE: f64 = 0.02;
/// Pool sizes every kernel result must be bit-identical across.
const DETERMINISM_POOLS: [usize; 3] = [1, 2, 8];

struct Options {
    check: bool,
    quick: bool,
    update: bool,
}

fn parse_args() -> Options {
    let mut o = Options { check: false, quick: false, update: false };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => o.check = true,
            "--quick" => o.quick = true,
            "--update" => o.update = true,
            other => panic!("unknown option {other} (expected --check / --quick / --update)"),
        }
    }
    o
}

/// Deterministic xorshift64* generator (the bench must not depend on an
/// RNG crate).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Random sparse matrix with ~`per_row` entries per row.
fn random_csr(nrows: usize, ncols: usize, per_row: usize, rng: &mut Rng) -> CsrMatrix {
    let mut coo = CooMatrix::new(nrows, ncols);
    for i in 0..nrows {
        for _ in 0..per_row {
            coo.push(i, rng.below(ncols), rng.next_f64());
        }
    }
    coo.to_csr()
}

/// Diagonally dominant PSD band matrix (a well-conditioned `P`).
fn band_psd(n: usize, rng: &mut Rng) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0 + rng.next_f64().abs());
        if i + 1 < n {
            let v = 0.5 * rng.next_f64();
            coo.push(i, i + 1, v);
            coo.push(i + 1, i, v);
        }
    }
    coo.to_csr()
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn assert_bits_equal(name: &str, runs: &[Vec<f64>]) {
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(run.len(), runs[0].len(), "{name}: length mismatch across pools");
        for (j, (a, b)) in runs[0].iter().zip(run).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name}: element {j} differs between pool sizes {} and {}: {a:?} vs {b:?}",
                DETERMINISM_POOLS[0],
                DETERMINISM_POOLS[i],
            );
        }
    }
}

/// One benchmark report: insertion-ordered `(name, value)` pairs.
#[derive(Default)]
struct Report(Vec<(String, f64)>);

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        self.0.push((name.to_string(), value));
    }

    fn get(&self, name: &str) -> Option<f64> {
        self.0.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.0.iter().enumerate() {
            let sep = if i + 1 == self.0.len() { "" } else { "," };
            out.push_str(&format!("  \"{name}\": {value:.3}{sep}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Minimal parser for the flat `{"name": number, ...}` maps this
    /// binary writes.
    fn from_json(text: &str) -> Report {
        let mut report = Report::default();
        for piece in text.split(',') {
            let Some((key, value)) = piece.split_once(':') else { continue };
            let key = key.trim().trim_start_matches(['{', '\n', ' ']).trim_matches('"');
            let value = value.trim().trim_end_matches(['}', '\n', ' ']);
            if let Ok(v) = value.parse::<f64>() {
                if !key.is_empty() {
                    report.push(key, v);
                }
            }
        }
        report
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let cores = available_threads();
    let mut report = Report::default();
    report.push("host_cores", cores as f64);

    let (n, m, per_row, reps) =
        if opts.quick { (12_000, 14_000, 5, 5) } else { (20_000, 24_000, 7, 20) };

    let mut rng = Rng(0x5eed_cafe_f00d_beef);
    let a = random_csr(m, n, per_row, &mut rng);
    let p = band_psd(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let xm: Vec<f64> = (0..m).map(|i| ((i as f64) * 0.53).cos()).collect();
    let rho = vec![0.1; m];

    // --- SpMV: serial vs. partitioned on a pool -------------------------
    let mut y = vec![0.0; m];
    let spmv_serial = time_ns(reps, || a.spmv(&x, &mut y).unwrap());
    report.push("spmv_serial_ns", spmv_serial);
    let par_threads = cores.clamp(1, 8);
    {
        let pool = ThreadPool::new(par_threads);
        let part = RowPartition::balanced(&a, par_threads * 2);
        let spmv_par = time_ns(reps, || a.spmv_partitioned(&x, &mut y, &pool, &part).unwrap());
        report.push("spmv_pool_ns", spmv_par);
        if cores >= 2 {
            report.push("speedup_spmv_pool", spmv_serial / spmv_par);
        }
    }

    // Determinism: partitioned SpMV across pools.
    let runs: Vec<Vec<f64>> = DETERMINISM_POOLS
        .iter()
        .map(|&t| {
            let pool = ThreadPool::new(t);
            let part = RowPartition::balanced(&a, 8);
            let mut out = vec![0.0; m];
            a.spmv_partitioned(&x, &mut out, &pool, &part).unwrap();
            out
        })
        .collect();
    assert_bits_equal("spmv_partitioned", &runs);

    // --- Aᵀx: scatter kernel vs. cached gather transpose ----------------
    let mut yt = vec![0.0; n];
    let at_scatter = time_ns(reps, || a.spmv_transpose(&xm, &mut yt).unwrap());
    report.push("at_scatter_ns", at_scatter);
    let cache = TransposeCache::new(&a);
    let at_gather = time_ns(reps, || cache.spmv(&xm, &mut yt).unwrap());
    report.push("at_gather_ns", at_gather);
    report.push("speedup_at_gather", at_scatter / at_gather);

    // --- Reduced-KKT apply: serial vs. 4-thread pool --------------------
    let kkt_serial = {
        let mut op = ReducedKktOp::new(&p, &a, 1e-6, &rho).unwrap();
        let mut out = vec![0.0; n];
        time_ns(reps, || op.apply(&x, &mut out).unwrap())
    };
    report.push("kkt_apply_serial_ns", kkt_serial);
    {
        let pool = Arc::new(ThreadPool::new(4.min(cores.max(1))));
        let mut op =
            ReducedKktOp::with_pool(Arc::new(p.clone()), Arc::new(a.clone()), 1e-6, &rho, pool)
                .unwrap();
        let mut out = vec![0.0; n];
        let kkt_pool = time_ns(reps, || op.apply(&x, &mut out).unwrap());
        report.push("kkt_apply_pool4_ns", kkt_pool);
        if cores >= 4 {
            report.push("speedup_kkt_apply_pool4", kkt_serial / kkt_pool);
        }
    }

    // Determinism: the operator apply across pools.
    let runs: Vec<Vec<f64>> = DETERMINISM_POOLS
        .iter()
        .map(|&t| {
            let pool = Arc::new(ThreadPool::new(t));
            let mut op =
                ReducedKktOp::with_pool(Arc::new(p.clone()), Arc::new(a.clone()), 1e-6, &rho, pool)
                    .unwrap();
            let mut out = vec![0.0; n];
            op.apply(&x, &mut out).unwrap();
            out
        })
        .collect();
    assert_bits_equal("reduced_kkt_apply", &runs);

    // --- Full PCG: per-call allocation vs. reused workspace -------------
    {
        let pcg_iters = if opts.quick { 30 } else { 60 };
        let settings = PcgSettings { eps: 1e-30, eps_abs: 1e-300, max_iter: pcg_iters };
        let mut op = ReducedKktOp::new(&p, &a, 1e-6, &rho).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11).sin()).collect();
        let x0 = vec![0.0; n];
        let pcg_alloc = time_ns(reps.min(8), || drop(pcg(&mut op, &b, &x0, &settings).unwrap()));
        report.push("pcg_alloc_ns", pcg_alloc);
        let mut ws = PcgWorkspace::new(n);
        let mut xw = vec![0.0; n];
        let pcg_ws = time_ns(reps.min(8), || {
            xw.fill(0.0);
            pcg_with(&mut op, &b, &mut xw, &settings, &mut ws, None).unwrap();
        });
        report.push("pcg_ws_ns", pcg_ws);
        report.push("speedup_pcg_workspace", pcg_alloc / pcg_ws);
    }

    // --- End to end: largest control / lasso suite instances ------------
    for (domain, size, tag) in
        [(Domain::Control, 60usize, "control60"), (Domain::Lasso, 200usize, "lasso200")]
    {
        let problem = generate(domain, size, 7);
        let e2e_reps = if opts.quick { 1 } else { 3 };
        let mut times = [0.0f64; 2];
        let mut solutions: Vec<Vec<f64>> = Vec::new();
        for (slot, threads) in [(0usize, 1usize), (1, 4)] {
            let settings = Settings {
                linsys: LinSysKind::CpuPcg,
                threads,
                cg_tolerance: CgTolerance::Fixed(1e-7),
                adaptive_rho: false,
                ..Settings::default()
            };
            times[slot] = time_ns(e2e_reps, || {
                let mut solver = solve_setup(&problem, settings.clone());
                let result = solver.solve().expect("benchmark solve");
                if solutions.len() <= slot {
                    solutions.push(result.x);
                }
            });
        }
        report.push(&format!("e2e_{tag}_t1_ns"), times[0]);
        report.push(&format!("e2e_{tag}_t4_ns"), times[1]);
        if cores >= 4 {
            report.push(&format!("speedup_e2e_{tag}"), times[0] / times[1]);
        }
        assert_bits_equal(&format!("e2e_{tag}_solution"), &solutions);
    }

    // --- Telemetry overhead: disabled tracing rides the baseline path ---
    //
    // `Settings::default()` is exactly how the e2e baselines above were
    // measured before telemetry existed; `trace: false` names the
    // disabled-telemetry path explicitly. The two must be the same code
    // within measurement noise — if they ever diverge past the band (for
    // example because tracing became enabled by default, or the disabled
    // branch grew real work), this assert fires. `trace: true` is also
    // measured and reported for visibility, but not gated: enabling
    // telemetry legitimately costs a little.
    {
        let problem = generate(Domain::Lasso, 100, 7);
        let overhead_reps = if opts.quick { 12 } else { 18 };
        let with_trace = |trace: bool| Settings {
            linsys: LinSysKind::CpuPcg,
            threads: 1,
            cg_tolerance: CgTolerance::Fixed(1e-7),
            adaptive_rho: false,
            trace,
            ..Settings::default()
        };
        let baseline_settings = Settings {
            linsys: LinSysKind::CpuPcg,
            threads: 1,
            cg_tolerance: CgTolerance::Fixed(1e-7),
            adaptive_rho: false,
            ..Settings::default()
        };
        // One unmeasured warmup so neither gated slot pays first-touch
        // costs (page faults, allocator growth) on the clock.
        drop(solve_setup(&problem, baseline_settings.clone()).solve().expect("warmup solve"));
        let mut best = [f64::INFINITY; 3];
        let mut traced = None;
        for _ in 0..overhead_reps {
            for (slot, settings) in
                [(0usize, baseline_settings.clone()), (1, with_trace(false)), (2, with_trace(true))]
            {
                let t = Instant::now();
                let mut solver = solve_setup(&problem, settings);
                let result = solver.solve().expect("overhead solve");
                best[slot] = best[slot].min(t.elapsed().as_nanos() as f64);
                if slot == 2 {
                    traced = result.trace;
                }
            }
        }
        report.push("trace_baseline_ns", best[0]);
        report.push("trace_disabled_ns", best[1]);
        report.push("trace_enabled_ns", best[2]);
        let overhead = best[1] / best[0];
        report.push("trace_overhead_disabled", overhead);
        report.push("trace_overhead_enabled", best[2] / best[0]);
        assert!(
            (overhead - 1.0).abs() <= TRACE_OVERHEAD_TOLERANCE,
            "disabled-telemetry solve ({:.3e} ns) strayed more than {:.0}% from the \
             baseline path ({:.3e} ns): ratio {overhead:.4}",
            best[1],
            TRACE_OVERHEAD_TOLERANCE * 100.0,
            best[0],
        );
        let trace = traced.expect("trace: true must yield a SolveTrace");
        println!(
            "trace summary ({}): backend={} status={} iterations={} cg_total={} \
             spans={} events={}",
            trace.problem,
            trace.backend,
            trace.status,
            trace.iterations,
            trace.total_cg_iterations(),
            trace.spans.len(),
            trace.events.len(),
        );
    }

    println!("bench_kernels results ({} cores):", cores);
    for (name, value) in &report.0 {
        println!("  {name:>28}: {value:.3}");
    }

    if opts.check && !opts.update {
        return check(&report);
    }
    std::fs::write(BASELINE, report.to_json()).expect("write baseline");
    println!("wrote {BASELINE}");
    ExitCode::SUCCESS
}

fn solve_setup(problem: &QpProblem, settings: Settings) -> Solver {
    Solver::new(problem, settings).expect("benchmark problems are valid")
}

fn check(current: &Report) -> ExitCode {
    let Ok(text) = std::fs::read_to_string(BASELINE) else {
        eprintln!("no committed baseline at {BASELINE}; run bench_kernels to create one");
        return ExitCode::FAILURE;
    };
    let baseline = Report::from_json(&text);
    let mut failures = 0;
    for (name, base) in &baseline.0 {
        if !name.starts_with("speedup_") || *base <= 0.0 {
            continue;
        }
        match current.get(name) {
            Some(now) if now >= base * TOLERANCE => {
                println!("OK   {name}: {now:.3} (baseline {base:.3})");
            }
            Some(now) => {
                eprintln!(
                    "FAIL {name}: {now:.3} fell below {:.3} (baseline {base:.3} x {TOLERANCE})",
                    base * TOLERANCE
                );
                failures += 1;
            }
            None => {
                // Absent on this host (not enough cores) — recorded, not a
                // regression.
                println!("SKIP {name}: not measurable on this host");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} kernel speedup metric(s) regressed past the {TOLERANCE} band");
        ExitCode::FAILURE
    } else {
        println!("all gated metrics within tolerance");
        ExitCode::SUCCESS
    }
}
