//! Figure 7: number of non-zero values and decision variables of the
//! benchmark problems.

use rsqp_bench::{figures, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    let t = figures::fig07(&suite);
    println!("Figure 7: benchmark dimensions ({} problems)\n", suite.len());
    println!("{}", t.to_text());
    let path = results_path("fig07_benchmark.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
