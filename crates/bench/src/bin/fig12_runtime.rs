//! Figure 12: absolute solver run time on CPU, GPU (modeled), and the
//! customized FPGA (simulated).

use rsqp_bench::{figures, measure_problem, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    let measurements: Vec<_> = suite.iter().map(|bp| measure_problem(bp, &opts)).collect();
    let t = figures::fig12(&measurements);
    println!("Figure 12: solver run time (lower is better)\n");
    println!("{}", t.to_text());
    let path = results_path("fig12_runtime.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
