//! Figure 8: percentage of CPU solver time spent solving the KKT system.

use rsqp_bench::{figures, measure_problem, results_path, HarnessOptions};
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    let measurements: Vec<_> = suite.iter().map(|bp| measure_problem(bp, &opts)).collect();
    let t = figures::fig08(&measurements);
    println!("Figure 8: share of CPU solver time in the KKT solve\n");
    println!("{}", t.to_text());
    println!(
        "{}",
        figures::summary("kkt share (%)", measurements.iter().map(|m| 100.0 * m.cpu_kkt_fraction))
    );
    let path = results_path("fig08_kkt_fraction.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
