//! Figure 9: improvement of the match score η after problem-specific
//! customization.

use rsqp_bench::{figures, results_path, HarnessOptions};
use rsqp_core::customize;
use rsqp_problems::suite_with_sizes;

fn main() {
    let opts = HarnessOptions::from_args();
    let suite = suite_with_sizes(opts.seed, opts.points);
    // Fig 9 needs only the customization pipeline, not solves.
    let mut t = rsqp_core::report::Table::new([
        "app",
        "name",
        "nnz",
        "eta_baseline",
        "eta_custom",
        "delta_eta",
        "structures",
    ]);
    let mut deltas = Vec::new();
    for bp in &suite {
        let r = customize(&bp.problem, opts.c, opts.s_target);
        deltas.push((bp.domain.name(), r.eta_improvement()));
        t.push([
            bp.domain.name().to_string(),
            bp.problem.name().to_string(),
            bp.problem.total_nnz().to_string(),
            rsqp_core::report::fmt_f(r.eta_baseline),
            rsqp_core::report::fmt_f(r.eta_custom),
            rsqp_core::report::fmt_f(r.eta_improvement()),
            r.notation(),
        ]);
    }
    println!("Figure 9: Δη after problem-specific customization\n");
    println!("{}", t.to_text());
    for domain in rsqp_problems::Domain::all() {
        println!(
            "{}",
            figures::summary(
                &format!("delta eta [{domain}]"),
                deltas.iter().filter(|(d, _)| *d == domain.name()).map(|(_, v)| *v)
            )
        );
    }
    let path = results_path("fig09_eta.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
