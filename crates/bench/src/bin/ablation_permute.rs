//! Ablation for §4.4: does row permutation (grouping rows by sparsity
//! bucket) reduce the achievable E_p? The paper reports "little
//! improvement"; this harness measures it per domain.

use rsqp_bench::{results_path, HarnessOptions};
use rsqp_core::report::{fmt_f, Table};
use rsqp_encode::{greedy_schedule, permute, search_structures, SparsityString};
use rsqp_problems::{generate, Domain};

fn main() {
    let opts = HarnessOptions::from_args();
    let c = opts.c;
    let mut t = Table::new(["app", "nnz", "ep_original", "ep_row_sorted", "improvement_pct"]);
    println!("Ablation (paper §4.4): E_p with and without row permutation of A\n");
    for domain in Domain::all() {
        let size = domain.size_schedule(20)[opts.points.min(12)];
        let qp = generate(domain, size, opts.seed);
        let a = qp.a();
        let original = SparsityString::encode(a, c);
        let perm = permute::bucket_sort_rows(a, c);
        let sorted = SparsityString::encode(&a.permute_rows(&perm), c);

        let set_orig = search_structures(&original, opts.s_target);
        let set_sorted = search_structures(&sorted, opts.s_target);
        let ep_orig = greedy_schedule(&original, &set_orig).ep();
        let ep_sorted = greedy_schedule(&sorted, &set_sorted).ep();
        let impr = if ep_orig > 0 {
            100.0 * (ep_orig as f64 - ep_sorted as f64) / ep_orig as f64
        } else {
            0.0
        };
        t.push([
            domain.name().to_string(),
            qp.total_nnz().to_string(),
            ep_orig.to_string(),
            ep_sorted.to_string(),
            fmt_f(impr),
        ]);
    }
    println!("{}", t.to_text());
    println!("note: sorting A's rows alone is legal (permute l, u, y alongside);");
    println!("P rows cannot be sorted independently (KKT symmetry), which is why");
    println!("the paper finds the overall effect small.");
    let path = results_path("ablation_permute.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
