//! Concurrent chaos smoke test for the resilient solve runtime.
//!
//! Pushes a mixed fleet of ≥64 jobs through a [`SolveService`] while every
//! failure mode the runtime defends against is armed at once:
//!
//! * **backend chaos** — [`ChaosPlan`]-wrapped CPU PCG backends injecting
//!   delays, recoverable errors, and panics per KKT solve;
//! * **bit-level faults** — simulated-FPGA jobs with `FaultConfig` single-
//!   event upsets in the cycle-level machine (composing PR 1's fault
//!   harness with this PR's runtime);
//! * **deadline pressure** — never-converging jobs with tiny budgets;
//! * **cancellation** — in-flight jobs cancelled from outside;
//! * **backpressure** — the queue is deliberately smaller than the fleet,
//!   so [`SubmitError::QueueFull`] rejections must occur and be retried.
//!
//! Pass criteria (asserted; a violation exits nonzero):
//!
//! 1. zero hung jobs — every handle reports within a generous timeout;
//! 2. every job ends with a definite outcome (terminal status or typed
//!    error), never a poisoned/indeterminate state;
//! 3. zero worker deaths — after the storm, one clean job per worker must
//!    still solve.
//!
//! Fully deterministic per `--seed` (default 42) up to OS scheduling; the
//! fault schedules themselves replay exactly. Budgeted to finish well
//! under 60 s for CI (`cargo run -p rsqp-bench --bin chaos_smoke`).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rsqp_arch::{ArchConfig, FaultConfig};
use rsqp_bench::HarnessOptions;
use rsqp_core::FpgaPcgBackend;
use rsqp_problems::{generate, Domain};
use rsqp_runtime::{
    ChaosPlan, JobBudget, JobHandle, JobSpec, ServiceConfig, SolveService, SubmitError,
};
use rsqp_solver::{CgTolerance, CpuPcgBackend, Settings, Status};

const WORKERS: usize = 4;
/// Deliberately smaller than the fleet so backpressure must engage.
const QUEUE_CAPACITY: usize = 24;
const CPU_CHAOS_JOBS: u64 = 48;
const FPGA_FAULT_JOBS: u64 = 6;
const DEADLINE_JOBS: u64 = 6;
const CANCEL_JOBS: u64 = 4;
const REPORT_TIMEOUT: Duration = Duration::from_secs(45);

/// Silences the default panic spew for *injected* panics only; anything
/// else (a genuine bug) still prints its backtrace message.
fn quiet_injected_panics() {
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if !msg.is_some_and(|m| m.contains("chaos:")) {
            eprintln!("{info}");
        }
    }));
}

/// Submits with bounded retry on queue-full: backpressure is expected by
/// design here, so the producer backs off and tries again.
fn submit_with_backoff(
    service: &SolveService,
    mut spec: JobSpec,
    rejections: &mut usize,
) -> JobHandle {
    loop {
        match service.submit(spec) {
            Ok(handle) => return handle,
            Err(SubmitError::QueueFull { spec: returned, .. }) => {
                *rejections += 1;
                spec = returned;
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
    }
}

fn chaos_settings() -> Settings {
    Settings { eps_abs: 1e-5, eps_rel: 1e-5, max_iter: 2_000, ..Default::default() }
}

/// Settings under which ADMM never converges (used with control-family
/// problems, whose residuals never hit exactly zero).
fn endless_settings() -> Settings {
    Settings {
        eps_abs: 1e-300,
        eps_rel: 1e-300,
        max_iter: usize::MAX / 2,
        check_termination: 1,
        adaptive_rho: false,
        ..Default::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let master = opts.seed;
    quiet_injected_panics();
    let t0 = Instant::now();

    let service = SolveService::new(ServiceConfig {
        workers: WORKERS,
        queue_capacity: QUEUE_CAPACITY,
        ..Default::default()
    });
    let mut handles: Vec<(String, JobHandle)> = Vec::new();
    let mut rejections = 0usize;

    // --- CPU jobs with chaos-wrapped backends -------------------------
    let chaos = ChaosPlan::new(master)
        .with_delays(0.15, Duration::from_millis(3))
        .with_errors(0.25)
        .with_panics(0.10);
    let domains = Domain::all();
    for job in 0..CPU_CHAOS_JOBS {
        let domain = domains[job as usize % domains.len()];
        let size = 2 + (job as usize % 3);
        let plan = chaos.derive(job);
        let spec = JobSpec::new(generate(domain, size, master ^ job))
            .with_settings(chaos_settings())
            .with_budget(JobBudget::unbounded().with_timeout(Duration::from_secs(20)))
            .with_backend_factory(Box::new(move |p, a, sigma, rho, s| {
                let eps = match s.cg_tolerance {
                    CgTolerance::Fixed(e) => e,
                    CgTolerance::Adaptive { start, .. } => start,
                };
                let inner = Box::new(CpuPcgBackend::new(p, a, sigma, rho, eps, s.cg_max_iter));
                Ok(plan.wrap(inner))
            }));
        let handle = submit_with_backoff(&service, spec, &mut rejections);
        handles.push((format!("cpu-chaos/{domain:?}/{job}"), handle));
    }

    // --- simulated-FPGA jobs with bit-flip fault injection ------------
    let fault = FaultConfig::new(master).with_hbm_read_flips(2e-3).with_mac_output_flips(1e-3);
    for job in 0..FPGA_FAULT_JOBS {
        let cfg = ArchConfig::baseline(8).with_fault_injection(Some(fault.derive(job)));
        let spec = JobSpec::new(generate(Domain::Control, 2, 100 + job))
            .with_settings(chaos_settings())
            .with_budget(JobBudget::unbounded().with_timeout(Duration::from_secs(20)))
            .with_backend_factory(Box::new(move |p, a, sigma, rho, s| {
                let eps = match s.cg_tolerance {
                    CgTolerance::Fixed(e) => e,
                    CgTolerance::Adaptive { start, .. } => start,
                };
                let (backend, _machine) =
                    FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
                Ok(Box::new(backend))
            }));
        let handle = submit_with_backoff(&service, spec, &mut rejections);
        handles.push((format!("fpga-fault/{job}"), handle));
    }

    // --- never-converging jobs under deadline pressure ----------------
    for job in 0..DEADLINE_JOBS {
        let spec = JobSpec::new(generate(Domain::Control, 3, 200 + job))
            .with_settings(endless_settings())
            .with_budget(JobBudget::unbounded().with_timeout(Duration::from_millis(150)));
        let handle = submit_with_backoff(&service, spec, &mut rejections);
        handles.push((format!("deadline/{job}"), handle));
    }

    // --- in-flight jobs cancelled from outside ------------------------
    let mut cancels = Vec::new();
    for job in 0..CANCEL_JOBS {
        let spec = JobSpec::new(generate(Domain::Control, 3, 300 + job))
            .with_settings(endless_settings())
            .with_budget(JobBudget::unbounded().with_timeout(Duration::from_secs(20)));
        let handle = submit_with_backoff(&service, spec, &mut rejections);
        cancels.push(handle.cancel_token());
        handles.push((format!("cancel/{job}"), handle));
    }
    std::thread::sleep(Duration::from_millis(60));
    for token in &cancels {
        token.cancel();
    }

    let fleet = handles.len();
    assert!(fleet >= 64, "fleet of {fleet} jobs is below the 64-job floor");

    // --- criterion 1 & 2: every job reports a definite outcome --------
    let mut by_outcome: BTreeMap<String, usize> = BTreeMap::new();
    let mut max_attempts = 0usize;
    let mut hung = Vec::new();
    for (label, handle) in handles {
        match handle.wait_timeout(REPORT_TIMEOUT) {
            None => hung.push(label),
            Some(report) => {
                max_attempts = max_attempts.max(report.attempts_used());
                let key = match (&report.outcome, report.status()) {
                    (_, Some(status)) => format!("{status}"),
                    (Err(e), None) => format!("error: {e}"),
                    (Ok(_), None) => unreachable!("Ok outcome always has a status"),
                };
                *by_outcome.entry(key).or_default() += 1;
                if label.starts_with("deadline/") {
                    assert_eq!(
                        report.status(),
                        Some(Status::TimeLimitReached),
                        "{label}: deadline jobs must time out, got {:?}",
                        report.outcome
                    );
                }
                if label.starts_with("cancel/") {
                    assert_eq!(
                        report.status(),
                        Some(Status::Cancelled),
                        "{label}: cancelled jobs must report Cancelled, got {:?}",
                        report.outcome
                    );
                }
            }
        }
    }
    assert!(hung.is_empty(), "hung jobs (no report within {REPORT_TIMEOUT:?}): {hung:?}");

    // --- criterion 3: every worker is still alive and serving ---------
    let clean: Vec<_> = (0..WORKERS)
        .map(|i| {
            let spec = JobSpec::new(generate(Domain::Control, 2, 400 + i as u64))
                .with_settings(chaos_settings());
            submit_with_backoff(&service, spec, &mut rejections)
        })
        .collect();
    for handle in clean {
        let report = handle.wait_timeout(REPORT_TIMEOUT).expect("post-storm job must report");
        assert_eq!(
            report.status(),
            Some(Status::Solved),
            "post-storm clean job must solve: {:?}",
            report.outcome
        );
    }
    // --- criterion 4: the telemetry ledger balances -------------------
    // Every accepted job has reported, so the lifecycle counters must
    // account for every job exactly once.
    let snap = service.metrics_snapshot();
    let accepted = (fleet + WORKERS) as u64;
    assert_eq!(snap.counter("jobs_submitted"), accepted, "one submit counted per accepted job");
    assert_eq!(snap.counter("jobs_rejected"), rejections as u64);
    assert_eq!(
        snap.counter("jobs_submitted"),
        snap.counter("jobs_completed")
            + snap.counter("jobs_failed")
            + snap.counter("jobs_cancelled"),
        "submitted = completed + failed + cancelled must hold once all jobs reported"
    );
    assert_eq!(snap.counter("jobs_cancelled"), CANCEL_JOBS, "only the cancel/ jobs are cancelled");
    assert_eq!(snap.gauge("queue_depth"), 0, "nothing left queued");
    assert_eq!(snap.gauge("jobs_in_flight"), 0, "nothing left running");
    assert_eq!(snap.histograms["exec_time_us"].count(), accepted);
    assert_eq!(snap.histograms["queue_wait_us"].count(), accepted);
    service.shutdown();

    println!("chaos_smoke: seed={master} fleet={fleet} workers={WORKERS} queue={QUEUE_CAPACITY}");
    println!("  queue-full rejections retried: {rejections}");
    println!("  max retry attempts on one job: {max_attempts}");
    for (outcome, count) in &by_outcome {
        println!("  {count:>3} × {outcome}");
    }
    println!(
        "  metrics: submitted={} completed={} failed={} cancelled={} rejected={} retries={} panics={}",
        snap.counter("jobs_submitted"),
        snap.counter("jobs_completed"),
        snap.counter("jobs_failed"),
        snap.counter("jobs_cancelled"),
        snap.counter("jobs_rejected"),
        snap.counter("retries"),
        snap.counter("panics"),
    );
    for name in ["queue_wait_us", "exec_time_us"] {
        let h = &snap.histograms[name];
        println!("  {name}: count={} mean={:.0}us max<={}us", h.count(), h.mean(), h.max_bound());
    }
    println!(
        "  all {fleet} jobs reported, all {WORKERS} workers alive — ok in {:.1?}",
        t0.elapsed()
    );
}
