//! Shared measurement runner for the figure/table harnesses.
//!
//! Every evaluation figure of the paper compares, per benchmark problem,
//! some subset of:
//!
//! * the **CPU** solve (measured wall-clock of our Rust OSQP, PCG backend —
//!   the stand-in for OSQP+MKL, see `DESIGN.md`),
//! * the **GPU** solve (analytic cuOSQP model fed with the observed
//!   iteration counts),
//! * the **FPGA baseline** solve (simulated machine, uncustomized
//!   architecture),
//! * the **FPGA customized** solve (simulated machine, architecture from
//!   the §4 pipeline).
//!
//! [`measure_problem`] produces all four plus the η scores; the binaries
//! format different projections of the same record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use rsqp_arch::ArchConfig;
use rsqp_core::perf::fpga::FpgaPerfModel;
use rsqp_core::perf::gpu::GpuPerfModel;
use rsqp_core::{customize, CustomizationResult, FpgaPcgBackend};
use rsqp_problems::BenchmarkProblem;
use rsqp_solver::{CgTolerance, LinSysKind, QpProblem, Settings, SolveResult, Solver};

/// All measurements for one benchmark problem.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Domain name (paper legend label).
    pub domain: &'static str,
    /// Problem name.
    pub name: String,
    /// `nnz(P) + nnz(A)` (the x-axis of every figure).
    pub nnz: usize,
    /// Decision variables.
    pub n: usize,
    /// Constraints.
    pub m: usize,
    /// Measured CPU solve time (PCG backend).
    pub cpu_time: Duration,
    /// Fraction of CPU solve time inside the KKT solve (Figure 8).
    pub cpu_kkt_fraction: f64,
    /// ADMM iterations of the CPU solve.
    pub admm_iters: usize,
    /// Total inner CG iterations of the CPU solve.
    pub cg_iters: usize,
    /// Modeled GPU solve time.
    pub gpu_time: Duration,
    /// Modeled GPU power (W).
    pub gpu_power_w: f64,
    /// Simulated FPGA time, baseline architecture.
    pub fpga_base_time: Duration,
    /// Simulated FPGA time, customized architecture.
    pub fpga_custom_time: Duration,
    /// Customization report (η, resources, structure set).
    pub customization: CustomizationResult,
}

impl Measurement {
    /// Customization speedup (Figure 10): baseline / customized FPGA time.
    pub fn customization_speedup(&self) -> f64 {
        self.fpga_base_time.as_secs_f64() / self.fpga_custom_time.as_secs_f64()
    }

    /// Speedup of platform time `t` over the CPU baseline (Figure 11).
    pub fn speedup_over_cpu(&self, t: Duration) -> f64 {
        self.cpu_time.as_secs_f64() / t.as_secs_f64()
    }
}

/// Harness-wide options parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Benchmark sizes per domain (paper: 20; harness default lower so the
    /// simulated runs finish quickly — pass `--points 20` for the full
    /// sweep).
    pub points: usize,
    /// Datapath width `C` for the FPGA designs.
    pub c: usize,
    /// Structure budget `|S|_target`.
    pub s_target: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions { points: 6, c: 32, s_target: 4, seed: 42 }
    }
}

impl HarnessOptions {
    /// Parses `--points N`, `--c N`, `--starget N`, `--seed N` from argv.
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--points" => opts.points = args[i + 1].parse().expect("--points takes an integer"),
                "--c" => opts.c = args[i + 1].parse().expect("--c takes an integer"),
                "--starget" => {
                    opts.s_target = args[i + 1].parse().expect("--starget takes an integer")
                }
                "--seed" => opts.seed = args[i + 1].parse().expect("--seed takes an integer"),
                other => panic!("unknown option {other}"),
            }
            i += 2;
        }
        opts
    }
}

fn solver_settings() -> Settings {
    Settings { eps_abs: 1e-3, eps_rel: 1e-3, max_iter: 4000, ..Default::default() }
}

/// Runs the CPU (measured) solve with the PCG backend.
pub fn solve_cpu(problem: &QpProblem) -> SolveResult {
    let mut solver =
        Solver::new(problem, Settings { linsys: LinSysKind::CpuPcg, ..solver_settings() })
            .expect("benchmark problems are valid");
    solver.solve().expect("CPU PCG backend does not fail")
}

/// Runs a simulated-FPGA solve under `config`, returning the solver result
/// and the modeled end-to-end time.
pub fn solve_fpga(problem: &QpProblem, config: &ArchConfig) -> (SolveResult, Duration) {
    let cfg = config.clone();
    let mut handle = None;
    let mut outer = 0u64;
    let mut solver =
        Solver::with_backend(problem, solver_settings(), &mut |p, a, sigma, rho, s| {
            let eps = match s.cg_tolerance {
                CgTolerance::Fixed(e) => e,
                CgTolerance::Adaptive { start, .. } => start,
            };
            let (b, h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
            outer = b.outer_cycles_per_iteration();
            handle = Some(h);
            Ok(Box::new(b))
        })
        .expect("benchmark problems are valid");
    let result = solver.solve().expect("FPGA backend does not fail");
    let stats = handle.expect("factory ran").borrow().stats();
    let model = FpgaPerfModel::from_config(config);
    let time = model.solve_time(
        stats,
        result.iterations,
        outer,
        problem.num_vars(),
        problem.num_constraints(),
    );
    (result, time)
}

/// Produces the full [`Measurement`] for one benchmark problem.
pub fn measure_problem(bp: &BenchmarkProblem, opts: &HarnessOptions) -> Measurement {
    let problem = &bp.problem;
    let cpu = solve_cpu(problem);
    let gpu_model = GpuPerfModel::rtx3070();
    let gpu_time = gpu_model.solve_time(
        cpu.iterations,
        cpu.backend.cg_iterations,
        problem.num_vars(),
        problem.num_constraints(),
        problem.total_nnz(),
    );

    let customization = customize(problem, opts.c, opts.s_target);
    let (_, fpga_custom_time) = solve_fpga(problem, &customization.config);
    let (_, fpga_base_time) = solve_fpga(problem, &customization.baseline);

    Measurement {
        domain: bp.domain.name(),
        name: problem.name().to_string(),
        nnz: problem.total_nnz(),
        n: problem.num_vars(),
        m: problem.num_constraints(),
        cpu_time: cpu.timings.solve,
        cpu_kkt_fraction: cpu.timings.kkt_fraction(),
        admm_iters: cpu.iterations,
        cg_iters: cpu.backend.cg_iterations,
        gpu_time,
        gpu_power_w: gpu_model.power_w(problem.total_nnz()),
        fpga_base_time,
        fpga_custom_time,
        customization,
    }
}

/// Figure/table builders.
pub mod figures;

/// Ensures the `results/` output directory exists and returns the path of
/// `results/<name>`.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("can create results directory");
    dir.join(name)
}
