//! Benchmarks of the customization pipeline itself: string encoding, LZW
//! structure search, greedy vs DP scheduling (the ablation), and First-Fit
//! CVB compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsqp_cvb::{first_fit, AccessMatrix};
use rsqp_encode::{dp_schedule, greedy_schedule, search_structures, SparsityString};
use rsqp_problems::{generate, Domain};

fn bench_encode_and_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure_search");
    group.sample_size(10);
    for size in [6usize, 16] {
        let qp = generate(Domain::Svm, size, 1);
        let a = qp.a();
        group.bench_with_input(BenchmarkId::new("encode", a.nnz()), a, |b, a| {
            b.iter(|| SparsityString::encode(a, 32));
        });
        let s = SparsityString::encode(a, 32);
        group.bench_with_input(BenchmarkId::new("lzw_search", a.nnz()), &s, |b, s| {
            b.iter(|| search_structures(s, 4));
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_greedy_vs_dp");
    group.sample_size(10);
    let qp = generate(Domain::Lasso, 12, 1);
    let a = qp.a();
    let s = SparsityString::encode(a, 32);
    let set = search_structures(&s, 4);
    group.bench_function("greedy", |b| b.iter(|| greedy_schedule(&s, &set)));
    group.bench_function("dp_optimal", |b| b.iter(|| dp_schedule(&s, &set)));
    group.finish();
}

fn bench_first_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("cvb_first_fit");
    group.sample_size(10);
    let qp = generate(Domain::Portfolio, 2, 1);
    let a = qp.a();
    let s = SparsityString::encode(a, 32);
    let set = search_structures(&s, 4);
    let sched = greedy_schedule(&s, &set);
    let v = AccessMatrix::from_schedule(&sched, &s, a, &set);
    group.bench_function("first_fit", |b| b.iter(|| first_fit(&v)));
    group.finish();
}

criterion_group!(benches, bench_encode_and_search, bench_schedulers, bench_first_fit);
criterion_main!(benches);
