//! Micro-benchmarks of the computational kernels: CSR SpMV, LDLT
//! factor/solve, PCG, and the simulated SpMV engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsqp_arch::{ArchConfig, Instr, Machine, ProgramBuilder};
use rsqp_linsys::{pcg, KktMatrix, Ldlt, PcgSettings, ReducedKktOp};
use rsqp_problems::{generate, Domain};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    for size in [4usize, 12] {
        let qp = generate(Domain::Svm, size, 1);
        let a = qp.a();
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        group.bench_with_input(BenchmarkId::new("csr", a.nnz()), &a, |b, a| {
            b.iter(|| a.spmv(&x, &mut y).unwrap());
        });
    }
    group.finish();
}

fn bench_ldlt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldlt");
    group.sample_size(20);
    for size in [8usize, 20] {
        let qp = generate(Domain::Control, size, 1);
        let rho = vec![0.1; qp.num_constraints()];
        let kkt = KktMatrix::assemble(qp.p(), qp.a(), 1e-6, &rho).unwrap();
        group.bench_with_input(BenchmarkId::new("factor", qp.total_nnz()), &kkt, |b, kkt| {
            b.iter(|| Ldlt::factor(kkt.matrix()).unwrap());
        });
        let f = Ldlt::factor(kkt.matrix()).unwrap();
        let rhs = vec![1.0; qp.num_vars() + qp.num_constraints()];
        group.bench_with_input(BenchmarkId::new("solve", qp.total_nnz()), &f, |b, f| {
            b.iter(|| f.solve(&rhs));
        });
    }
    group.finish();
}

fn bench_pcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcg");
    group.sample_size(20);
    for size in [8usize, 20] {
        let qp = generate(Domain::Control, size, 1);
        let rho = vec![0.1; qp.num_constraints()];
        let rhs = vec![1.0; qp.num_vars()];
        let x0 = vec![0.0; qp.num_vars()];
        group.bench_function(BenchmarkId::new("reduced_kkt", qp.total_nnz()), |b| {
            b.iter(|| {
                let mut op = ReducedKktOp::new(qp.p(), qp.a(), 1e-6, &rho).unwrap();
                pcg(&mut op, &rhs, &x0, &PcgSettings { eps: 1e-8, ..Default::default() }).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_machine_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_spmv");
    group.sample_size(20);
    let qp = generate(Domain::Svm, 8, 1);
    let a = qp.a();
    let mut machine = Machine::new(ArchConfig::baseline(32));
    let mat = machine.add_matrix(a);
    let x = machine.alloc_vec(a.ncols());
    let y = machine.alloc_vec(a.nrows());
    machine.write_vec(x, &vec![1.0; a.ncols()]);
    let mut pb = ProgramBuilder::new();
    pb.push(Instr::Duplicate { vec: x, matrix: mat });
    pb.push(Instr::Spmv { matrix: mat, input: x, output: y });
    let program = pb.build().unwrap();
    group.bench_function("duplicate_plus_spmv", |b| {
        b.iter(|| {
            machine.write_vec(x, &vec![1.0; a.ncols()]);
            machine.run(&program).unwrap()
        });
    });
    group.finish();
}

fn bench_parallel_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_parallel");
    group.sample_size(20);
    let qp = generate(Domain::Lasso, 20, 1);
    let a = qp.a();
    let x = vec![1.0; a.ncols()];
    let mut y = vec![0.0; a.nrows()];
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| a.spmv_parallel(&x, &mut y, t).unwrap());
        });
    }
    group.finish();
}

fn bench_orderings(c: &mut Criterion) {
    use rsqp_linsys::{min_degree_ordering, rcm_ordering, SymmetricPermutation};
    let mut group = c.benchmark_group("kkt_ordering");
    group.sample_size(10);
    let qp = generate(Domain::Control, 12, 1);
    let rho = vec![0.1; qp.num_constraints()];
    let kkt = KktMatrix::assemble(qp.p(), qp.a(), 1e-6, &rho).unwrap();
    group.bench_function("min_degree", |b| b.iter(|| min_degree_ordering(kkt.matrix())));
    group.bench_function("rcm", |b| b.iter(|| rcm_ordering(kkt.matrix())));
    let perm = min_degree_ordering(kkt.matrix()).unwrap();
    group.bench_function("apply_permutation", |b| {
        b.iter(|| SymmetricPermutation::new(kkt.matrix(), perm.clone()))
    });
    group.finish();
}

fn bench_rom(c: &mut Criterion) {
    use rsqp_arch::kernels::build_pcg;
    use rsqp_arch::rom;
    let mut group = c.benchmark_group("instruction_rom");
    group.sample_size(20);
    let qp = generate(Domain::Svm, 6, 1);
    let at = qp.a().transpose();
    let mut machine = Machine::new(ArchConfig::baseline(16));
    let p = machine.add_matrix(qp.p());
    let a = machine.add_matrix(qp.a());
    let atid = machine.add_matrix(&at);
    let kernel = build_pcg(&mut machine, p, a, atid, qp.num_vars(), qp.num_constraints(), 100);
    group.bench_function("encode", |b| b.iter(|| rom::encode_program(&kernel.program)));
    let image = rom::encode_program(&kernel.program);
    group.bench_function("decode", |b| b.iter(|| rom::decode_program(&image, 100).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_ldlt,
    bench_pcg,
    bench_machine_spmv,
    bench_parallel_spmv,
    bench_orderings,
    bench_rom
);
criterion_main!(benches);
