//! End-to-end solver benchmarks: one small problem per domain on the three
//! backends (direct LDLT, CPU PCG, simulated FPGA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsqp_bench::solve_fpga;
use rsqp_core::customize;
use rsqp_problems::{generate, Domain};
use rsqp_solver::{LinSysKind, Settings, Solver};

fn settings(kind: LinSysKind) -> Settings {
    Settings { linsys: kind, eps_abs: 1e-3, eps_rel: 1e-3, ..Default::default() }
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_end_to_end");
    group.sample_size(10);
    for (domain, size) in [(Domain::Control, 4), (Domain::Svm, 4), (Domain::Lasso, 5)] {
        let qp = generate(domain, size, 1);
        let nnz = qp.total_nnz();
        group.bench_function(BenchmarkId::new("ldlt", format!("{domain}_{nnz}")), |b| {
            b.iter(|| {
                let mut s = Solver::new(&qp, settings(LinSysKind::DirectLdlt)).unwrap();
                s.solve().unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("cpu_pcg", format!("{domain}_{nnz}")), |b| {
            b.iter(|| {
                let mut s = Solver::new(&qp, settings(LinSysKind::CpuPcg)).unwrap();
                s.solve().unwrap()
            });
        });
        let custom = customize(&qp, 16, 4);
        group.bench_function(BenchmarkId::new("fpga_sim", format!("{domain}_{nnz}")), |b| {
            b.iter(|| solve_fpga(&qp, &custom.config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
