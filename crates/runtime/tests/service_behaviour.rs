//! End-to-end behaviour of the solve service: backpressure, budgets,
//! cancellation, panic isolation, and the retry ladder.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use rsqp_runtime::{
    ChaosPlan, JobBudget, JobError, JobSpec, RetryPolicy, ServiceConfig, SolveService, SubmitError,
};
use rsqp_solver::{CpuPcgBackend, DirectLdltBackend, LinSysKind, QpProblem, Settings, Status};
use rsqp_sparse::CsrMatrix;

/// Silences the default "thread panicked" spew for *injected* panics, which
/// are expected by design in these tests; everything else still prints.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.contains("chaos:")) {
                eprintln!("{info}");
            }
        }));
    });
}

fn box_qp(n: usize) -> QpProblem {
    QpProblem::new(
        CsrMatrix::identity(n),
        vec![-1.0; n],
        CsrMatrix::identity(n),
        vec![0.0; n],
        vec![10.0; n],
    )
    .expect("valid problem")
}

/// A problem whose residuals never reach exactly zero (a box QP's do, which
/// would beat even the absurd tolerances of [`endless_settings`]).
fn endless_problem() -> QpProblem {
    rsqp_problems::generate(rsqp_problems::Domain::Control, 4, 1)
}

/// Settings under which ADMM never reaches the tolerances (used to hold a
/// job in-flight until a budget or cancellation stops it).
fn endless_settings() -> Settings {
    Settings {
        eps_abs: 1e-300,
        eps_rel: 1e-300,
        max_iter: usize::MAX / 2,
        check_termination: 1,
        adaptive_rho: false,
        ..Default::default()
    }
}

#[test]
fn a_batch_of_jobs_all_solve() {
    let service =
        SolveService::new(ServiceConfig { workers: 4, queue_capacity: 32, ..Default::default() });
    let handles: Vec<_> = (0..16)
        .map(|i| service.submit(JobSpec::new(box_qp(2 + i % 5))).expect("queue has room"))
        .collect();
    for handle in handles {
        let report = handle.wait();
        assert_eq!(report.status(), Some(Status::Solved), "{:?}", report.outcome);
        assert_eq!(report.attempts_used(), 1);
    }
}

#[test]
fn queue_full_is_explicit_backpressure() {
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 1, ..Default::default() });
    // Gate the single worker inside a backend factory so the queue state is
    // deterministic: one job running (blocked), one queued, the next must
    // be rejected.
    let gate = Arc::new(AtomicBool::new(false));
    let gate_in_factory = Arc::clone(&gate);
    let blocker =
        JobSpec::new(box_qp(2)).with_backend_factory(Box::new(move |p, a, sigma, rho, _s| {
            while !gate_in_factory.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(Box::new(DirectLdltBackend::new(p, a, sigma, rho)?))
        }));
    let running = service.submit(blocker).expect("first job accepted");
    // Give the worker time to dequeue the blocker; then one job fits in the
    // queue and the next one must bounce.
    std::thread::sleep(Duration::from_millis(50));
    let queued = service.submit(JobSpec::new(box_qp(2))).expect("second job queued");
    let rejected = service.submit(JobSpec::new(box_qp(3)));
    let Err(SubmitError::QueueFull { spec, capacity }) = rejected else {
        panic!("expected QueueFull, got {:?}", rejected.map(|h| h.id()));
    };
    assert_eq!(capacity, 1);
    assert_eq!(spec.problem.num_vars(), 3, "the rejected spec comes back intact");

    gate.store(true, Ordering::Release);
    assert_eq!(running.wait().status(), Some(Status::Solved));
    assert_eq!(queued.wait().status(), Some(Status::Solved));
    // With the worker idle again the recovered spec can be resubmitted.
    let retried = service.submit(spec).expect("capacity freed");
    assert_eq!(retried.wait().status(), Some(Status::Solved));
}

#[test]
fn cancellation_mid_solve_returns_promptly_with_definite_status() {
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 4, ..Default::default() });
    let spec = JobSpec::new(endless_problem()).with_settings(endless_settings());
    let handle = service.submit(spec).expect("queue has room");
    std::thread::sleep(Duration::from_millis(40));
    let t = Instant::now();
    handle.cancel();
    let report = handle.wait_timeout(Duration::from_secs(20)).expect("job not hung");
    assert!(t.elapsed() < Duration::from_secs(10), "cancellation must land promptly");
    assert_eq!(report.status(), Some(Status::Cancelled));
    let result = report.outcome.expect("cancellation is a status, not an error");
    assert!(result.x.iter().all(|v| v.is_finite()), "iterates stay well-defined");
}

#[test]
fn deadline_budget_yields_time_limit_status() {
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 4, ..Default::default() });
    let spec = JobSpec::new(endless_problem())
        .with_settings(endless_settings())
        .with_budget(JobBudget::unbounded().with_timeout(Duration::from_millis(30)));
    let handle = service.submit(spec).expect("queue has room");
    let report = handle.wait_timeout(Duration::from_secs(20)).expect("job not hung");
    assert_eq!(report.status(), Some(Status::TimeLimitReached));
}

#[test]
fn iteration_cap_budget_is_enforced() {
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 4, ..Default::default() });
    let spec = JobSpec::new(endless_problem())
        .with_settings(endless_settings())
        .with_budget(JobBudget::unbounded().with_iter_cap(7))
        .with_retry(RetryPolicy::no_retries());
    let report = service.submit(spec).expect("queue has room").wait();
    let result = report.outcome.expect("definite result");
    assert_eq!(result.status, Status::MaxIterationsReached);
    assert_eq!(result.iterations, 7);
}

#[test]
fn panicking_backend_is_isolated_and_ladder_recovers() {
    quiet_injected_panics();
    let service =
        SolveService::new(ServiceConfig { workers: 2, queue_capacity: 8, ..Default::default() });
    // Every chaos-wrapped KKT solve panics; the ladder's direct-fallback
    // rung (retry 2) drops the factory and the job still solves.
    let spec = JobSpec::new(box_qp(4)).with_backend_factory(Box::new(|p, a, sigma, rho, s| {
        let inner = Box::new(CpuPcgBackend::new(p, a, sigma, rho, 1e-7, s.cg_max_iter));
        Ok(ChaosPlan::new(11).with_panics(1.0).wrap(inner))
    }));
    let report = service.submit(spec).expect("queue has room").wait();
    assert_eq!(report.status(), Some(Status::Solved), "{:?}", report.outcome);
    assert_eq!(report.attempts_used(), 3, "panic, panic (tightened), then direct fallback");
    assert!(report.attempts[0].error.as_deref().is_some_and(|e| e.contains("panic")));
    assert!(report.attempts[2].status.is_some_and(Status::is_solved));
}

#[test]
fn exhausted_ladder_reports_panicked_and_worker_survives() {
    quiet_injected_panics();
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 8, ..Default::default() });
    let spec = JobSpec::new(box_qp(4)).with_retry(RetryPolicy::no_retries()).with_backend_factory(
        Box::new(|p, a, sigma, rho, s| {
            let inner = Box::new(CpuPcgBackend::new(p, a, sigma, rho, 1e-7, s.cg_max_iter));
            Ok(ChaosPlan::new(5).with_panics(1.0).wrap(inner))
        }),
    );
    let report = service.submit(spec).expect("queue has room").wait();
    match report.outcome {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("chaos"), "{msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The (only) worker took the panic and must still be serving.
    let clean = service.submit(JobSpec::new(box_qp(3))).expect("worker alive");
    assert_eq!(clean.wait().status(), Some(Status::Solved));
}

#[test]
fn injected_backend_errors_ride_the_guard_and_retry_ladders() {
    let service =
        SolveService::new(ServiceConfig { workers: 2, queue_capacity: 8, ..Default::default() });
    // A high error rate defeats the in-solve guard ladder eventually, but
    // the runtime ladder's direct fallback (which drops the chaos wrapper
    // with the factory) always lands the job.
    let spec = JobSpec::new(box_qp(6)).with_backend_factory(Box::new(|p, a, sigma, rho, s| {
        let inner = Box::new(CpuPcgBackend::new(p, a, sigma, rho, 1e-7, s.cg_max_iter));
        Ok(ChaosPlan::new(9).with_errors(0.9).wrap(inner))
    }));
    let report = service.submit(spec).expect("queue has room").wait();
    assert_eq!(report.status(), Some(Status::Solved), "{:?}", report.outcome);
}

#[test]
fn shutdown_completes_queued_jobs() {
    let service =
        SolveService::new(ServiceConfig { workers: 2, queue_capacity: 16, ..Default::default() });
    let handles: Vec<_> =
        (0..6).map(|_| service.submit(JobSpec::new(box_qp(3))).expect("room")).collect();
    service.shutdown();
    for handle in handles {
        assert_eq!(handle.wait().status(), Some(Status::Solved));
    }
}

#[test]
fn submitting_after_shutdown_is_rejected() {
    let mut service = Some(SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        ..Default::default()
    }));
    service.take().unwrap().shutdown();
    // A fresh service is needed per handle; this checks the drop path too.
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 2, ..Default::default() });
    drop(service); // Drop joins workers without deadlock.
}

#[test]
fn checkpointed_resume_flows_through_the_service() {
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 4, ..Default::default() });
    let problem = box_qp(6);
    let settings = Settings {
        eps_abs: 1e-9,
        eps_rel: 1e-9,
        check_termination: 1,
        adaptive_rho: false,
        linsys: LinSysKind::DirectLdlt,
        ..Default::default()
    };

    // Phase 1: run a few iterations only, then capture the endpoint.
    let phase1 = JobSpec::new(problem.clone())
        .with_settings(settings.clone())
        .with_budget(JobBudget::unbounded().with_iter_cap(5))
        .with_retry(RetryPolicy::no_retries());
    let r1 = service.submit(phase1).expect("room").wait();
    let partial = r1.outcome.expect("definite");
    assert_eq!(partial.status, Status::MaxIterationsReached);

    // Rebuild the checkpoint from the reported iterates (what an external
    // coordinator would persist) and resume to convergence.
    let ckpt = rsqp_solver::Checkpoint {
        x: partial.x.clone(),
        y: partial.y.clone(),
        z: partial.z.clone(),
        rho_bar: 0.1,
        iterations: partial.iterations as u64,
    };
    let phase2 = JobSpec::new(problem).with_settings(settings).with_checkpoint(ckpt);
    let r2 = service.submit(phase2).expect("room").wait();
    let done = r2.outcome.expect("definite");
    assert_eq!(done.status, Status::Solved);
    for (v, want) in done.x.iter().zip([1.0f64; 6]) {
        assert!((v - want).abs() < 1e-6, "{v}");
    }
}

#[test]
fn metrics_snapshot_tracks_the_job_lifecycle() {
    let service =
        SolveService::new(ServiceConfig { workers: 2, queue_capacity: 16, ..Default::default() });
    let handles: Vec<_> = (0..8)
        .map(|i| service.submit(JobSpec::new(box_qp(2 + i % 3))).expect("queue has room"))
        .collect();
    for handle in handles {
        assert_eq!(handle.wait().status(), Some(Status::Solved));
    }
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("jobs_submitted"), 8);
    assert_eq!(snap.counter("jobs_completed"), 8);
    assert_eq!(snap.counter("jobs_failed"), 0);
    assert_eq!(snap.counter("jobs_cancelled"), 0);
    assert_eq!(snap.counter("jobs_rejected"), 0);
    // Every accepted job has reported, so the ledger balances and nothing
    // is queued or in flight.
    assert_eq!(
        snap.counter("jobs_submitted"),
        snap.counter("jobs_completed")
            + snap.counter("jobs_failed")
            + snap.counter("jobs_cancelled")
    );
    assert_eq!(snap.gauge("queue_depth"), 0);
    assert_eq!(snap.gauge("jobs_in_flight"), 0);
    // One latency sample per executed job, on both histograms.
    assert_eq!(snap.histograms["queue_wait_us"].count(), 8);
    assert_eq!(snap.histograms["exec_time_us"].count(), 8);
}

#[test]
fn metrics_classify_cancelled_jobs_separately() {
    let service =
        SolveService::new(ServiceConfig { workers: 1, queue_capacity: 4, ..Default::default() });
    let handle = service
        .submit(JobSpec::new(endless_problem()).with_settings(endless_settings()))
        .expect("queue has room");
    std::thread::sleep(Duration::from_millis(20));
    handle.cancel();
    let report = handle.wait();
    assert_eq!(report.status(), Some(Status::Cancelled));
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("jobs_cancelled"), 1);
    assert_eq!(snap.counter("jobs_completed"), 0);
    assert_eq!(snap.counter("jobs_failed"), 0);
    assert_eq!(snap.counter("jobs_submitted"), 1);
}
