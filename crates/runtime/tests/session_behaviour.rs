//! Behavioural tests for [`SolveSession`]: the 40-step MPC ledger the
//! customization cache exists for (one miss, then hits forever), equivalence
//! of warm session steps against cold solves, budget/cancellation statuses,
//! and recovery from rejected updates.

use std::sync::Arc;
use std::time::Duration;

use rsqp_problems::control;
use rsqp_runtime::{
    CustomizationCache, JobBudget, ServiceConfig, SessionConfig, SolveService, SolveSession,
    StepUpdate,
};
use rsqp_solver::{QpProblem, Settings, Solver, Status};
use rsqp_sparse::CsrMatrix;

fn tight() -> Settings {
    Settings { eps_abs: 1e-8, eps_rel: 1e-8, ..Settings::default() }
}

/// The MPC step: seed `k`'s bounds carry a new initial state (first `nx`
/// rows); dynamics and box rows are unchanged.
fn mpc_bounds(size: usize, seed: u64) -> StepUpdate {
    let target = control::generate(size, seed);
    StepUpdate::Bounds { l: target.l().to_vec(), u: target.u().to_vec() }
}

#[test]
fn forty_step_mpc_sequence_customizes_once() {
    let cache = Arc::new(CustomizationCache::new(4));
    let base = control::generate(3, 1);
    let config =
        SessionConfig::default().with_settings(Settings::default()).with_cache(Arc::clone(&cache));
    let mut session = SolveSession::new(base, config);

    let first = session.step(Vec::new()).unwrap();
    assert!(!first.cache_hit, "the first sight of a pattern must miss");
    assert_eq!(first.result.status, Status::Solved);

    for seed in 2..=40u64 {
        let report = session.step(vec![mpc_bounds(3, seed)]).unwrap();
        assert!(report.cache_hit, "step {seed} re-customized a cached pattern");
        assert_eq!(report.result.status, Status::Solved, "step {seed}");
    }

    assert_eq!(session.steps_taken(), 40);
    let snap = session.metrics().snapshot();
    assert_eq!(snap.counter("session_steps"), 40);
    assert_eq!(snap.counter("cache_misses"), 1, "customization must run exactly once");
    assert_eq!(snap.counter("cache_hits"), 39);
    let hist = snap.histograms.get("session_step_us").expect("latency histogram registered");
    assert_eq!(hist.count(), 40);
    assert!(hist.mean() > 0.0);

    // The cache's own ledger agrees with the session metrics.
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 39);
    assert_eq!(cache.len(), 1);
    assert!(session.cached_artifacts().is_some());
}

#[test]
fn cache_is_shared_across_sessions() {
    let cache = Arc::new(CustomizationCache::new(4));
    let mut first = SolveSession::new(
        control::generate(3, 1),
        SessionConfig::default().with_cache(Arc::clone(&cache)),
    );
    assert!(!first.step(Vec::new()).unwrap().cache_hit);

    // A different numeric instance of the same structure: the second
    // session's very first step hits the shared cache.
    let mut second = SolveSession::new(
        control::generate(3, 99),
        SessionConfig::default().with_cache(Arc::clone(&cache)),
    );
    assert!(second.step(Vec::new()).unwrap().cache_hit);

    // A different structure misses independently.
    let mut third = SolveSession::new(
        control::generate(4, 1),
        SessionConfig::default().with_cache(Arc::clone(&cache)),
    );
    assert!(!third.step(Vec::new()).unwrap().cache_hit);
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 1);
}

#[test]
fn session_steps_match_cold_solves() {
    let base = control::generate(3, 1);
    let cache = Arc::new(CustomizationCache::new(2));
    let config = SessionConfig::default().with_settings(tight()).with_cache(cache);
    let mut session = SolveSession::new(base.clone(), config);
    session.step(Vec::new()).unwrap();

    let mut reference = base;
    for seed in 2..=6u64 {
        let target = control::generate(3, seed);
        let report = session.step(vec![mpc_bounds(3, seed)]).unwrap();

        reference.update_bounds(target.l().to_vec(), target.u().to_vec()).unwrap();
        let mut cold = Solver::new(&reference, tight()).unwrap();
        let cold_result = cold.solve().unwrap();

        assert_eq!(report.result.status, cold_result.status, "seed {seed}");
        assert_eq!(report.result.status, Status::Solved);
        let tol = 1e-6 * (1.0 + cold_result.objective.abs());
        assert!(
            (report.result.objective - cold_result.objective).abs() <= tol,
            "seed {seed}: session objective {} vs cold {}",
            report.result.objective,
            cold_result.objective
        );
        assert!(
            report.result.iterations <= cold_result.iterations,
            "seed {seed}: warm session step took {} iterations vs {} cold",
            report.result.iterations,
            cold_result.iterations
        );
    }
}

#[test]
fn all_update_kinds_flow_through_a_session() {
    let base = control::generate(3, 5);
    let target = control::generate(3, 6);
    let n = base.num_vars();
    let mut session =
        SolveSession::new(base.clone(), SessionConfig::default().with_settings(tight()));
    session.step(Vec::new()).unwrap();

    let new_q: Vec<f64> = (0..n).map(|i| 0.05 * ((i as f64) * 0.61).cos()).collect();
    let report = session
        .step(vec![
            StepUpdate::LinearCost(new_q.clone()),
            StepUpdate::Bounds { l: target.l().to_vec(), u: target.u().to_vec() },
            StepUpdate::Matrices { p: Some(target.p().clone()), a: Some(target.a().clone()) },
            StepUpdate::Rho(0.5),
        ])
        .unwrap();
    assert_eq!(report.result.status, Status::Solved);

    // Cold reference with the same batch applied to a fresh problem.
    let mut reference = base;
    reference.update_q(new_q).unwrap();
    reference.update_bounds(target.l().to_vec(), target.u().to_vec()).unwrap();
    reference.update_matrices(Some(target.p().clone()), Some(target.a().clone())).unwrap();
    let mut cold = Solver::new(&reference, Settings { rho: 0.5, ..tight() }).unwrap();
    let cold_result = cold.solve().unwrap();
    assert_eq!(cold_result.status, Status::Solved);
    let tol = 1e-6 * (1.0 + cold_result.objective.abs());
    assert!((report.result.objective - cold_result.objective).abs() <= tol);
}

#[test]
fn pre_first_step_updates_mutate_the_problem() {
    let base = control::generate(3, 1);
    let target = control::generate(3, 2);
    let mut session =
        SolveSession::new(base.clone(), SessionConfig::default().with_settings(tight()));
    // Updates queued before the solver exists are applied to the problem
    // itself; the first step then solves the updated instance.
    let report = session.step(vec![mpc_bounds(3, 2)]).unwrap();

    let mut reference = base;
    reference.update_bounds(target.l().to_vec(), target.u().to_vec()).unwrap();
    let mut cold = Solver::new(&reference, tight()).unwrap();
    let cold_result = cold.solve().unwrap();
    assert_eq!(report.result.status, Status::Solved);
    let tol = 1e-6 * (1.0 + cold_result.objective.abs());
    assert!((report.result.objective - cold_result.objective).abs() <= tol);
}

#[test]
fn budget_iter_cap_yields_definite_status() {
    let config = SessionConfig::default()
        .with_settings(tight())
        .with_budget(JobBudget::unbounded().with_iter_cap(3));
    let mut session = SolveSession::new(control::generate(3, 1), config);
    let report = session.step(Vec::new()).unwrap();
    assert_eq!(report.result.status, Status::MaxIterationsReached);
    assert!(report.result.iterations <= 3);
    // The capped step still counts: budgets end steps, they don't void them.
    assert_eq!(session.steps_taken(), 1);
}

#[test]
fn expired_deadline_yields_time_limit_status() {
    let config =
        SessionConfig::default().with_budget(JobBudget::unbounded().with_timeout(Duration::ZERO));
    let mut session = SolveSession::new(control::generate(3, 1), config);
    let report = session.step(Vec::new()).unwrap();
    assert_eq!(report.result.status, Status::TimeLimitReached);
}

#[test]
fn cancellation_yields_cancelled_status() {
    let mut session = SolveSession::new(control::generate(3, 1), SessionConfig::default());
    session.cancel_token().cancel();
    let report = session.step(Vec::new()).unwrap();
    assert_eq!(report.result.status, Status::Cancelled);
}

#[test]
fn structure_change_is_rejected_and_session_survives() {
    let base = control::generate(3, 1);
    let (m, n) = (base.num_constraints(), base.num_vars());
    let mut session = SolveSession::new(base, SessionConfig::default().with_settings(tight()));
    session.step(Vec::new()).unwrap();

    // Same shape, different sparsity pattern: a dense first column.
    let mut dense = vec![vec![0.0; n]; m];
    for row in dense.iter_mut() {
        row[0] = 1.0;
    }
    let bad = CsrMatrix::from_dense(&dense);
    let err = session.step(vec![StepUpdate::Matrices { p: None, a: Some(bad) }]);
    assert!(err.is_err(), "a structure change must be rejected");
    assert_eq!(session.steps_taken(), 1, "a rejected update must not consume a step");

    // The session remains usable afterwards.
    let report = session.step(vec![mpc_bounds(3, 2)]).unwrap();
    assert_eq!(report.result.status, Status::Solved);
    assert_eq!(session.steps_taken(), 2);
}

#[test]
fn service_sessions_share_the_service_registry() {
    let service = SolveService::new(ServiceConfig { workers: 1, ..Default::default() });
    let cache = Arc::new(CustomizationCache::new(2));
    let mut session =
        service.open_session(control::generate(3, 1), SessionConfig::default().with_cache(cache));
    session.step(Vec::new()).unwrap();
    session.step(vec![mpc_bounds(3, 2)]).unwrap();
    drop(session);

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("session_steps"), 2);
    assert_eq!(snap.counter("cache_misses"), 1);
    assert_eq!(snap.counter("cache_hits"), 1);
}

#[test]
fn cold_step_sessions_disable_warm_starting() {
    // A cold-stepping session is the baseline the bench compares against:
    // it must take as many iterations on step 2 as a fresh solver would.
    let base = control::generate(3, 1);
    let mut cold_session = SolveSession::new(
        base.clone(),
        SessionConfig::default().with_settings(tight()).with_cold_steps(),
    );
    cold_session.step(Vec::new()).unwrap();
    let cold_step = cold_session.step(vec![mpc_bounds(3, 2)]).unwrap();

    let mut reference: QpProblem = base;
    let target = control::generate(3, 2);
    reference.update_bounds(target.l().to_vec(), target.u().to_vec()).unwrap();
    let mut fresh = Solver::new(&reference, tight()).unwrap();
    let fresh_result = fresh.solve().unwrap();
    assert_eq!(cold_step.result.iterations, fresh_result.iterations);
}
