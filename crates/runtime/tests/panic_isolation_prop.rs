//! Property: no fault schedule — whatever the seed, panic rate, and error
//! rate — can kill a worker or leave a job without a definite outcome.

use std::sync::Once;
use std::time::Duration;

use proptest::prelude::*;
use rsqp_runtime::{ChaosPlan, JobSpec, ServiceConfig, SolveService};
use rsqp_solver::{CpuPcgBackend, QpProblem, Status};
use rsqp_sparse::CsrMatrix;

fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.contains("chaos:")) {
                eprintln!("{info}");
            }
        }));
    });
}

fn box_qp(n: usize) -> QpProblem {
    QpProblem::new(
        CsrMatrix::identity(n),
        vec![-1.0; n],
        CsrMatrix::identity(n),
        vec![0.0; n],
        vec![10.0; n],
    )
    .expect("valid problem")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn panicking_backends_never_take_down_the_pool(
        seed in 0u64..1_000_000,
        panic_prob in 0.2f64..=1.0,
        error_prob in 0.0f64..=1.0,
    ) {
        quiet_injected_panics();
        let service = SolveService::new(ServiceConfig { workers: 2, queue_capacity: 16, ..Default::default() });
        let plan = ChaosPlan::new(seed).with_panics(panic_prob).with_errors(error_prob);

        let handles: Vec<_> = (0..6)
            .map(|job| {
                let job_plan = plan.derive(job);
                let spec = JobSpec::new(box_qp(3 + job as usize % 3)).with_backend_factory(
                    Box::new(move |p, a, sigma, rho, s| {
                        let inner =
                            Box::new(CpuPcgBackend::new(p, a, sigma, rho, 1e-7, s.cg_max_iter));
                        Ok(job_plan.wrap(inner))
                    }),
                );
                service.submit(spec).expect("queue has room")
            })
            .collect();

        // Every job must report — a missing report within the generous
        // timeout means a hung or dead worker.
        for handle in handles {
            let report = handle
                .wait_timeout(Duration::from_secs(60))
                .expect("job must produce a report: no hung jobs, no dead workers");
            // The outcome type itself is the "definite status" guarantee:
            // either a SolveResult with a terminal status or a typed error.
            if let Ok(result) = &report.outcome {
                prop_assert!(result.x.iter().all(|v| v.is_finite() || result.status != Status::Solved));
            }
        }

        // Both workers must still be alive and serving.
        for _ in 0..2 {
            let clean = service.submit(JobSpec::new(box_qp(2))).expect("pool alive");
            let report = clean.wait_timeout(Duration::from_secs(60)).expect("pool alive");
            prop_assert_eq!(report.status(), Some(Status::Solved));
        }
    }
}
