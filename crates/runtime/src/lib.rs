//! Resilient concurrent solve runtime for RSQP.
//!
//! The paper's deployment story (§7 discussion) is a solver appliance:
//! many QP instances stream through a fixed, problem-structure-customized
//! accelerator. That only works in production if the *runtime* around the
//! solver is robust — one diverging, hanging, or crashing solve must not
//! take the service down or starve its neighbours. This crate provides
//! that runtime for the Rust reproduction:
//!
//! * [`SolveService`] — a fixed worker pool behind a **bounded** job queue;
//!   saturation surfaces as [`SubmitError::QueueFull`] backpressure rather
//!   than unbounded buffering.
//! * [`JobBudget`] — per-job wall-clock deadline (counted from submission)
//!   and iteration cap, enforced *cooperatively* at ADMM iteration
//!   boundaries via [`rsqp_solver::SolveControl`]; a budgeted job always
//!   ends with a definite [`rsqp_solver::Status`].
//! * **Panic isolation** — a panicking backend is caught per job
//!   ([`JobError::Panicked`]); the worker survives and takes the next job.
//! * [`RetryPolicy`] — a bounded retry ladder that degrades settings per
//!   attempt (tighter CG tolerance → direct LDLᵀ fallback → reduced
//!   iteration cap) and resumes each retry from the last finite
//!   [`rsqp_solver::Checkpoint`] so completed work is kept.
//! * [`ChaosPlan`] — deterministic fault injection (delays, recoverable
//!   errors, panics) at the backend boundary, composing with the
//!   cycle-level bit-flip faults of `rsqp-arch` for end-to-end chaos runs
//!   (`cargo run -p rsqp-bench --bin chaos_smoke`).
//! * [`SolveSession`] — MPC-style parametric re-solves: one persistent,
//!   warm-started solver fed a stream of [`StepUpdate`]s, with a shared
//!   pattern-keyed [`CustomizationCache`] so customization and symbolic
//!   analysis run once per sparsity structure, not once per step.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use rsqp_sparse::CsrMatrix;
//! use rsqp_solver::QpProblem;
//! use rsqp_runtime::{JobBudget, JobSpec, ServiceConfig, SolveService};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = QpProblem::new(
//!     CsrMatrix::identity(2),
//!     vec![-1.0, -1.0],
//!     CsrMatrix::identity(2),
//!     vec![0.0, 0.0],
//!     vec![1.0, 1.0],
//! )?;
//! let service = SolveService::new(ServiceConfig { workers: 2, queue_capacity: 8, ..Default::default() });
//! let job = JobSpec::new(problem)
//!     .with_budget(JobBudget::unbounded().with_timeout(Duration::from_secs(5)));
//! let handle = service.submit(job).expect("queue has room");
//! let report = handle.wait();
//! assert!(report.status().is_some_and(|s| s.is_solved()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod job;
mod retry;
mod service;
mod session;

pub use chaos::ChaosPlan;
pub use job::{AttemptSummary, BackendFactory, JobBudget, JobError, JobHandle, JobReport, JobSpec};
pub use retry::RetryPolicy;
pub use service::{ServiceConfig, SolveService, SubmitError};
pub use session::{SessionConfig, SolveSession, StepReport, StepUpdate};
// Cache types re-exported so sessions can be configured without a direct
// `rsqp-core` dependency.
pub use rsqp_core::{CacheLookup, CacheParams, CustomizationCache, PatternArtifacts};
// Telemetry types re-exported so callers can consume
// `SolveService::metrics_snapshot()` without a direct `rsqp-obs` dependency.
pub use rsqp_obs::{MetricsRegistry, MetricsSnapshot};
