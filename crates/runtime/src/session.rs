//! MPC-style parametric solve sessions.
//!
//! A [`SolveSession`] owns one persistent [`Solver`] and accepts a stream of
//! parametric updates ([`StepUpdate`]), re-solving after each batch. It is
//! the runtime's embodiment of the paper's flagship repeated-solve workload
//! (embedded MPC): the sparsity structure is fixed, only values change, so
//!
//! * the solver — and with it the Ruiz equilibration state, the backend,
//!   and the warm-started iterates — survives across steps;
//! * a shared [`CustomizationCache`] supplies the per-structure artifacts
//!   (architecture customization and the symbolic LDLᵀ ordering) so the
//!   expensive structure-dependent work runs **once per pattern**, not once
//!   per step;
//! * every step composes with the existing runtime machinery: a per-step
//!   [`JobBudget`], cooperative cancellation via the session's
//!   [`CancelToken`], the bounded [`RetryPolicy`] degradation ladder
//!   (resuming from a checkpoint of the pre-failure iterates), and the
//!   [`MetricsRegistry`] (`session_steps`, `cache_hits`, `cache_misses`
//!   counters plus a `session_step_us` latency histogram).
//!
//! Sessions run on the caller's thread — an MPC loop is latency-bound and
//! strictly sequential, so queueing each step behind the worker pool would
//! only add latency. Use [`crate::SolveService::open_session`] to share a
//! service's metrics registry (and host), or [`SolveSession::new`] for a
//! standalone session.

use std::sync::Arc;
use std::time::Instant;

use rsqp_core::{CacheLookup, CustomizationCache, PatternArtifacts};
use rsqp_obs::{Counter, Histogram, MetricsRegistry};
use rsqp_solver::{
    CancelToken, Checkpoint, DirectLdltBackend, KktBackend, LinSysKind, QpProblem, Settings,
    SolveControl, SolveResult, Solver, SolverError, Status,
};
use rsqp_sparse::CsrMatrix;

use crate::job::{AttemptSummary, BackendFactory, JobBudget};
use crate::retry::degrade;
use crate::RetryPolicy;

/// One parametric update applied before a session step's solve.
#[derive(Debug, Clone)]
pub enum StepUpdate {
    /// Replace the constraint bounds `l`/`u` (same length).
    Bounds {
        /// New lower bounds.
        l: Vec<f64>,
        /// New upper bounds.
        u: Vec<f64>,
    },
    /// Replace the linear cost `q`.
    LinearCost(Vec<f64>),
    /// Replace the values of `P` and/or `A` (same sparsity structure; a
    /// structure change is rejected and leaves the session untouched).
    Matrices {
        /// New `P` values, if changed.
        p: Option<CsrMatrix>,
        /// New `A` values, if changed.
        a: Option<CsrMatrix>,
    },
    /// Manually set the base step size ρ̄.
    Rho(f64),
}

/// Per-session configuration.
#[derive(Debug)]
pub struct SessionConfig {
    /// Solver settings for the session's persistent solver.
    pub settings: Settings,
    /// Per-step budget: the wall-clock timeout is measured from the start
    /// of each [`SolveSession::step`] call, the iteration cap applies per
    /// solve attempt.
    pub budget: JobBudget,
    /// Retry ladder for steps that end in a numerical error. Degradations a
    /// step needed are **kept** for subsequent steps — a session that had
    /// to fall back stays on the safe configuration.
    pub retry: RetryPolicy,
    /// Warm-start each step from the previous solution (the default).
    /// `false` cold-starts every step (useful for baselines).
    pub warm_start: bool,
    /// Shared customization cache. `None` disables structure reuse (the
    /// session still keeps its solver warm across steps).
    pub cache: Option<Arc<CustomizationCache>>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            settings: Settings::default(),
            budget: JobBudget::unbounded(),
            retry: RetryPolicy::default(),
            warm_start: true,
            cache: None,
        }
    }
}

impl SessionConfig {
    /// Replaces the solver settings.
    #[must_use]
    pub fn with_settings(mut self, settings: Settings) -> Self {
        self.settings = settings;
        self
    }

    /// Replaces the per-step budget.
    #[must_use]
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Disables warm starting between steps.
    #[must_use]
    pub fn with_cold_steps(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Installs a shared customization cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<CustomizationCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// Outcome of one [`SolveSession::step`].
#[derive(Debug)]
pub struct StepReport {
    /// 1-based step number within the session.
    pub step: u64,
    /// The solve outcome (in the original problem space, warm-started).
    pub result: SolveResult,
    /// Per-attempt history of this step's retry ladder (length ≥ 1).
    pub attempts: Vec<AttemptSummary>,
    /// Whether the customization cache already held this structure's
    /// artifacts (`false` on the first step of a fresh pattern, or when no
    /// cache is configured).
    pub cache_hit: bool,
}

/// Telemetry handles held for the session's lifetime.
struct SessionMetrics {
    steps: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    step_us: Histogram,
}

impl SessionMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        SessionMetrics {
            steps: registry.counter("session_steps"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            step_us: registry.histogram("session_step_us"),
        }
    }
}

/// A handle for a stream of parametric re-solves over one problem
/// structure. See the [module docs](self) for the full story.
pub struct SolveSession {
    problem: Arc<QpProblem>,
    settings: Settings,
    budget: JobBudget,
    retry: RetryPolicy,
    warm_start: bool,
    cache: Option<Arc<CustomizationCache>>,
    factory: Option<BackendFactory>,
    cancel: CancelToken,
    solver: Option<Solver>,
    artifacts: Option<Arc<PatternArtifacts>>,
    registry: MetricsRegistry,
    metrics: SessionMetrics,
    steps: u64,
}

impl std::fmt::Debug for SolveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveSession")
            .field("problem", &self.problem.name())
            .field("steps", &self.steps)
            .field("cached", &self.artifacts.is_some())
            .finish_non_exhaustive()
    }
}

impl SolveSession {
    /// Opens a session with its own private metrics registry. Cheap: the
    /// solver (and any cache miss) is paid on the first [`step`], not here.
    ///
    /// [`step`]: SolveSession::step
    pub fn new(problem: impl Into<Arc<QpProblem>>, config: SessionConfig) -> Self {
        Self::with_metrics(problem, config, MetricsRegistry::new())
    }

    /// Opens a session recording into an existing registry (e.g. a
    /// [`crate::SolveService`]'s, via [`crate::SolveService::open_session`]).
    pub fn with_metrics(
        problem: impl Into<Arc<QpProblem>>,
        config: SessionConfig,
        registry: MetricsRegistry,
    ) -> Self {
        let SessionConfig { settings, budget, retry, warm_start, cache } = config;
        let metrics = SessionMetrics::new(&registry);
        SolveSession {
            problem: problem.into(),
            settings,
            budget,
            retry,
            warm_start,
            cache,
            factory: None,
            cancel: CancelToken::new(),
            solver: None,
            artifacts: None,
            registry,
            metrics,
            steps: 0,
        }
    }

    /// Installs a custom backend factory (e.g. the simulated FPGA built
    /// from cached artifacts). Takes precedence over the cached-ordering
    /// fast path; dropped if the retry ladder reaches its direct-LDLᵀ rung.
    #[must_use]
    pub fn with_backend_factory(mut self, factory: BackendFactory) -> Self {
        self.factory = Some(factory);
        self
    }

    /// The problem as of the latest applied update.
    pub fn problem(&self) -> &QpProblem {
        &self.problem
    }

    /// Completed steps so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// A clone of the session's cancellation token; cancelling it makes the
    /// current (or next) step end with [`Status::Cancelled`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The metrics registry this session records into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The per-structure artifacts resolved on the first step (`None`
    /// before that, or when the session has no cache).
    pub fn cached_artifacts(&self) -> Option<&Arc<PatternArtifacts>> {
        self.artifacts.as_ref()
    }

    /// Applies `updates` in order, then re-solves — warm-started from the
    /// previous step's iterates unless the session was configured with
    /// [`SessionConfig::with_cold_steps`]. The cache is consulted once per
    /// step (hit after the first step of a pattern); the persistent solver
    /// is built on the first step. A failed update (e.g. a structure
    /// change) returns the error without consuming a step and leaves the
    /// session usable.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid update, or when the retry ladder is
    /// exhausted by unrecoverable solver errors. Budget expiry and
    /// cancellation are *statuses* on the returned result, not errors.
    pub fn step(&mut self, updates: Vec<StepUpdate>) -> Result<StepReport, SolverError> {
        let started = Instant::now();
        self.apply_updates(updates)?;

        // Consult the cache every step: the first sight of a pattern pays
        // the customization + symbolic analysis, every later step is a
        // ledger-counted hit. Value updates never change the key.
        let mut cache_hit = false;
        if let Some(cache) = self.cache.clone() {
            let CacheLookup { artifacts, hit } = cache.get_or_customize(&self.problem)?;
            if hit {
                self.metrics.cache_hits.inc();
            } else {
                self.metrics.cache_misses.inc();
            }
            cache_hit = hit;
            self.artifacts = Some(artifacts);
        }

        if self.solver.is_none() {
            self.solver = Some(construct_solver(
                &self.problem,
                &self.settings,
                &mut self.factory,
                self.artifacts.as_deref(),
            )?);
        }

        let mut control = SolveControl::unbounded().with_cancel(self.cancel.clone());
        if let Some(timeout) = self.budget.timeout {
            control = control.with_deadline(started + timeout);
        }
        if let Some(cap) = self.budget.iter_cap {
            control = control.with_iter_cap(cap);
        }

        let n = self.problem.num_vars();
        let m = self.problem.num_constraints();
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempts: Vec<AttemptSummary> = Vec::new();
        let mut last_ckpt: Option<Checkpoint> = None;

        for attempt in 0..max_attempts {
            let last = attempt + 1 == max_attempts;
            if attempt > 0 {
                // Degrade *the session's* settings/factory: a rung a step
                // needed is kept for the rest of the session, and the
                // rebuilt (degraded) solver becomes the persistent one.
                degrade(&mut self.settings, &mut self.factory, attempt);
                let mut rebuilt = construct_solver(
                    &self.problem,
                    &self.settings,
                    &mut self.factory,
                    self.artifacts.as_deref(),
                )?;
                if let Some(ckpt) = &last_ckpt {
                    if ckpt.validate(n, m).is_ok() {
                        rebuilt.restore(ckpt)?;
                    }
                }
                self.solver = Some(rebuilt);
            }
            let solver = self.solver.as_mut().expect("solver built above");
            if !self.warm_start {
                solver.cold_start();
            }
            let resumed_from = last_ckpt.as_ref().map(|c| c.iterations);
            match solver.solve_with_control(&control) {
                Ok(result) => {
                    attempts.push(AttemptSummary {
                        index: attempt,
                        status: Some(result.status),
                        error: None,
                        resumed_from,
                    });
                    if result.status != Status::NumericalError || last {
                        self.steps += 1;
                        self.metrics.steps.inc();
                        self.metrics.step_us.observe(started.elapsed().as_micros() as u64);
                        return Ok(StepReport { step: self.steps, result, attempts, cache_hit });
                    }
                    let ckpt = solver.checkpoint();
                    if ckpt.validate(n, m).is_ok() {
                        last_ckpt = Some(ckpt);
                    }
                }
                Err(e) => {
                    attempts.push(AttemptSummary {
                        index: attempt,
                        status: None,
                        error: Some(e.to_string()),
                        resumed_from,
                    });
                    if !e.is_recoverable() || last {
                        // The failed solver may be poisoned; drop it so the
                        // next step rebuilds from the shared problem.
                        self.solver = None;
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("the final attempt always returns");
    }

    /// Routes updates through the persistent solver when it exists (so
    /// scaling and ρ state stay consistent), or mutates the shared problem
    /// directly before the first step.
    fn apply_updates(&mut self, updates: Vec<StepUpdate>) -> Result<(), SolverError> {
        if updates.is_empty() {
            return Ok(());
        }
        match self.solver.as_mut() {
            Some(solver) => {
                for update in updates {
                    match update {
                        StepUpdate::Bounds { l, u } => solver.update_bounds(l, u)?,
                        StepUpdate::LinearCost(q) => solver.update_q(q)?,
                        StepUpdate::Matrices { p, a } => solver.update_matrices(p, a)?,
                        StepUpdate::Rho(rho) => solver.update_rho(rho)?,
                    }
                }
                // The solver's copy-on-write may have detached from the
                // session's Arc; re-share so retries and rebuilds see the
                // updated values.
                self.problem = solver.problem_shared();
            }
            None => {
                let problem = Arc::make_mut(&mut self.problem);
                for update in updates {
                    match update {
                        StepUpdate::Bounds { l, u } => problem.update_bounds(l, u)?,
                        StepUpdate::LinearCost(q) => problem.update_q(q)?,
                        StepUpdate::Matrices { p, a } => problem.update_matrices(p, a)?,
                        StepUpdate::Rho(rho) => {
                            if rho <= 0.0 {
                                return Err(SolverError::InvalidSetting(
                                    "rho must be positive".into(),
                                ));
                            }
                            self.settings.rho = rho;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds a solver for the session, replaying the cached symbolic LDLᵀ
/// ordering when one is available and applicable.
fn construct_solver(
    problem: &Arc<QpProblem>,
    settings: &Settings,
    factory: &mut Option<BackendFactory>,
    artifacts: Option<&PatternArtifacts>,
) -> Result<Solver, SolverError> {
    if let Some(f) = factory.as_mut() {
        return Solver::with_backend_shared(Arc::clone(problem), settings.clone(), f);
    }
    if settings.linsys == LinSysKind::DirectLdlt {
        let cached_perm = artifacts
            .filter(|a| a.params.ordering == settings.ordering)
            .and_then(|a| a.kkt_perm.clone());
        if let Some(perm) = cached_perm {
            return Solver::with_backend_shared(
                Arc::clone(problem),
                settings.clone(),
                &mut |p, a, sigma, rho, _s| {
                    Ok(Box::new(DirectLdltBackend::with_permutation(
                        p,
                        a,
                        sigma,
                        rho,
                        perm.clone(),
                    )?) as Box<dyn KktBackend>)
                },
            );
        }
    }
    Solver::new_shared(Arc::clone(problem), settings.clone())
}
