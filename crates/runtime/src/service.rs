//! The concurrent solve service: bounded queue, worker pool, panic
//! isolation, and the retry driver.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use rsqp_obs::{MetricsRegistry, MetricsSnapshot};
use rsqp_solver::{
    CancelToken, Checkpoint, SolveControl, SolveResult, Solver, SolverError, Status,
};

use crate::job::{AttemptSummary, JobError, JobHandle, JobReport, JobSpec};
use crate::retry::degrade;
use crate::session::{SessionConfig, SolveSession};

/// Sizing of a [`SolveService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads. Each runs one job at a time.
    pub workers: usize,
    /// Bounded queue depth. A submit beyond `workers` in-flight jobs plus
    /// this many queued ones is rejected with
    /// [`SubmitError::QueueFull`] — explicit backpressure instead of
    /// unbounded memory growth.
    pub queue_capacity: usize,
    /// Kernel threads each worker grants a solver whose
    /// `Settings::threads` is `0` (auto). `None` leaves auto-resolution to
    /// the solver (one pool per core — oversubscribed when several workers
    /// solve at once); the default splits the host cores across the
    /// workers. Explicit `Settings::threads >= 1` always wins.
    pub kernel_threads: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism().map_or(4, |p| p.get());
        let workers = cores.min(8);
        ServiceConfig {
            workers,
            queue_capacity: 64,
            kernel_threads: Some((cores / workers).max(1)),
        }
    }
}

/// Why a submission was rejected. The spec is handed back so the caller can
/// retry later (backpressure, not data loss).
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull {
        /// The rejected job, returned to the caller.
        spec: JobSpec,
        /// The configured queue depth that was exceeded.
        capacity: usize,
    },
    /// The service has been shut down.
    ShuttingDown {
        /// The rejected job, returned to the caller.
        spec: JobSpec,
    },
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, .. } => {
                f.debug_struct("QueueFull").field("capacity", capacity).finish_non_exhaustive()
            }
            SubmitError::ShuttingDown { .. } => {
                f.debug_struct("ShuttingDown").finish_non_exhaustive()
            }
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, .. } => {
                write!(f, "job queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown { .. } => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl SubmitError {
    /// Recovers the rejected job spec.
    pub fn into_spec(self) -> JobSpec {
        match self {
            SubmitError::QueueFull { spec, .. } | SubmitError::ShuttingDown { spec } => spec,
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    cancel: CancelToken,
    deadline: Option<Instant>,
    submitted_at: Instant,
    result_tx: mpsc::Sender<JobReport>,
}

/// Telemetry handles a worker holds for its whole lifetime, so the per-job
/// hot path is pure atomic updates (no registry lookups).
struct WorkerMetrics {
    queue_depth: rsqp_obs::Gauge,
    in_flight: rsqp_obs::Gauge,
    queue_wait_us: rsqp_obs::Histogram,
    exec_time_us: rsqp_obs::Histogram,
    completed: rsqp_obs::Counter,
    failed: rsqp_obs::Counter,
    cancelled: rsqp_obs::Counter,
    retries: rsqp_obs::Counter,
    panics: rsqp_obs::Counter,
}

impl WorkerMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        WorkerMetrics {
            queue_depth: registry.gauge("queue_depth"),
            in_flight: registry.gauge("jobs_in_flight"),
            queue_wait_us: registry.histogram("queue_wait_us"),
            exec_time_us: registry.histogram("exec_time_us"),
            completed: registry.counter("jobs_completed"),
            failed: registry.counter("jobs_failed"),
            cancelled: registry.counter("jobs_cancelled"),
            retries: registry.counter("retries"),
            panics: registry.counter("panics"),
        }
    }

    /// Folds one finished job's report into the counters. The status
    /// classification is exhaustive and disjoint, so
    /// `jobs_submitted == jobs_completed + jobs_failed + jobs_cancelled`
    /// holds once every accepted job has reported (the invariant
    /// `chaos_smoke` asserts).
    fn record_outcome(&self, report: &JobReport) {
        self.retries.add(report.attempts.len().saturating_sub(1) as u64);
        self.panics.add(
            report
                .attempts
                .iter()
                .filter(|a| a.error.as_deref().is_some_and(|e| e.starts_with("panic:")))
                .count() as u64,
        );
        match &report.outcome {
            Ok(result) if result.status == Status::Cancelled => self.cancelled.inc(),
            Ok(_) => self.completed.inc(),
            Err(_) => self.failed.inc(),
        }
    }
}

/// A fixed pool of solver workers behind a bounded job queue.
///
/// Guarantees, by construction:
///
/// * **Backpressure** — `submit` never blocks and never buffers beyond the
///   configured capacity; saturation is an error the caller sees.
/// * **Definite outcomes** — every accepted job produces exactly one
///   [`JobReport`], whatever happens: convergence, divergence, budget
///   expiry, cancellation, backend errors, or a panicking backend.
/// * **Panic isolation** — a panic inside a solve is caught and converted
///   to [`JobError::Panicked`]; the worker thread survives and takes the
///   next job.
pub struct SolveService {
    tx: Option<SyncSender<QueuedJob>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    capacity: usize,
    metrics: MetricsRegistry,
    submitted: rsqp_obs::Counter,
    rejected: rsqp_obs::Counter,
    queue_depth: rsqp_obs::Gauge,
}

impl fmt::Debug for SolveService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SolveService {
    /// Starts `config.workers` worker threads sharing one bounded queue.
    pub fn new(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let (tx, rx) = mpsc::sync_channel::<QueuedJob>(capacity);
        let rx = Arc::new(Mutex::new(rx));
        let kernel_threads = config.kernel_threads;
        let metrics = MetricsRegistry::new();
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let registry = metrics.clone();
                thread::Builder::new()
                    .name(format!("rsqp-worker-{i}"))
                    .spawn(move || worker_loop(&rx, kernel_threads, &registry))
                    .expect("spawning a worker thread")
            })
            .collect();
        let submitted = metrics.counter("jobs_submitted");
        let rejected = metrics.counter("jobs_rejected");
        let queue_depth = metrics.gauge("queue_depth");
        SolveService {
            tx: Some(tx),
            workers: handles,
            next_id: AtomicU64::new(0),
            capacity,
            metrics,
            submitted,
            rejected,
            queue_depth,
        }
    }

    /// Starts a service with default sizing.
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job without blocking.
    ///
    /// The job's wall-clock budget starts now — queue wait included.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`SolveService::shutdown`]. Both
    /// return the spec to the caller.
    // The error variants carry the rejected JobSpec by design (backpressure
    // hands the job back instead of dropping it), so the error type is as
    // large as a spec.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let Some(tx) = &self.tx else {
            return Err(SubmitError::ShuttingDown { spec });
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let now = Instant::now();
        let deadline = spec.budget.timeout.map(|t| now + t);
        let (result_tx, result_rx) = mpsc::channel();
        let queued =
            QueuedJob { id, spec, cancel: cancel.clone(), deadline, submitted_at: now, result_tx };
        match tx.try_send(queued) {
            Ok(()) => {
                self.submitted.inc();
                self.queue_depth.add(1);
                Ok(JobHandle { id, cancel, rx: result_rx })
            }
            Err(TrySendError::Full(job)) => {
                self.rejected.inc();
                Err(SubmitError::QueueFull { spec: job.spec, capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(job)) => {
                self.rejected.inc();
                Err(SubmitError::ShuttingDown { spec: job.spec })
            }
        }
    }

    /// The service's live metrics registry. Counters and gauges cover the
    /// queue (`jobs_submitted`, `jobs_rejected`, `queue_depth`), execution
    /// (`jobs_in_flight`, `jobs_completed`, `jobs_failed`,
    /// `jobs_cancelled`, `retries`, `panics`), and latency histograms
    /// (`queue_wait_us`, `exec_time_us`). Callers may also register their
    /// own metrics here (e.g. folding `rsqp-arch` machine stats into the
    /// same snapshot).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A point-in-time copy of every service metric. Safe to call at any
    /// moment — including while workers are mid-job; once every accepted
    /// job's report has been received,
    /// `jobs_submitted == jobs_completed + jobs_failed + jobs_cancelled`.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Opens an MPC-style [`SolveSession`] recording into this service's
    /// metrics registry (`session_steps`, `cache_hits`, `cache_misses`,
    /// `session_step_us` land in the same snapshot as the queue metrics).
    /// The session runs on the caller's thread — the worker pool is for
    /// independent throughput jobs, a session is a latency-bound sequential
    /// loop.
    pub fn open_session(
        &self,
        problem: impl Into<Arc<rsqp_solver::QpProblem>>,
        config: SessionConfig,
    ) -> SolveSession {
        SolveSession::with_metrics(problem, config, self.metrics.clone())
    }

    /// Stops accepting jobs, drains the queue, and joins the workers.
    /// Already-queued jobs still run to completion and report normally.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.tx = None; // closes the channel; workers exit after draining
        for handle in self.workers.drain(..) {
            // Workers never panic (every job runs under catch_unwind), but
            // a join error must not propagate out of shutdown/drop.
            let _ = handle.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<QueuedJob>>>,
    kernel_threads: Option<usize>,
    registry: &MetricsRegistry,
) {
    let metrics = WorkerMetrics::new(registry);
    loop {
        // Hold the lock only to dequeue, never while solving. A poisoned
        // lock cannot happen (recv does not panic) but is survived anyway.
        let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
        let Ok(job) = job else { break };
        let started = Instant::now();
        metrics.queue_depth.sub(1);
        metrics.in_flight.add(1);
        metrics.queue_wait_us.observe(job.submitted_at.elapsed().as_micros() as u64);
        let report = run_job(job.id, job.spec, &job.cancel, job.deadline, kernel_threads);
        metrics.exec_time_us.observe(started.elapsed().as_micros() as u64);
        metrics.record_outcome(&report);
        metrics.in_flight.sub(1);
        // The submitter may have dropped the handle; that is not an error.
        let _ = job.result_tx.send(report);
    }
}

/// Drives one job through the retry ladder to a definite report.
fn run_job(
    id: u64,
    spec: JobSpec,
    cancel: &CancelToken,
    deadline: Option<Instant>,
    kernel_threads: Option<usize>,
) -> JobReport {
    let JobSpec { problem, mut settings, budget, retry, resume_from, mut factory } = spec;
    // Resolve an "auto" kernel-thread request to the service's per-worker
    // share of the host, so concurrent solves never oversubscribe it.
    if settings.threads == 0 {
        if let Some(t) = kernel_threads {
            settings.threads = t.max(1);
        }
    }
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut attempts: Vec<AttemptSummary> = Vec::new();
    let mut last_ckpt: Option<Checkpoint> = resume_from;
    let max_attempts = retry.max_attempts.max(1);

    let mut control = SolveControl::unbounded().with_cancel(cancel.clone());
    if let Some(d) = deadline {
        control = control.with_deadline(d);
    }
    if let Some(cap) = budget.iter_cap {
        control = control.with_iter_cap(cap);
    }

    for attempt in 0..max_attempts {
        let last = attempt + 1 == max_attempts;
        if attempt > 0 {
            degrade(&mut settings, &mut factory, attempt);
        }
        let resumed_from = last_ckpt.as_ref().map(|c| c.iterations);

        type AttemptOk = (SolveResult, Checkpoint);
        let attempt_result: Result<Result<AttemptOk, SolverError>, _> =
            catch_unwind(AssertUnwindSafe(|| {
                let mut solver = match factory.as_mut() {
                    Some(f) => {
                        Solver::with_backend_shared(Arc::clone(&problem), settings.clone(), f)?
                    }
                    None => Solver::new_shared(Arc::clone(&problem), settings.clone())?,
                };
                if let Some(ckpt) = &last_ckpt {
                    solver.restore(ckpt)?;
                }
                let result = solver.solve_with_control(&control)?;
                Ok((result, solver.checkpoint()))
            }));

        match attempt_result {
            Ok(Ok((result, ckpt))) => {
                attempts.push(AttemptSummary {
                    index: attempt,
                    status: Some(result.status),
                    error: None,
                    resumed_from,
                });
                // Only a numerical failure is worth a degraded retry; every
                // other status (solved, infeasible, budget-driven) is final.
                if result.status != Status::NumericalError || last {
                    return JobReport { id, attempts, outcome: Ok(result) };
                }
                // Resume the retry from this attempt's endpoint when it is
                // usable; otherwise keep the previous known-good checkpoint.
                if ckpt.validate(n, m).is_ok() {
                    last_ckpt = Some(ckpt);
                }
            }
            Ok(Err(e)) => {
                attempts.push(AttemptSummary {
                    index: attempt,
                    status: None,
                    error: Some(e.to_string()),
                    resumed_from,
                });
                if !e.is_recoverable() || last {
                    return JobReport { id, attempts, outcome: Err(JobError::Solver(e)) };
                }
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                attempts.push(AttemptSummary {
                    index: attempt,
                    status: None,
                    error: Some(format!("panic: {msg}")),
                    resumed_from,
                });
                if last {
                    return JobReport { id, attempts, outcome: Err(JobError::Panicked(msg)) };
                }
            }
        }
    }
    // Unreachable: the final loop iteration always returns. Kept as a
    // definite outcome rather than a panic, in the spirit of this module.
    JobReport { id, attempts, outcome: Err(JobError::Panicked("retry ladder fell through".into())) }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
