//! Chaos injection at the runtime layer.
//!
//! PR 1's `FaultConfig` flips bits *inside* the simulated accelerator; this
//! module attacks the layer above it: [`ChaosPlan`] wraps any
//! [`KktBackend`] in a deterministic gremlin that, per KKT solve, may
//! inject a delay (creating deadline pressure), a recoverable backend
//! error (exercising the guard and retry ladders), or a panic (exercising
//! worker panic isolation). Composed with bit-level faults and many
//! concurrent jobs, this is the chaos harness the `chaos_smoke` binary
//! runs.
//!
//! All randomness comes from a SplitMix64 stream seeded by the plan, so a
//! given (plan, job) pair replays the exact same fault schedule.

use std::time::Duration;

use rsqp_solver::{BackendStats, KktBackend, SolverError};
use rsqp_sparse::CsrMatrix;

/// Per-KKT-solve fault probabilities and a master seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a KKT solve is delayed by up to [`ChaosPlan::max_delay`].
    pub delay_prob: f64,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
    /// Probability a KKT solve returns a (recoverable)
    /// [`SolverError::Backend`] instead of running.
    pub error_prob: f64,
    /// Probability a KKT solve panics.
    pub panic_prob: f64,
}

impl ChaosPlan {
    /// A quiet plan: all probabilities zero.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            error_prob: 0.0,
            panic_prob: 0.0,
        }
    }

    /// Arms delay injection.
    #[must_use]
    pub fn with_delays(mut self, prob: f64, max_delay: Duration) -> Self {
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// Arms recoverable backend-error injection.
    #[must_use]
    pub fn with_errors(mut self, prob: f64) -> Self {
        self.error_prob = prob;
        self
    }

    /// Arms panic injection.
    #[must_use]
    pub fn with_panics(mut self, prob: f64) -> Self {
        self.panic_prob = prob;
        self
    }

    /// Derives an independent sub-stream for job `stream` (same mixing as
    /// `rsqp_arch::FaultConfig::derive`): one master seed fans out into
    /// decorrelated but individually reproducible per-job schedules.
    #[must_use]
    pub fn derive(&self, stream: u64) -> Self {
        ChaosPlan { seed: mix(self.seed, stream), ..*self }
    }

    /// Wraps a backend in this plan's fault injector.
    pub fn wrap(&self, inner: Box<dyn KktBackend>) -> Box<dyn KktBackend> {
        Box::new(ChaosBackend {
            name: format!("chaos({})", inner.name()),
            inner,
            rng: SplitMix64 { state: self.seed },
            plan: *self,
            calls: 0,
        })
    }
}

/// SplitMix64 finalizer over (seed ⊕ golden-ratio·stream).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state, 0)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A [`KktBackend`] decorator injecting scheduled faults before delegating.
struct ChaosBackend {
    name: String,
    inner: Box<dyn KktBackend>,
    rng: SplitMix64,
    plan: ChaosPlan,
    calls: u64,
}

impl KktBackend for ChaosBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError> {
        self.inner.update_rho(rho)
    }

    fn set_cg_tolerance(&mut self, eps: f64) {
        self.inner.set_cg_tolerance(eps);
    }

    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError> {
        self.calls += 1;
        // Draw all three verdicts unconditionally so the schedule for call
        // k does not depend on which probabilities are armed.
        let delay_roll = self.rng.next_f64();
        let error_roll = self.rng.next_f64();
        let panic_roll = self.rng.next_f64();
        if delay_roll < self.plan.delay_prob && !self.plan.max_delay.is_zero() {
            let frac = self.rng.next_f64();
            std::thread::sleep(self.plan.max_delay.mul_f64(frac));
        }
        if panic_roll < self.plan.panic_prob {
            panic!("chaos: injected panic at KKT solve #{}", self.calls);
        }
        if error_roll < self.plan.error_prob {
            return Err(SolverError::Backend(format!(
                "chaos: injected fault at KKT solve #{}",
                self.calls
            )));
        }
        self.inner.solve_kkt(x, z, y, q, xtilde, ztilde)
    }

    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError> {
        self.inner.update_matrices(p, a, rho)
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_solver::DirectLdltBackend;

    fn tiny_backend() -> Box<dyn KktBackend> {
        let p = CsrMatrix::identity(1);
        let a = CsrMatrix::identity(1);
        Box::new(DirectLdltBackend::new(&p, &a, 1e-6, &[0.1]).unwrap())
    }

    fn solve_once(backend: &mut dyn KktBackend) -> Result<(), SolverError> {
        let mut xt = [0.0];
        let mut zt = [0.0];
        backend.solve_kkt(&[0.0], &[0.0], &[0.0], &[1.0], &mut xt, &mut zt)
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut b = ChaosPlan::new(1).wrap(tiny_backend());
        assert!(b.name().starts_with("chaos("));
        for _ in 0..50 {
            solve_once(b.as_mut()).unwrap();
        }
        assert_eq!(b.stats().kkt_solves, 50);
    }

    #[test]
    fn error_injection_is_deterministic_and_recoverable() {
        let run = || {
            let mut b = ChaosPlan::new(7).with_errors(0.3).wrap(tiny_backend());
            (0..40).map(|_| solve_once(b.as_mut()).is_err()).collect::<Vec<_>>()
        };
        let pattern = run();
        assert_eq!(pattern, run(), "same seed, same schedule");
        assert!(pattern.iter().any(|&e| e), "some calls fail");
        assert!(pattern.iter().any(|&e| !e), "some calls succeed");
        // The injected error must be one the guard may recover from.
        let mut b = ChaosPlan::new(7).with_errors(1.0).wrap(tiny_backend());
        let err = solve_once(b.as_mut()).unwrap_err();
        assert!(err.is_recoverable());
    }

    #[test]
    fn panic_injection_panics() {
        let mut b = ChaosPlan::new(3).with_panics(1.0).wrap(tiny_backend());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = solve_once(b.as_mut());
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn derive_decorrelates_jobs() {
        let plan = ChaosPlan::new(42).with_errors(0.5);
        assert_ne!(plan.derive(0).seed, plan.derive(1).seed);
        assert_eq!(plan.derive(5), plan.derive(5));
        assert_eq!(plan.derive(1).error_prob, 0.5);
    }
}
