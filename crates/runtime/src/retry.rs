//! The bounded retry ladder.
//!
//! When an attempt ends in [`Status::NumericalError`], a recoverable
//! [`SolverError`], or a caught panic, the service retries the job with
//! progressively *degraded* settings — each rung trades speed or accuracy
//! for robustness, mirroring (one level up) the in-solve guard ladder:
//!
//! | retry # | degradation |
//! |---|---|
//! | 1 | tighten the inner CG tolerance (more exact KKT solves) |
//! | 2 | drop any custom backend and fall back to direct LDLᵀ |
//! | ≥3 | halve `max_iter` (bound the cost of a attempt that will not converge) |
//!
//! Rungs are cumulative: retry 2 keeps retry 1's tighter tolerance. Each
//! retry resumes from the last finite checkpoint, so work already done is
//! not thrown away.
//!
//! [`Status::NumericalError`]: rsqp_solver::Status::NumericalError
//! [`SolverError`]: rsqp_solver::SolverError

use rsqp_solver::{CgTolerance, LinSysKind, Settings};

use crate::job::BackendFactory;

/// Floor for the tightened CG tolerance.
const RETRY_CG_FLOOR: f64 = 1e-12;
/// Multiplier applied to a fixed CG tolerance at the tightening rung.
const RETRY_CG_SHRINK: f64 = 1e-2;
/// Floor for the halved iteration cap.
const RETRY_MIN_ITER: usize = 10;

/// How many times a job may be attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retries).
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // First attempt + one rung of each degradation kind.
        RetryPolicy { max_attempts: 4 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1 }
    }

    /// A policy with `max_attempts` total attempts (clamped to ≥ 1).
    pub fn with_max_attempts(max_attempts: usize) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1) }
    }
}

/// Applies the degradation rung for retry number `retry` (1-based) in
/// place. Also called for `retry > 3`, where it keeps halving `max_iter`.
pub(crate) fn degrade(settings: &mut Settings, factory: &mut Option<BackendFactory>, retry: usize) {
    match retry {
        0 => {}
        1 => {
            settings.cg_tolerance = match settings.cg_tolerance {
                CgTolerance::Fixed(e) => {
                    CgTolerance::Fixed((e * RETRY_CG_SHRINK).max(RETRY_CG_FLOOR))
                }
                // Adaptive schedules already walk toward `min`; pin them
                // there so every subsequent KKT solve is as exact as the
                // schedule ever allowed.
                CgTolerance::Adaptive { min, .. } => CgTolerance::Fixed(min.max(RETRY_CG_FLOOR)),
            };
        }
        2 => {
            *factory = None;
            settings.linsys = LinSysKind::DirectLdlt;
        }
        _ => {
            settings.max_iter = (settings.max_iter / 2).max(RETRY_MIN_ITER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rungs_degrade_cumulatively() {
        let mut s = Settings { max_iter: 4000, ..Default::default() };
        let mut f: Option<BackendFactory> = None;

        degrade(&mut s, &mut f, 1);
        let CgTolerance::Fixed(e1) = s.cg_tolerance else {
            panic!("rung 1 pins the CG tolerance");
        };
        assert!(e1 <= 1e-10);

        degrade(&mut s, &mut f, 2);
        assert_eq!(s.linsys, LinSysKind::DirectLdlt);
        assert!(matches!(s.cg_tolerance, CgTolerance::Fixed(_)), "rung 1 survives rung 2");

        degrade(&mut s, &mut f, 3);
        assert_eq!(s.max_iter, 2000);
        degrade(&mut s, &mut f, 4);
        assert_eq!(s.max_iter, 1000);
    }

    #[test]
    fn fixed_tolerance_shrinks_with_floor() {
        let mut s = Settings { cg_tolerance: CgTolerance::Fixed(1e-11), ..Default::default() };
        let mut f: Option<BackendFactory> = None;
        degrade(&mut s, &mut f, 1);
        assert_eq!(s.cg_tolerance, CgTolerance::Fixed(1e-12));
    }

    #[test]
    fn iteration_halving_has_a_floor() {
        let mut s = Settings { max_iter: 11, ..Default::default() };
        let mut f: Option<BackendFactory> = None;
        degrade(&mut s, &mut f, 3);
        assert_eq!(s.max_iter, RETRY_MIN_ITER);
        degrade(&mut s, &mut f, 4);
        assert_eq!(s.max_iter, RETRY_MIN_ITER);
    }

    #[test]
    fn policy_clamps_to_one_attempt() {
        assert_eq!(RetryPolicy::with_max_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }
}
