//! Job descriptions, budgets, and results.

use std::fmt;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use rsqp_solver::{
    CancelToken, Checkpoint, KktBackend, QpProblem, Settings, SolveResult, SolverError, Status,
};
use rsqp_sparse::CsrMatrix;

use crate::RetryPolicy;

/// A backend factory a job may carry across the queue into a worker thread.
///
/// The factory — not the backend — crosses threads: backends themselves may
/// be `!Send` (the simulated-FPGA backend holds an `Rc` to its machine), so
/// they are constructed *inside* the worker that runs the job. The closure
/// must therefore be `Send` and capture only `Send` state (e.g. an
/// `ArchConfig`).
pub type BackendFactory = Box<
    dyn FnMut(
            &CsrMatrix,
            &CsrMatrix,
            f64,
            &[f64],
            &Settings,
        ) -> Result<Box<dyn KktBackend>, SolverError>
        + Send,
>;

/// Per-job resource budget, enforced cooperatively inside the ADMM loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobBudget {
    /// Wall-clock budget, measured **from submission** — time spent waiting
    /// in the queue counts against it, so a saturated service sheds load by
    /// letting stale jobs expire instead of running them.
    pub timeout: Option<Duration>,
    /// ADMM iteration cap per solve attempt (combined with
    /// `Settings::max_iter` by minimum).
    pub iter_cap: Option<usize>,
}

impl JobBudget {
    /// No limits.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Sets the wall-clock budget (from submission).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the per-attempt iteration cap.
    #[must_use]
    pub fn with_iter_cap(mut self, cap: usize) -> Self {
        self.iter_cap = Some(cap);
        self
    }
}

/// One unit of work for the [`SolveService`](crate::SolveService): a
/// problem, how to solve it, and how much it may cost.
pub struct JobSpec {
    /// The problem to solve, behind an `Arc` so retries, resumes, and the
    /// solvers they build all share one copy of the matrices instead of
    /// deep-copying them per attempt.
    pub problem: Arc<QpProblem>,
    /// Solver settings for the first attempt (retries may degrade them).
    pub settings: Settings,
    /// Resource budget.
    pub budget: JobBudget,
    /// Retry ladder configuration.
    pub retry: RetryPolicy,
    /// Optional checkpoint to resume from (warm restart).
    pub resume_from: Option<Checkpoint>,
    /// Optional custom backend factory (e.g. the simulated FPGA). `None`
    /// builds the backend selected by `Settings::linsys`. Dropped at the
    /// direct-fallback rung of the retry ladder.
    pub factory: Option<BackendFactory>,
}

impl JobSpec {
    /// A job with default settings, no budget, and the default retry ladder.
    /// Accepts either an owned [`QpProblem`] or a pre-shared
    /// `Arc<QpProblem>`.
    pub fn new(problem: impl Into<Arc<QpProblem>>) -> Self {
        JobSpec {
            problem: problem.into(),
            settings: Settings::default(),
            budget: JobBudget::default(),
            retry: RetryPolicy::default(),
            resume_from: None,
            factory: None,
        }
    }

    /// Replaces the solver settings.
    #[must_use]
    pub fn with_settings(mut self, settings: Settings) -> Self {
        self.settings = settings;
        self
    }

    /// Replaces the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Resumes from a previously captured checkpoint.
    #[must_use]
    pub fn with_checkpoint(mut self, ckpt: Checkpoint) -> Self {
        self.resume_from = Some(ckpt);
        self
    }

    /// Installs a custom backend factory.
    #[must_use]
    pub fn with_backend_factory(mut self, factory: BackendFactory) -> Self {
        self.factory = Some(factory);
        self
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("problem", &self.problem.name())
            .field("budget", &self.budget)
            .field("retry", &self.retry)
            .field("resume_from", &self.resume_from.is_some())
            .field("custom_factory", &self.factory.is_some())
            .finish_non_exhaustive()
    }
}

/// Why a job produced no [`SolveResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Every attempt failed with a solver error; this is the last one.
    Solver(SolverError),
    /// Every attempt panicked (or the final one did); the worker caught the
    /// panic and survived. The payload is the panic message.
    Panicked(String),
    /// The worker dropped the job without reporting — only possible if the
    /// service was torn down around a running job.
    Lost,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Solver(e) => write!(f, "solver error: {e}"),
            JobError::Panicked(msg) => write!(f, "solve attempt panicked: {msg}"),
            JobError::Lost => write!(f, "job lost: worker dropped the result channel"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

/// What happened during one attempt of a job's retry ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptSummary {
    /// 0-based attempt index (0 = the undegraded first attempt).
    pub index: usize,
    /// Terminal status, when the attempt completed a solve.
    pub status: Option<Status>,
    /// Error or panic message, when it did not.
    pub error: Option<String>,
    /// Checkpointed iteration the attempt resumed from, if any.
    pub resumed_from: Option<u64>,
}

/// The definite outcome of a job: either a [`SolveResult`] (whose `status`
/// may still be e.g. `NumericalError` after an exhausted ladder) or a typed
/// [`JobError`]. Every submitted job yields exactly one report.
#[derive(Debug)]
pub struct JobReport {
    /// Service-assigned job id.
    pub id: u64,
    /// Per-attempt history (length ≥ 1 unless the job was `Lost`).
    pub attempts: Vec<AttemptSummary>,
    /// Final outcome.
    pub outcome: Result<SolveResult, JobError>,
}

impl JobReport {
    pub(crate) fn lost(id: u64) -> Self {
        JobReport { id, attempts: Vec::new(), outcome: Err(JobError::Lost) }
    }

    /// The terminal solve status, if the job produced one.
    pub fn status(&self) -> Option<Status> {
        self.outcome.as_ref().ok().map(|r| r.status)
    }

    /// Number of attempts the retry ladder ran.
    pub fn attempts_used(&self) -> usize {
        self.attempts.len()
    }
}

/// A submitted job: carries the cancellation token and the (single-use)
/// result channel.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) cancel: CancelToken,
    pub(crate) rx: Receiver<JobReport>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation. The job still produces a report
    /// (with [`Status::Cancelled`] if the cancellation landed mid-solve).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the job's cancellation token (e.g. to hand to a watchdog).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until the job's report arrives.
    pub fn wait(self) -> JobReport {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| JobReport::lost(id))
    }

    /// Waits up to `timeout` for the report; `None` means it is still
    /// running (the handle stays usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobReport> {
        match self.rx.recv_timeout(timeout) {
            Ok(report) => Some(report),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(JobReport::lost(self.id)),
        }
    }
}
