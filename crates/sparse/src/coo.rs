use crate::{CscMatrix, CsrMatrix};

/// Coordinate-format (triplet) sparse matrix builder.
///
/// `CooMatrix` is the construction format used by the benchmark problem
/// generators: entries are pushed in any order and duplicates are summed when
/// converting to a compressed format.
///
/// # Example
///
/// ```
/// use rsqp_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // duplicate: summed on conversion
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty triplet matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty triplet matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends the entry `(row, col, val)`.
    ///
    /// Zero values are kept: the benchmark generators rely on explicit zeros
    /// to fix a sparsity *structure* independent of the numeric instance.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.nrows, "row {row} out of bounds ({} rows)", self.nrows);
        assert!(col < self.ncols, "col {col} out of bounds ({} cols)", self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Appends a whole block `other` with its top-left corner at
    /// `(row_off, col_off)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit inside the matrix.
    pub fn push_block(&mut self, row_off: usize, col_off: usize, other: &CooMatrix) {
        assert!(row_off + other.nrows <= self.nrows, "block rows exceed matrix");
        assert!(col_off + other.ncols <= self.ncols, "block cols exceed matrix");
        for ((&r, &c), &v) in other.rows.iter().zip(&other.cols).zip(&other.vals) {
            self.rows.push(r + row_off);
            self.cols.push(c + col_off);
            self.vals.push(v);
        }
    }

    /// Iterates over the stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows.iter().zip(&self.cols).zip(&self.vals).map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries.
    ///
    /// The result has sorted column indices within each row and no duplicate
    /// coordinates (explicit zeros are preserved so the structure is stable).
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and
        // compact duplicates.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.nnz()];
        let mut next = counts.clone();
        for (k, &r) in self.rows.iter().enumerate() {
            order[next[r]] = k;
            next[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut data = Vec::with_capacity(self.nnz());
        indptr.push(0);
        let mut segment: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            segment.clear();
            segment.extend(
                order[counts[r]..counts[r + 1]].iter().map(|&k| (self.cols[k], self.vals[k])),
            );
            segment.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < segment.len() {
                let col = segment[i].0;
                let mut sum = 0.0;
                while i < segment.len() && segment[i].0 == col {
                    sum += segment[i].1;
                    i += 1;
                }
                indices.push(col);
                data.push(sum);
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, data)
            .expect("COO-to-CSR conversion always produces a valid structure")
    }

    /// Converts to CSC, summing duplicate entries.
    pub fn to_csc(&self) -> CscMatrix {
        self.to_csr().to_csc()
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 1.5);
        coo.push(1, 1, 2.5);
        coo.push(0, 1, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 1), 4.0);
        assert_eq!(csr.get(0, 1), -1.0);
    }

    #[test]
    fn out_of_order_insertion_sorts() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 3.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        let csr = coo.to_csr();
        let (cols, vals) = csr.row(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[2.0, 3.0]);
    }

    #[test]
    fn push_block_offsets_indices() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(1, 1, 2.0);
        let mut big = CooMatrix::new(4, 4);
        big.push_block(2, 2, &a);
        let csr = big.to_csr();
        assert_eq!(csr.get(2, 2), 1.0);
        assert_eq!(csr.get(3, 3), 2.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(1, 0, 1.0);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.iter().count(), 2);
    }

    #[test]
    fn explicit_zeros_are_kept() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 0, 0.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
    }
}
