//! Sparse linear algebra substrate for the RSQP reproduction.
//!
//! This crate provides the matrix and vector kernels every other layer of the
//! workspace is built on:
//!
//! * [`CooMatrix`] — a triplet builder used by the problem generators,
//! * [`CsrMatrix`] — compressed sparse row storage, the format streamed to the
//!   simulated SpMV engine and used by the CPU PCG backend,
//! * [`CscMatrix`] — compressed sparse column storage, used by the LDLᵀ
//!   direct solver,
//! * [`vec_ops`] — the dense vector kernels (dot products, norms, linear
//!   combinations, element-wise projection) that correspond one-to-one with
//!   the vector-engine instructions of the RSQP architecture (Table 1 of the
//!   paper),
//! * [`RowPartition`] / [`TransposeCache`] plus the `*_partitioned` SpMV and
//!   `*_par` vector kernels — the deterministic parallel CPU layer (built on
//!   `rsqp-par`) used by the reference PCG/ADMM hot path.
//!
//! # Example
//!
//! ```
//! use rsqp_sparse::{CooMatrix, CsrMatrix};
//!
//! # fn main() -> Result<(), rsqp_sparse::SparseError> {
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 4.0);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 0, 1.0);
//! coo.push(1, 1, 2.0);
//! let m: CsrMatrix = coo.to_csr();
//! let mut y = vec![0.0; 2];
//! m.spmv(&[1.0, 1.0], &mut y)?;
//! assert_eq!(y, vec![5.0, 3.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod error;
pub mod io;
mod partition;
pub mod pattern;
pub mod stack;
mod transpose;
pub mod vec_ops;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use partition::RowPartition;
pub use pattern::PatternKey;
pub use transpose::TransposeCache;
