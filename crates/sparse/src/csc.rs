use crate::{CsrMatrix, SparseError};

/// Compressed sparse column matrix with `f64` values.
///
/// CSC is the storage format consumed by the LDLᵀ direct solver in
/// `rsqp-linsys` (mirroring OSQP's QDLDL, which factorizes an upper-triangular
/// CSC KKT matrix).
///
/// Invariants mirror [`CsrMatrix`], with columns in place of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    data: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the arrays are
    /// inconsistent (see the type-level invariants).
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self, SparseError> {
        // Validation is delegated to the CSR checker on the transposed shape:
        // a valid CSC of (nrows x ncols) has exactly the arrays of a valid
        // CSR of (ncols x nrows).
        let as_csr = CsrMatrix::from_raw_parts(ncols, nrows, colptr, rowidx, data)?;
        let (indptr, indices, data) = {
            let t = as_csr;
            (t.indptr().to_vec(), t.indices().to_vec(), t.data().to_vec())
        };
        Ok(CscMatrix { nrows, ncols, colptr: indptr, rowidx: indices, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// Value array.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable value array (structure stays fixed).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.colptr[j], self.colptr[j + 1]);
        (&self.rowidx[lo..hi], &self.data[lo..hi])
    }

    /// Stored value at `(i, j)`, or `0.0` if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Converts to CSR storage.
    pub fn to_csr(&self) -> CsrMatrix {
        // The arrays of this CSC are a CSR of the transpose; transposing that
        // CSR yields the CSR of self.
        CsrMatrix::from_raw_parts(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rowidx.clone(),
            self.data.clone(),
        )
        .expect("internal arrays are valid")
        .transpose()
    }

    /// Computes `y = self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "csc spmv input",
                expected: self.ncols,
                found: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "csc spmv output",
                expected: self.nrows,
                found: y.len(),
            });
        }
        y.fill(0.0);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            let xj = x[j];
            for (&i, &v) in rows.iter().zip(vals) {
                y[i] += v * xj;
            }
        }
        Ok(())
    }

    /// Computes `y = self * x + selfᵀ * x - diag(self) * x` treating `self`
    /// as the upper triangle of a symmetric matrix.
    ///
    /// This is the "symmetric SpMV" used on upper-triangular KKT storage.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the matrix is not square
    /// or the vector lengths disagree with it.
    pub fn symm_spmv_upper(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "symm_spmv_upper (square required)",
                expected: self.nrows,
                found: self.ncols,
            });
        }
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "symm_spmv_upper vectors",
                expected: self.ncols,
                found: x.len().max(y.len()),
            });
        }
        y.fill(0.0);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            let xj = x[j];
            for (&i, &v) in rows.iter().zip(vals) {
                y[i] += v * xj;
                if i != j {
                    y[j] += v * x[i];
                }
            }
        }
        Ok(())
    }

    /// Returns the diagonal, with zeros for unstored diagonal entries.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// True if every stored entry `(i, j)` satisfies `i <= j`.
    pub fn is_upper_triangular(&self) -> bool {
        (0..self.ncols).all(|j| self.col(j).0.iter().all(|&i| i <= j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        CsrMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).to_csc()
    }

    #[test]
    fn get_and_shape() {
        let m = example();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (2, 3, 3));
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn spmv_matches_csr() {
        let csc = example();
        let csr = csc.to_csr();
        let x = vec![1.0, -2.0, 0.5];
        let mut y1 = vec![0.0; 2];
        let mut y2 = vec![0.0; 2];
        csc.spmv(&x, &mut y1).unwrap();
        csr.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn symm_spmv_upper_matches_full() {
        // Full symmetric matrix and its upper triangle.
        let full = CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 3.0),
            ],
        );
        let upper = full.upper_triangle().to_csc();
        let x = vec![1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        full.spmv(&x, &mut y1).unwrap();
        upper.symm_spmv_upper(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn symm_spmv_requires_square() {
        let m = example();
        let mut y = vec![0.0; 2];
        assert!(m.symm_spmv_upper(&[1.0, 1.0, 1.0], &mut y).is_err());
    }

    #[test]
    fn upper_triangular_detection() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0)]).to_csc();
        assert!(m.is_upper_triangular());
        let m2 = CsrMatrix::from_triplets(2, 2, vec![(1, 0, 1.0)]).to_csc();
        assert!(!m2.is_upper_triangular());
    }

    #[test]
    fn invalid_structure_rejected() {
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn diagonal_reads_stored_and_missing() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 5.0)]).to_csc();
        assert_eq!(m.diagonal(), vec![5.0, 0.0]);
    }
}
