//! Block assembly helpers (vertical/horizontal stacking, block diagonal).
//!
//! The benchmark QP formulations (lasso, huber, svm, portfolio, MPC) are all
//! assembled from blocks; these helpers keep the generators short and make
//! the block structure explicit.

use crate::{CooMatrix, CsrMatrix};

/// Vertically stacks matrices with identical column counts.
///
/// # Panics
///
/// Panics if `mats` is empty or the column counts differ.
pub fn vstack(mats: &[&CsrMatrix]) -> CsrMatrix {
    assert!(!mats.is_empty(), "vstack of zero matrices");
    let ncols = mats[0].ncols();
    assert!(mats.iter().all(|m| m.ncols() == ncols), "vstack requires equal column counts");
    let nrows: usize = mats.iter().map(|m| m.nrows()).sum();
    let nnz: usize = mats.iter().map(|m| m.nnz()).sum();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut off = 0;
    for m in mats {
        for i in 0..m.nrows() {
            let (cols, vals) = m.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(off + i, j, v);
            }
        }
        off += m.nrows();
    }
    coo.to_csr()
}

/// Horizontally stacks matrices with identical row counts.
///
/// # Panics
///
/// Panics if `mats` is empty or the row counts differ.
pub fn hstack(mats: &[&CsrMatrix]) -> CsrMatrix {
    assert!(!mats.is_empty(), "hstack of zero matrices");
    let nrows = mats[0].nrows();
    assert!(mats.iter().all(|m| m.nrows() == nrows), "hstack requires equal row counts");
    let ncols: usize = mats.iter().map(|m| m.ncols()).sum();
    let nnz: usize = mats.iter().map(|m| m.nnz()).sum();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut off = 0;
    for m in mats {
        for i in 0..m.nrows() {
            let (cols, vals) = m.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(i, off + j, v);
            }
        }
        off += m.ncols();
    }
    coo.to_csr()
}

/// Block-diagonal assembly.
///
/// # Panics
///
/// Panics if `mats` is empty.
pub fn block_diag(mats: &[&CsrMatrix]) -> CsrMatrix {
    assert!(!mats.is_empty(), "block_diag of zero matrices");
    let nrows: usize = mats.iter().map(|m| m.nrows()).sum();
    let ncols: usize = mats.iter().map(|m| m.ncols()).sum();
    let nnz: usize = mats.iter().map(|m| m.nnz()).sum();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let (mut ro, mut co) = (0, 0);
    for m in mats {
        for i in 0..m.nrows() {
            let (cols, vals) = m.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(ro + i, co + j, v);
            }
        }
        ro += m.nrows();
        co += m.ncols();
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![1.0, 2.0]])
    }

    fn b() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![3.0, 0.0], vec![0.0, 4.0]])
    }

    #[test]
    fn vstack_shapes_and_values() {
        let s = vstack(&[&a(), &b()]);
        assert_eq!((s.nrows(), s.ncols()), (3, 2));
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(2, 1), 4.0);
    }

    #[test]
    fn hstack_shapes_and_values() {
        let s = hstack(&[&b(), &CsrMatrix::identity(2)]);
        assert_eq!((s.nrows(), s.ncols()), (2, 4));
        assert_eq!(s.get(0, 0), 3.0);
        assert_eq!(s.get(1, 3), 1.0);
    }

    #[test]
    fn block_diag_shapes_and_values() {
        let s = block_diag(&[&a(), &b()]);
        assert_eq!((s.nrows(), s.ncols()), (3, 4));
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 2), 3.0);
        assert_eq!(s.get(2, 3), 4.0);
        assert_eq!(s.get(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal column counts")]
    fn vstack_mismatched_cols_panics() {
        let one = CsrMatrix::identity(1);
        vstack(&[&a(), &one]);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn hstack_mismatched_rows_panics() {
        hstack(&[&a(), &b()]);
    }
}
