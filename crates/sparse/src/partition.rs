//! Row partitions for parallel SpMV.
//!
//! A partition is a fixed set of contiguous row ranges computed once from
//! the matrix structure. Because the boundaries depend only on the matrix
//! (never on the thread count or runtime timing), every parallel kernel
//! that uses a given partition produces bit-identical results regardless
//! of how many threads execute it — each row is still accumulated
//! left-to-right by exactly one thread.

use crate::csr::CsrMatrix;

/// A contiguous partition of `0..nrows` into chunks, balanced for SpMV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    /// `bounds[k]..bounds[k + 1]` is chunk `k`; starts at 0, ends at nrows.
    bounds: Vec<usize>,
}

impl RowPartition {
    /// Partitions the rows of `m` into at most `max_chunks` pieces with
    /// roughly equal nonzero counts, so chunks cost about the same even on
    /// matrices with wildly uneven row densities.
    pub fn balanced(m: &CsrMatrix, max_chunks: usize) -> Self {
        let nrows = m.nrows();
        let nchunks = max_chunks.clamp(1, nrows.max(1));
        let per_chunk = m.nnz().div_ceil(nchunks).max(1);
        let mut bounds = Vec::with_capacity(nchunks + 1);
        bounds.push(0);
        let mut acc = 0usize;
        for i in 0..nrows {
            acc += m.row_nnz(i);
            if acc >= per_chunk * bounds.len() && bounds.len() < nchunks {
                bounds.push(i + 1);
            }
        }
        if *bounds.last().unwrap() != nrows {
            bounds.push(nrows);
        }
        RowPartition { bounds }
    }

    /// Partitions `0..nrows` into at most `max_chunks` equal-length pieces.
    pub fn uniform(nrows: usize, max_chunks: usize) -> Self {
        let nchunks = max_chunks.clamp(1, nrows.max(1));
        let per_chunk = nrows.div_ceil(nchunks).max(1);
        let mut bounds: Vec<usize> = (0..nchunks).map(|k| k * per_chunk).collect();
        bounds.push(nrows);
        bounds.retain({
            let mut prev = usize::MAX;
            move |&b| {
                let keep = b != prev && b <= nrows;
                prev = b;
                keep
            }
        });
        RowPartition { bounds }
    }

    /// The chunk boundaries (`len() == num_chunks() + 1`).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of rows covered.
    pub fn nrows(&self) -> usize {
        *self.bounds.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ragged_matrix() -> CsrMatrix {
        // Row i has i % 7 + 1 entries: very uneven nnz per row.
        let nrows = 200;
        let ncols = 50;
        let mut coo = CooMatrix::with_capacity(nrows, ncols, nrows * 4);
        for i in 0..nrows {
            for k in 0..(i % 7 + 1) {
                coo.push(i, (i * 3 + k * 11) % ncols, 1.0 + k as f64);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn balanced_covers_all_rows_in_order() {
        let m = ragged_matrix();
        for chunks in [1, 2, 3, 8, 64, 1000] {
            let p = RowPartition::balanced(&m, chunks);
            assert_eq!(p.bounds()[0], 0);
            assert_eq!(p.nrows(), m.nrows());
            assert!(p.bounds().windows(2).all(|w| w[0] < w[1]));
            assert!(p.num_chunks() <= chunks.max(1));
        }
    }

    #[test]
    fn balanced_spreads_nnz() {
        let m = ragged_matrix();
        let p = RowPartition::balanced(&m, 4);
        let nnz_of = |lo: usize, hi: usize| (lo..hi).map(|i| m.row_nnz(i)).sum::<usize>();
        let loads: Vec<usize> = p.bounds().windows(2).map(|w| nnz_of(w[0], w[1])).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // Perfect balance is impossible at row granularity, but chunks must
        // be within a small factor of each other.
        assert!(max <= 2 * min + 8, "unbalanced loads: {loads:?}");
    }

    #[test]
    fn uniform_partition_is_contiguous() {
        for (nrows, chunks) in [(10usize, 3usize), (1, 8), (0, 4), (100, 100), (5, 1)] {
            let p = RowPartition::uniform(nrows, chunks);
            assert_eq!(p.bounds()[0], 0);
            assert_eq!(p.nrows(), nrows);
            assert!(p.bounds().windows(2).all(|w| w[0] < w[1]) || nrows == 0);
        }
    }
}
