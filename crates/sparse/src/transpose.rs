//! A cached, gather-friendly transpose for repeated `Aᵀv` products.
//!
//! [`CsrMatrix::spmv_transpose`] scatters into the output (`y[j] += v·xᵢ`
//! with `j` jumping across the whole vector), which is cache-hostile and
//! cannot be row-parallelized without atomics. Building the transpose once
//! turns every later `Aᵀv` into a plain row-major **gather** SpMV — the
//! shape the reduced KKT operator `Aᵀ(ρ∘(Ax))` evaluates hundreds of times
//! per solve.
//!
//! The cache also records, for every entry of `Aᵀ`, the position of the
//! corresponding entry in `A`'s value array. When `A`'s values change but
//! its pattern does not (Ruiz re-equilibration, `update_matrices`), the
//! cache is refreshed by one linear pass over that map instead of
//! rebuilding the structure.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A materialized `Aᵀ` plus the value map back into `A`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransposeCache {
    at: CsrMatrix,
    /// `at.data()[k]` mirrors `a.data()[map[k]]`.
    map: Vec<usize>,
}

impl TransposeCache {
    /// Builds the transpose of `a` and the value map in one counting-sort
    /// pass (`O(nnz + ncols)`).
    pub fn new(a: &CsrMatrix) -> Self {
        let nnz = a.nnz();
        let mut counts = vec![0usize; a.ncols() + 1];
        for &j in a.indices() {
            counts[j + 1] += 1;
        }
        for j in 0..a.ncols() {
            counts[j + 1] += counts[j];
        }
        let mut indices = vec![0usize; nnz];
        let mut data = vec![0.0; nnz];
        let mut map = vec![0usize; nnz];
        let mut next = counts.clone();
        let indptr = a.indptr();
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let row_start = indptr[i];
            for (k, (&j, &v)) in cols.iter().zip(vals).enumerate() {
                let dst = next[j];
                indices[dst] = i;
                data[dst] = v;
                map[dst] = row_start + k;
                next[j] += 1;
            }
        }
        let at = CsrMatrix::from_raw_parts(a.ncols(), a.nrows(), counts, indices, data)
            .expect("transpose of a valid CSR matrix is valid");
        TransposeCache { at, map }
    }

    /// Copies `a`'s current values into the cached transpose without
    /// touching the pattern. `a` must have the same shape and sparsity
    /// pattern as the matrix the cache was built from — only its values may
    /// differ.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when the shape or
    /// nonzero count differs from the cached structure. A same-shape,
    /// same-nnz pattern change is **not** detectable here; callers own that
    /// invariant (our solvers only rescale values in place).
    pub fn refresh_values(&mut self, a: &CsrMatrix) -> Result<(), SparseError> {
        if a.nrows() != self.at.ncols() || a.ncols() != self.at.nrows() {
            return Err(SparseError::DimensionMismatch {
                op: "transpose cache refresh",
                expected: self.at.ncols(),
                found: a.nrows(),
            });
        }
        if a.nnz() != self.at.nnz() {
            return Err(SparseError::DimensionMismatch {
                op: "transpose cache refresh nnz",
                expected: self.at.nnz(),
                found: a.nnz(),
            });
        }
        let src = a.data();
        for (dst, &s) in self.at.data_mut().iter_mut().zip(&self.map) {
            *dst = src[s];
        }
        Ok(())
    }

    /// The cached `Aᵀ` in CSR form.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.at
    }

    /// `y = Aᵀx` as a gather SpMV over the cached transpose.
    ///
    /// Bit-identical to [`CsrMatrix::spmv_transpose`] on the source matrix:
    /// for each output `y[j]` both accumulate contributions in increasing
    /// source-row order.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.at.spmv(x, y)
    }

    /// `y += alpha · Aᵀx` as a gather SpMV over the cached transpose.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
    pub fn spmv_acc(&self, alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.at.spmv_acc(alpha, x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(4, 3, 7);
        for (i, j, v) in
            [(0, 0, 1.0), (0, 2, 2.0), (1, 1, -3.0), (2, 0, 4.0), (2, 1, 5.0), (3, 2, -1.5)]
        {
            coo.push(i, j, v);
        }
        coo.to_csr()
    }

    #[test]
    fn gather_matches_scatter_bitwise() {
        let a = sample();
        let cache = TransposeCache::new(&a);
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut scatter = vec![0.0; 3];
        let mut gather = vec![0.0; 3];
        a.spmv_transpose(&x, &mut scatter).unwrap();
        cache.spmv(&x, &mut gather).unwrap();
        assert_eq!(scatter, gather);
    }

    #[test]
    fn matches_materialized_transpose() {
        let a = sample();
        let cache = TransposeCache::new(&a);
        let t = a.transpose();
        assert_eq!(cache.matrix().indptr(), t.indptr());
        assert_eq!(cache.matrix().indices(), t.indices());
        assert_eq!(cache.matrix().data(), t.data());
    }

    #[test]
    fn refresh_tracks_value_updates() {
        let mut a = sample();
        let mut cache = TransposeCache::new(&a);
        for (k, v) in a.data_mut().iter_mut().enumerate() {
            *v = 10.0 + k as f64;
        }
        cache.refresh_values(&a).unwrap();
        let t = a.transpose();
        assert_eq!(cache.matrix().data(), t.data());
    }

    #[test]
    fn refresh_rejects_shape_change() {
        let a = sample();
        let mut cache = TransposeCache::new(&a);
        let other = CooMatrix::with_capacity(2, 2, 0).to_csr();
        assert!(cache.refresh_values(&other).is_err());
    }
}
