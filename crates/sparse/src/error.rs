use std::error::Error;
use std::fmt;

/// Error type for sparse-matrix construction and kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Operand shapes are incompatible (e.g. an SpMV where the vector length
    /// does not match the number of matrix columns).
    DimensionMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension it actually received.
        found: usize,
    },
    /// An index is outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending row or column index.
        index: usize,
        /// The exclusive bound it must stay under.
        bound: usize,
    },
    /// The raw CSR/CSC arrays do not describe a valid matrix (bad pointer
    /// array length, decreasing pointers, unsorted or out-of-range indices).
    InvalidStructure(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, expected, found } => {
                write!(f, "dimension mismatch in {op}: expected {expected}, found {found}")
            }
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            SparseError::InvalidStructure(msg) => {
                write!(f, "invalid sparse structure: {msg}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::DimensionMismatch { op: "spmv", expected: 3, found: 4 };
        assert!(e.to_string().contains("spmv"));
        assert!(e.to_string().contains('3'));
        let e = SparseError::IndexOutOfBounds { index: 9, bound: 5 };
        assert!(e.to_string().contains('9'));
        let e = SparseError::InvalidStructure("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
