//! Sparsity-pattern statistics.
//!
//! The RSQP customization framework keys entirely on the *structure* of the
//! problem matrices (locations of non-zeros, not their values). This module
//! provides the structural summaries the encoding layer consumes.

use crate::CsrMatrix;

/// Summary statistics of a matrix sparsity pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Total stored entries.
    pub nnz: usize,
    /// Maximum row population.
    pub max_row_nnz: usize,
    /// Minimum row population.
    pub min_row_nnz: usize,
    /// Mean row population.
    pub mean_row_nnz: f64,
    /// Histogram over `⌈log₂(nnz_row)⌉` buckets: index `k` counts rows with
    /// `nnz_row` in `(2^(k-1), 2^k]` (index 0 counts rows with ≤ 1 entry).
    pub log2_histogram: Vec<usize>,
}

/// Computes [`PatternStats`] for a matrix.
pub fn stats(m: &CsrMatrix) -> PatternStats {
    let counts = m.row_nnz_counts();
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    let mean = if counts.is_empty() {
        0.0
    } else {
        counts.iter().sum::<usize>() as f64 / counts.len() as f64
    };
    let nbuckets = log2_bucket(max.max(1)) + 1;
    let mut hist = vec![0usize; nbuckets];
    for &c in &counts {
        hist[log2_bucket(c)] += 1;
    }
    PatternStats {
        nrows: m.nrows(),
        ncols: m.ncols(),
        nnz: m.nnz(),
        max_row_nnz: max,
        min_row_nnz: min,
        mean_row_nnz: mean,
        log2_histogram: hist,
    }
}

/// Bucket index `⌈log₂(max(n, 1))⌉`: rows with 0 or 1 entries map to bucket
/// 0, 2 entries to bucket 1, 3–4 to bucket 2, 5–8 to bucket 3, …
pub fn log2_bucket(n: usize) -> usize {
    let n = n.max(1);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// True if two matrices have identical sparsity structure (shape and stored
/// coordinates), irrespective of values.
///
/// Architectures generated for one instance of a parametric problem apply to
/// every instance with the same structure — this predicate is the check that
/// gates architecture reuse.
pub fn same_structure(a: &CsrMatrix, b: &CsrMatrix) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.indptr() == b.indptr()
        && a.indices() == b.indices()
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_usize(mut h: u64, v: usize) -> u64 {
    for byte in (v as u64).to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_matrix(mut h: u64, m: &CsrMatrix) -> u64 {
    h = fnv1a_usize(h, m.nrows());
    h = fnv1a_usize(h, m.ncols());
    for &v in m.indptr() {
        h = fnv1a_usize(h, v);
    }
    for &v in m.indices() {
        h = fnv1a_usize(h, v);
    }
    h
}

/// A structure-only fingerprint of a `(P, A)` matrix pair: the dimensions,
/// entry counts, and an FNV-1a hash over both matrices' row pointers and
/// column indices. Values are deliberately excluded — two problems with the
/// same sparsity pattern but different numbers compare **equal**, which is
/// exactly the equivalence RSQP's customization pipeline (and the symbolic
/// half of the LDLᵀ factorization) keys on.
///
/// Equality of keys is necessary but, because of the hash, not strictly
/// sufficient for [`same_structure`]; with a 64-bit hash over both index
/// arrays, collisions are negligible for cache keying. Use
/// [`same_structure`] directly when an exact guarantee is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternKey {
    n: usize,
    m: usize,
    p_nnz: usize,
    a_nnz: usize,
    hash: u64,
}

impl PatternKey {
    /// Fingerprints the structure of a `(P, A)` pair.
    pub fn new(p: &CsrMatrix, a: &CsrMatrix) -> Self {
        let hash = fnv1a_matrix(fnv1a_matrix(FNV_OFFSET, p), a);
        PatternKey { n: p.nrows(), m: a.nrows(), p_nnz: p.nnz(), a_nnz: a.nnz(), hash }
    }

    /// Number of primal variables (`P` is `n × n`).
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints (`A` is `m × n`).
    pub fn num_constraints(&self) -> usize {
        self.m
    }

    /// Stored entries in `P`.
    pub fn p_nnz(&self) -> usize {
        self.p_nnz
    }

    /// Stored entries in `A`.
    pub fn a_nnz(&self) -> usize {
        self.a_nnz
    }

    /// The 64-bit structural hash.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(5), 3);
        assert_eq!(log2_bucket(8), 3);
        assert_eq!(log2_bucket(9), 4);
        assert_eq!(log2_bucket(64), 6);
        assert_eq!(log2_bucket(65), 7);
    }

    #[test]
    fn stats_of_small_matrix() {
        let m = CsrMatrix::from_triplets(
            3,
            4,
            vec![(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (1, 0, 1.0), (2, 3, 1.0)],
        );
        let s = stats(&m);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.min_row_nnz, 1);
        assert!((s.mean_row_nnz - 5.0 / 3.0).abs() < 1e-12);
        // rows: 3 -> bucket 2, 1 -> bucket 0, 1 -> bucket 0
        assert_eq!(s.log2_histogram, vec![2, 0, 1]);
    }

    #[test]
    fn pattern_key_ignores_values() {
        let p1 = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        let p2 = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 9.0), (1, 1, -3.0)]);
        let a1 = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        let a2 = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 5.0), (0, 1, 7.0)]);
        assert_eq!(PatternKey::new(&p1, &a1), PatternKey::new(&p2, &a2));
    }

    #[test]
    fn pattern_key_distinguishes_structures() {
        let p = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        let a = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 1.0)]);
        let a_moved = CsrMatrix::from_triplets(1, 2, vec![(0, 1, 1.0)]);
        let a_more = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        let key = PatternKey::new(&p, &a);
        assert_ne!(key, PatternKey::new(&p, &a_moved), "moved entry must change the key");
        assert_ne!(key, PatternKey::new(&p, &a_more), "extra entry must change the key");
        // Swapping which matrix holds a pattern must also change the key.
        let p3 = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0)]);
        assert_ne!(PatternKey::new(&p, &a), PatternKey::new(&p3, &a));
    }

    #[test]
    fn pattern_key_reports_shape() {
        let p = CsrMatrix::identity(3);
        let a = CsrMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 2, 1.0)]);
        let key = PatternKey::new(&p, &a);
        assert_eq!(key.num_vars(), 3);
        assert_eq!(key.num_constraints(), 2);
        assert_eq!(key.p_nnz(), 3);
        assert_eq!(key.a_nnz(), 2);
        assert_ne!(key.hash_value(), 0);
    }

    #[test]
    fn structure_comparison_ignores_values() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        let b = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 9.0), (1, 1, -1.0)]);
        let c = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 1, 2.0)]);
        assert!(same_structure(&a, &b));
        assert!(!same_structure(&a, &c));
    }
}
