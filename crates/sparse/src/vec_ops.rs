//! Dense vector kernels.
//!
//! These functions correspond one-to-one with the vector-engine instruction
//! class of the RSQP architecture (Table 1 in the paper): linear combination
//! of two vectors, element-wise comparison / reciprocal / multiplication, and
//! dot products. The ADMM outer loop and PCG inner loop are written entirely
//! in terms of these kernels plus SpMV, which is what makes the instruction
//! compilation in `rsqp-arch` a mechanical translation.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Infinity norm `max |x_i|` (0 for an empty vector).
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y = a*x + b*y` (general linear combination, in place on `y`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn lincomb(a: f64, x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "lincomb length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = a * xi + b * *yi;
    }
}

/// `y += a*x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    lincomb(a, x, 1.0, y);
}

/// `out = x - y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(x: &[f64], y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub length mismatch");
    assert_eq!(x.len(), out.len(), "sub output length mismatch");
    for ((o, &a), &b) in out.iter_mut().zip(x).zip(y) {
        *o = a - b;
    }
}

/// Element-wise product `out = x ∘ y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn ew_mul(x: &[f64], y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "ew_mul length mismatch");
    assert_eq!(x.len(), out.len(), "ew_mul output length mismatch");
    for ((o, &a), &b) in out.iter_mut().zip(x).zip(y) {
        *o = a * b;
    }
}

/// Element-wise reciprocal `out = 1 ./ x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn ew_recip(x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "ew_recip length mismatch");
    for (o, &a) in out.iter_mut().zip(x) {
        *o = 1.0 / a;
    }
}

/// Element-wise Euclidean projection onto the box `[l, u]`:
/// `out_i = min(max(x_i, l_i), u_i)` — the `Π` operator of Algorithm 1.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn project_box(x: &[f64], l: &[f64], u: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), l.len(), "project_box lower length mismatch");
    assert_eq!(x.len(), u.len(), "project_box upper length mismatch");
    assert_eq!(x.len(), out.len(), "project_box output length mismatch");
    for i in 0..x.len() {
        out[i] = x[i].max(l[i]).min(u[i]);
    }
}

/// Scaled infinity norm `max |d_i * x_i|`, used by the unscaled termination
/// criteria of OSQP.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn scaled_inf_norm(d: &[f64], x: &[f64]) -> f64 {
    assert_eq!(d.len(), x.len(), "scaled_inf_norm length mismatch");
    d.iter().zip(x).fold(0.0f64, |m, (a, b)| m.max((a * b).abs()))
}

// ---------------------------------------------------------------------------
// Parallel variants.
//
// Reductions (`dot_par`, `norm2_par`) switch to a fixed chunk grid above
// `PAR_LEN_THRESHOLD` elements. The grid depends only on the length, and
// partial sums are combined in chunk order, so results are bit-identical
// across thread counts (including a serial pool) — though above the
// threshold they may differ from the single-pass serial kernels by normal
// floating-point regrouping error. Elementwise variants are bit-identical
// to their serial kernels under every pool, and simply skip the pool when
// it is serial or the vector is short.
// ---------------------------------------------------------------------------

use rsqp_par::{reduce_chunk_len, ThreadPool, ELEM_CHUNK, PAR_LEN_THRESHOLD};

/// Dot product `xᵀy` on a [`ThreadPool`] (ordered chunked reduction).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_par(x: &[f64], y: &[f64], pool: &ThreadPool) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    if x.len() < PAR_LEN_THRESHOLD {
        return dot(x, y);
    }
    let chunk = reduce_chunk_len(x.len());
    pool.par_sum(x.len(), chunk, |r| dot(&x[r.clone()], &y[r]))
}

/// Euclidean norm on a [`ThreadPool`] (ordered chunked reduction).
pub fn norm2_par(x: &[f64], pool: &ThreadPool) -> f64 {
    dot_par(x, x, pool).sqrt()
}

/// `y = a*x + b*y` on a [`ThreadPool`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn lincomb_par(a: f64, x: &[f64], b: f64, y: &mut [f64], pool: &ThreadPool) {
    assert_eq!(x.len(), y.len(), "lincomb length mismatch");
    if pool.is_serial() || y.len() < PAR_LEN_THRESHOLD {
        return lincomb(a, x, b, y);
    }
    pool.par_chunks_uniform(y, ELEM_CHUNK, |lo, chunk| {
        lincomb(a, &x[lo..lo + chunk.len()], b, chunk);
    });
}

/// `y += a*x` on a [`ThreadPool`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy_par(a: f64, x: &[f64], y: &mut [f64], pool: &ThreadPool) {
    lincomb_par(a, x, 1.0, y, pool);
}

/// `out_i = min(max(x_i, l_i), u_i)` on a [`ThreadPool`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn project_box_par(x: &[f64], l: &[f64], u: &[f64], out: &mut [f64], pool: &ThreadPool) {
    assert_eq!(x.len(), out.len(), "project_box length mismatch");
    assert_eq!(l.len(), out.len(), "project_box length mismatch");
    assert_eq!(u.len(), out.len(), "project_box length mismatch");
    if pool.is_serial() || out.len() < PAR_LEN_THRESHOLD {
        return project_box(x, l, u, out);
    }
    pool.par_chunks_uniform(out, ELEM_CHUNK, |lo, chunk| {
        let hi = lo + chunk.len();
        project_box(&x[lo..hi], &l[lo..hi], &u[lo..hi], chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(inf_norm(&[-3.0, 2.0]), 3.0);
        assert_eq!(inf_norm(&[]), 0.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn lincomb_general() {
        let mut y = vec![1.0, 1.0];
        lincomb(2.0, &[1.0, 2.0], -1.0, &mut y);
        assert_eq!(y, vec![1.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 0.0];
        axpy(0.5, &[2.0, 4.0], &mut y);
        assert_eq!(y, vec![2.0, 2.0]);
    }

    #[test]
    fn sub_and_ew() {
        let mut out = vec![0.0; 2];
        sub(&[3.0, 1.0], &[1.0, 1.0], &mut out);
        assert_eq!(out, vec![2.0, 0.0]);
        ew_mul(&[2.0, 3.0], &[4.0, 5.0], &mut out);
        assert_eq!(out, vec![8.0, 15.0]);
        ew_recip(&[2.0, 4.0], &mut out);
        assert_eq!(out, vec![0.5, 0.25]);
    }

    #[test]
    fn projection_clamps_both_sides() {
        let mut out = vec![0.0; 3];
        project_box(&[-5.0, 0.5, 5.0], &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn projection_handles_infinite_bounds() {
        let mut out = vec![0.0; 2];
        project_box(
            &[-1e30, 1e30],
            &[f64::NEG_INFINITY, f64::NEG_INFINITY],
            &[f64::INFINITY, f64::INFINITY],
            &mut out,
        );
        assert_eq!(out, vec![-1e30, 1e30]);
    }

    #[test]
    fn scaled_norm() {
        assert_eq!(scaled_inf_norm(&[2.0, 1.0], &[1.0, -5.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
