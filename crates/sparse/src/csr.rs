use rsqp_par::ThreadPool;

use crate::{CooMatrix, CscMatrix, RowPartition, SparseError};

/// Compressed sparse row matrix with `f64` values.
///
/// This is the working format of the reproduction: the problem matrices `P`,
/// `A` and `Aᵀ` are stored in CSR and streamed row-by-row to the (simulated)
/// SpMV engine, mirroring how RSQP lays the non-zero values out contiguously
/// in HBM.
///
/// Invariants (checked by [`CsrMatrix::from_raw_parts`]):
/// * `indptr.len() == nrows + 1`, `indptr[0] == 0`, non-decreasing,
/// * `indices` are strictly increasing within each row and `< ncols`,
/// * `data.len() == indices.len() == indptr[nrows]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the arrays do not satisfy
    /// the invariants listed on [`CsrMatrix`].
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "indptr length {} != nrows + 1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidStructure("indptr[0] must be 0".into()));
        }
        if *indptr.last().expect("indptr is non-empty") != indices.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indptr[last] {} != indices length {}",
                indptr[nrows],
                indices.len()
            )));
        }
        if indices.len() != data.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indices length {} != data length {}",
                indices.len(),
                data.len()
            )));
        }
        for r in 0..nrows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!("indptr decreases at row {r}")));
            }
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} has unsorted or duplicate column indices"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} has column index {last} >= ncols {ncols}"
                    )));
                }
            }
        }
        Ok(CsrMatrix { nrows, ncols, indptr, indices, data })
    }

    /// Builds a CSR matrix from a triplet list (duplicates summed).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut coo = CooMatrix::new(nrows, ncols);
        coo.extend(triplets);
        coo.to_csr()
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_diag(&vec![1.0; n])
    }

    /// An empty (all-zero) matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// A square diagonal matrix with the given diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: diag.to_vec(),
        }
    }

    /// Builds from a dense row-major matrix, dropping exact zeros.
    pub fn from_dense(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut coo = CooMatrix::new(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "ragged dense matrix");
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable value array (structure stays fixed).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Stored value at `(i, j)`, or `0.0` if the coordinate is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Computes `y = self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != ncols` or
    /// `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.check_spmv_dims(x, y)?;
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        Ok(())
    }

    /// Computes `y += alpha * self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
    pub fn spmv_acc(&self, alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.check_spmv_dims(x, y)?;
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            y[i] += alpha * acc;
        }
        Ok(())
    }

    /// Computes `y = selfᵀ * x` without materializing the transpose.
    ///
    /// This is a **scatter** kernel: each source row adds into output
    /// positions spread across all of `y`, so it walks the output with no
    /// locality and cannot be row-parallelized without atomics. It is the
    /// right choice when the transpose is applied once (problem setup,
    /// polish); repeated applications — the reduced KKT operator evaluates
    /// `Aᵀv` on every PCG iteration — should build a
    /// [`crate::TransposeCache`] once and use its gather SpMV instead.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != nrows` or
    /// `y.len() != ncols`.
    pub fn spmv_transpose(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "spmv_transpose input",
                expected: self.nrows,
                found: x.len(),
            });
        }
        if y.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "spmv_transpose output",
                expected: self.ncols,
                found: y.len(),
            });
        }
        y.fill(0.0);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let xi = x[i];
            for (&j, &v) in cols.iter().zip(vals) {
                y[j] += v * xi;
            }
        }
        Ok(())
    }

    fn check_spmv_dims(&self, x: &[f64], y: &[f64]) -> Result<(), SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "spmv input",
                expected: self.ncols,
                found: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "spmv output",
                expected: self.nrows,
                found: y.len(),
            });
        }
        Ok(())
    }

    /// Materializes the transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let dst = next[j];
                indices[dst] = i;
                data[dst] = v;
                next[j] += 1;
            }
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, indptr: counts, indices, data }
    }

    /// Converts to CSC storage.
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_raw_parts(self.nrows, self.ncols, t.indptr, t.indices, t.data)
            .expect("transpose of a valid CSR is a valid CSC")
    }

    /// Converts to a dense row-major representation.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                out[i][j] = v;
            }
        }
        out
    }

    /// Returns the diagonal (length `min(nrows, ncols)`), with zeros for
    /// unstored diagonal entries.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Scales row `i` by `d[i]` in place (left multiplication by `diag(d)`).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != nrows`.
    pub fn scale_rows(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.nrows, "row scaling length mismatch");
        for i in 0..self.nrows {
            let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
            for v in &mut self.data[lo..hi] {
                *v *= d[i];
            }
        }
    }

    /// Scales column `j` by `d[j]` in place (right multiplication by
    /// `diag(d)`).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != ncols`.
    pub fn scale_cols(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.ncols, "column scaling length mismatch");
        for (v, &j) in self.data.iter_mut().zip(&self.indices) {
            *v *= d[j];
        }
    }

    /// Returns a copy with rows reordered so that new row `i` is old row
    /// `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..nrows`.
    pub fn permute_rows(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        let mut seen = vec![false; self.nrows];
        for &p in perm {
            assert!(p < self.nrows && !seen[p], "perm is not a permutation");
            seen[p] = true;
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut data = Vec::with_capacity(self.nnz());
        indptr.push(0);
        for &old in perm {
            let (cols, vals) = self.row(old);
            indices.extend_from_slice(cols);
            data.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        CsrMatrix { nrows: self.nrows, ncols: self.ncols, indptr, indices, data }
    }

    /// Returns a copy with columns reordered so that new column `j` holds old
    /// column `perm[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..ncols`.
    pub fn permute_cols(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(perm.len(), self.ncols, "permutation length mismatch");
        // inverse map: old column -> new column
        let mut inv = vec![usize::MAX; self.ncols];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < self.ncols && inv[old] == usize::MAX, "perm is not a permutation");
            inv[old] = new;
        }
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(i, inv[j], v);
            }
        }
        coo.to_csr()
    }

    /// Applies `f` to every stored value, keeping the structure.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// The number of stored entries per row (the paper's `nnz_row`, the basis
    /// of the sparsity string encoding).
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.nrows).map(|i| self.row_nnz(i)).collect()
    }

    /// Column-wise sums of squared values, i.e. `diag(selfᵀ · self)`.
    ///
    /// Used to build the Jacobi preconditioner for the reduced KKT operator
    /// `P + σI + ρ AᵀA` without forming `AᵀA`.
    pub fn column_sq_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.ncols];
        for (&j, &v) in self.indices.iter().zip(&self.data) {
            out[j] += v * v;
        }
        out
    }

    /// Extracts the upper triangle (including the diagonal). Only meaningful
    /// for square matrices; used when assembling the KKT matrix for LDLᵀ.
    pub fn upper_triangle(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j >= i {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// `max |value|` over stored entries of each column.
    pub fn column_inf_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.ncols];
        for (&j, &v) in self.indices.iter().zip(&self.data) {
            out[j] = out[j].max(v.abs());
        }
        out
    }

    /// `max |value|` over stored entries of each row.
    pub fn row_inf_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let (_, vals) = self.row(i);
            out[i] = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        CsrMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn spmv_matches_dense() {
        let m = example();
        let mut y = vec![0.0; 2];
        m.spmv(&[1.0, 2.0, 3.0], &mut y).unwrap();
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn spmv_dimension_errors() {
        let m = example();
        let mut y = vec![0.0; 2];
        assert!(matches!(m.spmv(&[1.0], &mut y), Err(SparseError::DimensionMismatch { .. })));
        let mut bad_y = vec![0.0; 1];
        assert!(m.spmv(&[1.0, 2.0, 3.0], &mut bad_y).is_err());
    }

    #[test]
    fn spmv_transpose_matches_materialized() {
        let m = example();
        let t = m.transpose();
        let x = vec![2.0, -1.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        m.spmv_transpose(&x, &mut y1).unwrap();
        t.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let m = example();
        let mut y = vec![1.0, 1.0];
        m.spmv_acc(2.0, &[1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, vec![1.0 + 2.0 * 3.0, 1.0 + 2.0 * 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = example();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn csc_roundtrip() {
        let m = example();
        assert_eq!(m.to_csc().to_csr(), m);
    }

    #[test]
    fn identity_and_diag() {
        let i3 = CsrMatrix::identity(3);
        assert_eq!(i3.diagonal(), vec![1.0, 1.0, 1.0]);
        let d = CsrMatrix::from_diag(&[2.0, 3.0]);
        let mut y = vec![0.0; 2];
        d.spmv(&[1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn from_dense_drops_zeros() {
        let m = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense(), vec![vec![0.0, 1.0], vec![2.0, 0.0]]);
    }

    #[test]
    fn scale_rows_and_cols() {
        let mut m = example();
        m.scale_rows(&[2.0, 3.0]);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(1, 1), 9.0);
        m.scale_cols(&[1.0, 0.5, 1.0]);
        assert_eq!(m.get(1, 1), 4.5);
    }

    #[test]
    fn permute_rows_reorders() {
        let m = example();
        let p = m.permute_rows(&[1, 0]);
        assert_eq!(p.get(0, 1), 3.0);
        assert_eq!(p.get(1, 0), 1.0);
    }

    #[test]
    fn permute_cols_reorders() {
        let m = example();
        // new col 0 <- old col 2, new col 1 <- old col 0, new col 2 <- old col 1
        let p = m.permute_cols(&[2, 0, 1]);
        assert_eq!(p.get(0, 0), 2.0);
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(1, 2), 3.0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        example().permute_rows(&[0, 0]);
    }

    #[test]
    fn invalid_structure_rejected() {
        // indptr wrong length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // unsorted columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        // data length mismatch
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![]).is_err());
        // decreasing indptr
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn upper_triangle_of_symmetric() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)],
        );
        let u = m.upper_triangle();
        assert_eq!(u.nnz(), 3);
        assert_eq!(u.get(1, 0), 0.0);
        assert_eq!(u.get(0, 1), 1.0);
    }

    #[test]
    fn column_sq_norms_match_transpose_product() {
        let m = example();
        let sq = m.column_sq_norms();
        assert_eq!(sq, vec![1.0, 9.0, 4.0]);
    }

    #[test]
    fn norms_per_row_and_col() {
        let m = example();
        assert_eq!(m.row_inf_norms(), vec![2.0, 3.0]);
        assert_eq!(m.column_inf_norms(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn map_values_keeps_structure() {
        let m = example().map_values(|v| -v);
        assert_eq!(m.get(0, 0), -1.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn row_nnz_counts() {
        assert_eq!(example().row_nnz_counts(), vec![2, 1]);
    }
}

impl CsrMatrix {
    /// Computes `y = self * x` with `threads` worker threads (row-block
    /// parallel). Matches [`CsrMatrix::spmv`] bit-for-bit per row since each
    /// row's dot product is evaluated in the same order.
    ///
    /// The multi-threaded CPU path mirrors the paper's baseline, which runs
    /// MKL's SpMV on 8 threads (§5.1).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
    pub fn spmv_parallel(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
    ) -> Result<(), SparseError> {
        self.check_spmv_dims(x, y)?;
        let threads = threads.max(1).min(self.nrows.max(1));
        if threads == 1 || self.nrows < 256 {
            return self.spmv(x, y);
        }
        // Split rows into contiguous blocks with roughly equal nnz.
        let total = self.nnz();
        let per_block = total.div_ceil(threads).max(1);
        let mut bounds = vec![0usize];
        let mut acc = 0usize;
        for i in 0..self.nrows {
            acc += self.row_nnz(i);
            if acc >= per_block * bounds.len() && bounds.len() < threads {
                bounds.push(i + 1);
            }
        }
        bounds.push(self.nrows);
        bounds.dedup();

        let mut slices: Vec<&mut [f64]> = Vec::new();
        let mut rest = y;
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            slices.push(head);
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (block, ys) in slices.into_iter().enumerate() {
                let lo = bounds[block];
                scope.spawn(move || {
                    for (k, yi) in ys.iter_mut().enumerate() {
                        let i = lo + k;
                        let (cols, vals) = self.row(i);
                        let mut acc = 0.0;
                        for (&j, &v) in cols.iter().zip(vals) {
                            acc += v * x[j];
                        }
                        *yi = acc;
                    }
                });
            }
        });
        Ok(())
    }

    /// Computes `y = self * x` on a reusable [`ThreadPool`] over a
    /// precomputed [`RowPartition`].
    ///
    /// Unlike [`CsrMatrix::spmv_parallel`], which spawns fresh threads per
    /// call, this dispatches to an existing pool with no per-call
    /// allocation — the shape the PCG inner loop needs. Bit-identical to
    /// [`CsrMatrix::spmv`] for any pool and any partition, because each
    /// row's dot product is still accumulated left-to-right by one thread.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch or when
    /// the partition does not cover this matrix's rows.
    pub fn spmv_partitioned(
        &self,
        x: &[f64],
        y: &mut [f64],
        pool: &ThreadPool,
        partition: &RowPartition,
    ) -> Result<(), SparseError> {
        self.check_spmv_dims(x, y)?;
        if partition.nrows() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "spmv partition rows",
                expected: self.nrows,
                found: partition.nrows(),
            });
        }
        if pool.is_serial() || partition.num_chunks() <= 1 {
            return self.spmv(x, y);
        }
        pool.par_chunks(y, partition.bounds(), |_, lo, chunk| {
            for (k, yi) in chunk.iter_mut().enumerate() {
                let (cols, vals) = self.row(lo + k);
                let mut acc = 0.0;
                for (&j, &v) in cols.iter().zip(vals) {
                    acc += v * x[j];
                }
                *yi = acc;
            }
        });
        Ok(())
    }

    /// Computes `y += alpha * self * x` on a reusable [`ThreadPool`] over a
    /// precomputed [`RowPartition`]. See [`CsrMatrix::spmv_partitioned`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch or when
    /// the partition does not cover this matrix's rows.
    pub fn spmv_acc_partitioned(
        &self,
        alpha: f64,
        x: &[f64],
        y: &mut [f64],
        pool: &ThreadPool,
        partition: &RowPartition,
    ) -> Result<(), SparseError> {
        self.check_spmv_dims(x, y)?;
        if partition.nrows() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "spmv partition rows",
                expected: self.nrows,
                found: partition.nrows(),
            });
        }
        if pool.is_serial() || partition.num_chunks() <= 1 {
            return self.spmv_acc(alpha, x, y);
        }
        pool.par_chunks(y, partition.bounds(), |_, lo, chunk| {
            for (k, yi) in chunk.iter_mut().enumerate() {
                let (cols, vals) = self.row(lo + k);
                let mut acc = 0.0;
                for (&j, &v) in cols.iter().zip(vals) {
                    acc += v * x[j];
                }
                *yi += alpha * acc;
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn big_matrix() -> CsrMatrix {
        let n = 700;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0 + (i % 7) as f64));
            t.push((i, (i * 13 + 1) % n, -0.5));
            if i % 3 == 0 {
                t.push((i, (i * 29 + 5) % n, 0.25));
            }
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let m = big_matrix();
        let x: Vec<f64> = (0..m.ncols()).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let mut y1 = vec![0.0; m.nrows()];
        let mut y2 = vec![0.0; m.nrows()];
        m.spmv(&x, &mut y1).unwrap();
        for threads in [1, 2, 4, 8, 1000] {
            m.spmv_parallel(&x, &mut y2, threads).unwrap();
            assert_eq!(y1, y2, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_small_matrix_falls_back() {
        let m = CsrMatrix::identity(4);
        let mut y = vec![0.0; 4];
        m.spmv_parallel(&[1.0, 2.0, 3.0, 4.0], &mut y, 8).unwrap();
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn parallel_checks_dimensions() {
        let m = big_matrix();
        let mut y = vec![0.0; 3];
        assert!(m.spmv_parallel(&vec![0.0; m.ncols()], &mut y, 4).is_err());
    }
}
