//! Matrix Market (`.mtx`) import/export.
//!
//! Supports the `matrix coordinate real general|symmetric` formats, which
//! covers the matrices of the QP benchmark ecosystems (SuiteSparse, the
//! OSQP benchmark dumps). Symmetric inputs are expanded to full storage on
//! read, matching how this workspace stores `P`.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{CooMatrix, CsrMatrix, SparseError};

/// Writes a matrix in `matrix coordinate real general` format (1-based
/// indices, one entry per line).
///
/// # Errors
///
/// Propagates I/O errors. A mutable reference also works as the writer.
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by rsqp-sparse")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for i in 0..m.nrows() {
        let (cols, vals) = m.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:?}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

/// Reads a `matrix coordinate real` file (general or symmetric).
///
/// # Errors
///
/// Returns [`SparseError::InvalidStructure`] for malformed headers, counts,
/// or out-of-range indices; I/O errors are mapped to the same variant with
/// the underlying message.
pub fn read_matrix_market<R: Read>(r: R) -> Result<CsrMatrix, SparseError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::InvalidStructure("empty file".into()))?
        .map_err(io_err)?;
    let header_l = header.to_lowercase();
    if !header_l.starts_with("%%matrixmarket matrix coordinate real") {
        return Err(SparseError::InvalidStructure(format!(
            "unsupported MatrixMarket header: {header}"
        )));
    }
    let symmetric = header_l.contains("symmetric");
    if !symmetric && !header_l.contains("general") {
        return Err(SparseError::InvalidStructure(
            "only general and symmetric layouts are supported".into(),
        ));
    }

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(io_err)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line =
        size_line.ok_or_else(|| SparseError::InvalidStructure("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| SparseError::InvalidStructure(format!("bad size line: {size_line}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::InvalidStructure(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(io_err)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (i, j, v) = match (it.next(), it.next(), it.next()) {
            (Some(i), Some(j), Some(v)) => (i, j, v),
            _ => return Err(SparseError::InvalidStructure(format!("bad entry line: {t}"))),
        };
        let i: usize =
            i.parse().map_err(|_| SparseError::InvalidStructure(format!("bad row index: {t}")))?;
        let j: usize = j
            .parse()
            .map_err(|_| SparseError::InvalidStructure(format!("bad column index: {t}")))?;
        let v: f64 =
            v.parse().map_err(|_| SparseError::InvalidStructure(format!("bad value: {t}")))?;
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: i.max(j),
                bound: nrows.max(ncols) + 1,
            });
        }
        coo.push(i - 1, j - 1, v);
        if symmetric && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::InvalidStructure(format!(
            "size line promised {nnz} entries, found {seen}"
        )));
    }
    Ok(coo.to_csr())
}

fn io_err(e: std::io::Error) -> SparseError {
    SparseError::InvalidStructure(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let m = CsrMatrix::from_triplets(3, 4, vec![(0, 0, 1.5), (0, 3, -2.0), (2, 1, 0.25)]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn reads_symmetric_as_full() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n".as_bytes())
            .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn values_survive_exactly() {
        // {:?} prints f64 with round-trip precision.
        let m = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 0.1 + 0.2)]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.get(0, 0).to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn preserves_explicit_dims_with_empty_rows() {
        let m = CsrMatrix::from_triplets(5, 7, vec![(4, 6, 1.0)]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!((back.nrows(), back.ncols()), (5, 7));
    }
}
