//! Property tests for the deterministic parallel kernel layer.
//!
//! Two guarantees are asserted:
//!
//! * **parallel == serial** — every `_par` kernel and partitioned SpMV
//!   produces the same result as its serial counterpart (bitwise where the
//!   contract promises it, within an ulp-scaled tolerance otherwise);
//! * **thread-count independence** — results are *bit-identical* across
//!   pools of 1, 2, and 8 threads, because chunk grids depend only on the
//!   input, never on the pool.

use proptest::prelude::*;
use rsqp_par::ThreadPool;
use rsqp_sparse::{vec_ops, CooMatrix, CsrMatrix, RowPartition, TransposeCache};

/// Pool sizes the determinism contract is checked over.
const POOLS: [usize; 3] = [1, 2, 8];

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

/// Random sparse matrix with `nrows x ncols` shape and ~`density` fill.
fn arb_csr(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec((0..nrows, 0..ncols, -10.0f64..10.0), 1..(nrows * ncols).min(400))
        .prop_map(move |triplets| {
            let mut coo = CooMatrix::new(nrows, ncols);
            for (i, j, v) in triplets {
                coo.push(i, j, v);
            }
            coo.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // `dot_par` is bit-identical across pool sizes, and within an
    // ulp-scaled tolerance of the serial left-to-right sum (the chunked
    // reduction reassociates, so bitwise equality with `dot` is not
    // promised above the serial-fallback threshold).
    #[test]
    fn dot_par_matches_serial_and_pools(len in 1usize..20_000, seed in 0u64..1000) {
        let x: Vec<f64> = (0..len).map(|i| ((seed + i as u64) % 17) as f64 - 8.0).collect();
        let y: Vec<f64> = (0..len).map(|i| ((seed + 3 * i as u64) % 13) as f64 - 6.0).collect();
        let serial = vec_ops::dot(&x, &y);
        let mut bits = Vec::new();
        for threads in POOLS {
            let pool = ThreadPool::new(threads);
            let par = vec_ops::dot_par(&x, &y, &pool);
            let scale = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum::<f64>().max(1.0);
            prop_assert!(
                (par - serial).abs() <= 1e-12 * scale,
                "dot_par {} vs serial {} at len {}", par, serial, len
            );
            bits.push(par.to_bits());
        }
        prop_assert!(bits.windows(2).all(|w| w[0] == w[1]), "dot_par varies across pools");
    }

    // `norm2_par` is bit-identical across pools.
    #[test]
    fn norm2_par_is_pool_independent(x in arb_vec(1000)) {
        let mut bits = Vec::new();
        for threads in POOLS {
            let pool = ThreadPool::new(threads);
            bits.push(vec_ops::norm2_par(&x, &pool).to_bits());
        }
        prop_assert!(bits.windows(2).all(|w| w[0] == w[1]));
        let serial = vec_ops::norm2(&x);
        let pool = ThreadPool::new(2);
        prop_assert!((vec_ops::norm2_par(&x, &pool) - serial).abs() <= 1e-12 * (1.0 + serial));
    }

    // Elementwise `_par` kernels are *bitwise* equal to their serial
    // counterparts for any pool size (each element's arithmetic is
    // identical; only the writer thread differs).
    #[test]
    fn elementwise_par_bitwise_serial(
        x in arb_vec(300),
        y in arb_vec(300),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        let mut want = y.clone();
        vec_ops::lincomb(a, &x, b, &mut want);
        for threads in POOLS {
            let pool = ThreadPool::new(threads);
            let mut got = y.clone();
            vec_ops::lincomb_par(a, &x, b, &mut got, &pool);
            prop_assert!(
                want.iter().zip(&got).all(|(w, g)| w.to_bits() == g.to_bits()),
                "lincomb_par differs from lincomb at {} threads", threads
            );
        }
        let l: Vec<f64> = x.iter().map(|v| v - 1.0).collect();
        let u: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
        let mut want_p = vec![0.0; y.len()];
        vec_ops::project_box(&y, &l, &u, &mut want_p);
        for threads in POOLS {
            let pool = ThreadPool::new(threads);
            let mut got_p = vec![0.0; y.len()];
            vec_ops::project_box_par(&y, &l, &u, &mut got_p, &pool);
            prop_assert!(want_p.iter().zip(&got_p).all(|(w, g)| w.to_bits() == g.to_bits()));
        }
    }

    // Partitioned SpMV is bitwise equal to the serial kernel: each output
    // row is an independent left-to-right dot product regardless of which
    // chunk computes it.
    #[test]
    fn spmv_partitioned_bitwise_serial(m in arb_csr(40, 30), x in arb_vec(30)) {
        let mut want = vec![0.0; m.nrows()];
        m.spmv(&x, &mut want).unwrap();
        for threads in POOLS {
            let pool = ThreadPool::new(threads);
            for chunks in [1usize, 3, 16] {
                let part = RowPartition::balanced(&m, chunks);
                let mut got = vec![0.0; m.nrows()];
                m.spmv_partitioned(&x, &mut got, &pool, &part).unwrap();
                prop_assert!(
                    want.iter().zip(&got).all(|(w, g)| w.to_bits() == g.to_bits()),
                    "spmv_partitioned differs at {} threads / {} chunks", threads, chunks
                );
            }
        }
    }

    // The gather transpose is bitwise equal to the scatter kernel and
    // tracks value updates through `refresh_values`.
    #[test]
    fn transpose_cache_bitwise_scatter(m in arb_csr(25, 35), x in arb_vec(25)) {
        let cache = TransposeCache::new(&m);
        let mut scatter = vec![0.0; m.ncols()];
        m.spmv_transpose(&x, &mut scatter).unwrap();
        let mut gather = vec![0.0; m.ncols()];
        cache.spmv(&x, &mut gather).unwrap();
        prop_assert!(scatter.iter().zip(&gather).all(|(s, g)| s.to_bits() == g.to_bits()));

        // Same pattern, new values: refresh must track exactly.
        let mut m2 = m.clone();
        for v in m2.data_mut() {
            *v *= -1.5;
        }
        let mut cache2 = cache.clone();
        cache2.refresh_values(&m2).unwrap();
        let mut scatter2 = vec![0.0; m.ncols()];
        m2.spmv_transpose(&x, &mut scatter2).unwrap();
        let mut gather2 = vec![0.0; m.ncols()];
        cache2.spmv(&x, &mut gather2).unwrap();
        prop_assert!(scatter2.iter().zip(&gather2).all(|(s, g)| s.to_bits() == g.to_bits()));
    }
}
