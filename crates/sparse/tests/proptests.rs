//! Property-based tests for the sparse kernels.

use proptest::prelude::*;
use rsqp_sparse::{vec_ops, CooMatrix, CsrMatrix};

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..16, 1usize..16).prop_flat_map(|(r, c)| {
        let triplet = (0..r, 0..c, -10.0f64..10.0);
        (Just(r), Just(c), prop::collection::vec(triplet, 0..60))
    })
}

fn dense_of(triplets: &[(usize, usize, f64)], r: usize, c: usize) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; c]; r];
    for &(i, j, v) in triplets {
        d[i][j] += v;
    }
    d
}

proptest! {
    #[test]
    fn csr_matches_dense_spmv((r, c, ts) in arb_matrix(), seed in 0u64..1000) {
        let mut coo = CooMatrix::new(r, c);
        coo.extend(ts.iter().copied());
        let m = coo.to_csr();
        let dense = dense_of(&ts, r, c);
        // deterministic pseudo-random input vector
        let x: Vec<f64> = (0..c).map(|j| ((seed + j as u64) % 7) as f64 - 3.0).collect();
        let mut y = vec![0.0; r];
        m.spmv(&x, &mut y).unwrap();
        for i in 0..r {
            let want: f64 = (0..c).map(|j| dense[i][j] * x[j]).sum();
            prop_assert!((y[i] - want).abs() < 1e-9, "row {} got {} want {}", i, y[i], want);
        }
    }

    #[test]
    fn transpose_is_involutive((r, c, ts) in arb_matrix()) {
        let m = CsrMatrix::from_triplets(r, c, ts);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn csc_roundtrip((r, c, ts) in arb_matrix()) {
        let m = CsrMatrix::from_triplets(r, c, ts);
        prop_assert_eq!(m.to_csc().to_csr(), m);
    }

    #[test]
    fn spmv_transpose_agrees_with_materialized((r, c, ts) in arb_matrix()) {
        let m = CsrMatrix::from_triplets(r, c, ts);
        let x: Vec<f64> = (0..r).map(|i| (i as f64) - 2.0).collect();
        let mut y1 = vec![0.0; c];
        let mut y2 = vec![0.0; c];
        m.spmv_transpose(&x, &mut y1).unwrap();
        m.transpose().spmv(&x, &mut y2).unwrap();
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn row_permutation_preserves_multiset_of_rows((r, c, ts) in arb_matrix()) {
        let m = CsrMatrix::from_triplets(r, c, ts);
        let perm: Vec<usize> = (0..r).rev().collect();
        let p = m.permute_rows(&perm);
        for i in 0..r {
            prop_assert_eq!(p.row(i), m.row(perm[i]));
        }
    }

    #[test]
    fn upper_plus_lower_reconstructs_symmetric(n in 1usize..10, ts in prop::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 0..40)) {
        // Build a symmetric matrix M = B + Bᵀ, take its upper triangle, and
        // verify symm_spmv_upper equals the full product.
        let ts: Vec<_> = ts.into_iter().filter(|&(i, j, _)| i < n && j < n).collect();
        let b = CsrMatrix::from_triplets(n, n, ts);
        let bt = b.transpose();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let (cols, vals) = b.row(i);
            for (&j, &v) in cols.iter().zip(vals) { coo.push(i, j, v); }
            let (cols, vals) = bt.row(i);
            for (&j, &v) in cols.iter().zip(vals) { coo.push(i, j, v); }
        }
        let full = coo.to_csr();
        let upper = full.upper_triangle().to_csc();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 1.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        full.spmv(&x, &mut y1).unwrap();
        upper.symm_spmv_upper(&x, &mut y2).unwrap();
        for (a, bb) in y1.iter().zip(&y2) {
            prop_assert!((a - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn vec_ops_lincomb_is_linear(x in prop::collection::vec(-10.0f64..10.0, 1..20), a in -3.0f64..3.0) {
        let y0: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let mut y = y0.clone();
        vec_ops::lincomb(a, &x, 1.0, &mut y);
        for i in 0..x.len() {
            prop_assert!((y[i] - (y0[i] + a * x[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_is_idempotent(x in prop::collection::vec(-10.0f64..10.0, 1..20)) {
        let l: Vec<f64> = x.iter().map(|_| -1.0).collect();
        let u: Vec<f64> = x.iter().map(|_| 1.0).collect();
        let mut once = vec![0.0; x.len()];
        vec_ops::project_box(&x, &l, &u, &mut once);
        let mut twice = vec![0.0; x.len()];
        vec_ops::project_box(&once, &l, &u, &mut twice);
        prop_assert_eq!(once, twice);
    }
}
