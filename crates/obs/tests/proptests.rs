//! Property-based tests for the metrics layer.
//!
//! Three properties the rest of the workspace leans on:
//!
//! * histogram bucket counts always sum to the number of observations
//!   (the total is *defined* as the bucket sum — there is no separate
//!   count cell to fall out of sync);
//! * concurrent counter increments from many threads lose no updates;
//! * snapshotting while writers are mid-flight never panics and never
//!   produces a torn view (counts only move forward, totals stay
//!   consistent with the per-bucket cells).

use std::sync::atomic::Ordering;

use proptest::prelude::*;
use rsqp_obs::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix of tiny, mid-range, and near-overflow samples so every bucket
    // regime (the 0 bucket, interior ones, the top catch-all) is hit.
    let sample =
        prop_oneof![0u64..16, 1u64..1_000_000, (u64::MAX - 1_000)..=u64::MAX, any::<u64>(),];
    prop::collection::vec(sample, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_counts_sum_to_observations(samples in arb_samples()) {
        let h = Histogram::default();
        for &v in &samples {
            h.observe(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), samples.len() as u64);
        // Every sample landed in a bucket whose range contains it.
        for (k, &count) in snap.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = if k == 0 { 0 } else { 1u64 << (k - 1) };
            let hi = if k == 0 {
                0
            } else if k >= 64 {
                u64::MAX
            } else {
                (1u64 << k) - 1
            };
            let in_range = samples.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
            prop_assert_eq!(count, in_range, "bucket {} [{}, {}]", k, lo, hi);
        }
        prop_assert_eq!(snap.sum, samples.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert!(snap.buckets.len() == HISTOGRAM_BUCKETS);
    }

    #[test]
    fn concurrent_counter_increments_lose_nothing(
        threads in 2usize..8,
        per_thread in 1u64..5_000,
    ) {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = registry.clone();
                scope.spawn(move || {
                    // Each thread resolves the handle by name itself: the
                    // registry must hand every thread the same cell.
                    let counter = registry.counter("shared");
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
        });
        prop_assert_eq!(registry.counter("shared").get(), threads as u64 * per_thread);
        prop_assert_eq!(registry.snapshot().counter("shared"), threads as u64 * per_thread);
    }

    #[test]
    fn snapshot_during_writes_never_tears(
        writers in 1usize..4,
        ops in 500u64..8_000,
    ) {
        let registry = MetricsRegistry::new();
        // Register up front so even a snapshot that races ahead of every
        // writer sees the instruments; the writer threads must get handed
        // these same cells by name.
        registry.counter("ops");
        registry.gauge("level");
        registry.histogram("latency");
        // Writers perform a *bounded* burst of updates (not a spin loop —
        // the CI host may have a single core) while the main thread keeps
        // snapshotting until every writer has exited; the assertions run
        // afterwards, on the collected snapshots.
        let live = std::sync::atomic::AtomicUsize::new(writers);
        let observed: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
            let live = &live;
            for w in 0..writers {
                let registry = registry.clone();
                scope.spawn(move || {
                    let counter = registry.counter("ops");
                    let gauge = registry.gauge("level");
                    let histogram = registry.histogram("latency");
                    let mut v = w as u64;
                    for _ in 0..ops {
                        counter.inc();
                        gauge.add(1);
                        gauge.sub(1);
                        histogram.observe(v % 1_000_000);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    }
                    live.fetch_sub(1, Ordering::Release);
                });
            }
            let mut taken = Vec::new();
            loop {
                let done = live.load(Ordering::Acquire) == 0;
                // Must not panic while writers are mid-flight.
                let snap = registry.snapshot();
                let hist = &snap.histograms["latency"];
                taken.push((snap.counter("ops"), hist.count(), hist.buckets.iter().sum::<u64>()));
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            taken
        });
        let mut last_count = 0u64;
        let mut last_obs = 0u64;
        for (count, obs, bucket_sum) in &observed {
            // Never torn, never backwards: the bucket sum *is* the total,
            // and counters are monotone.
            prop_assert!(*count >= last_count, "counter ran backwards");
            prop_assert!(*obs >= last_obs, "histogram lost observations");
            prop_assert_eq!(*bucket_sum, *obs);
            last_count = *count;
            last_obs = *obs;
        }
        // Quiesced: nothing lost, and gauge adds/subs balanced exactly.
        let total = writers as u64 * ops;
        prop_assert_eq!(observed.last().unwrap().0, total);
        prop_assert_eq!(observed.last().unwrap().1, total);
        prop_assert_eq!(registry.gauge("level").get(), 0);
    }
}
