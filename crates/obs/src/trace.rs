//! The machine-readable record of one solve.

use crate::json::JsonWriter;
use crate::span::SpanRecord;

/// Everything observed about a single ADMM iteration.
///
/// Residual fields are `NaN` on iterations where the solver did not run a
/// termination check (they are only computed every
/// `Settings::check_termination` iterations); JSON export turns those
/// into `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTrace {
    /// 1-based ADMM iteration number.
    pub iter: u64,
    /// Inner PCG iterations spent in this iteration's KKT solve (0 for
    /// direct backends).
    pub cg_iters: u64,
    /// Wall-clock nanoseconds inside the KKT backend this iteration.
    pub kkt_ns: u64,
    /// Base step size ρ̄ in effect after this iteration.
    pub rho_bar: f64,
    /// Unscaled primal residual (NaN when no check ran this iteration).
    pub prim_res: f64,
    /// Unscaled dual residual (NaN when no check ran this iteration).
    pub dual_res: f64,
}

/// A discrete solver event (ρ update, guard recovery, backend fallback,
/// polish outcome) anchored to the iteration it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// ADMM iteration the event occurred at (0 for pre-loop events).
    pub iter: u64,
    /// Event class, e.g. `"rho_update"`, `"guard_recovery"`,
    /// `"backend_fallback"`, `"polish"`.
    pub kind: String,
    /// Human- and machine-readable detail string.
    pub detail: String,
}

/// The full telemetry record of one [`Solver::solve`] call: identity,
/// timed phase spans, per-iteration records, and discrete events.
///
/// Produced by the solver when `Settings::trace` is enabled and carried
/// on `SolveResult::trace`; when tracing is disabled none of this is
/// allocated (the hot path stays allocation-free).
///
/// [`Solver::solve`]: ../rsqp_solver/struct.Solver.html#method.solve
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveTrace {
    /// Problem name (from `QpProblem::name`).
    pub problem: String,
    /// Number of decision variables.
    pub n: usize,
    /// Number of constraints.
    pub m: usize,
    /// Name of the KKT backend that finished the solve (the guard ladder
    /// may have replaced the one the solve started with).
    pub backend: String,
    /// Terminal status, as its display string.
    pub status: String,
    /// ADMM iterations performed.
    pub iterations: u64,
    /// Timed phase spans (setup → scaling → solve → polish; per-iteration
    /// KKT timing lives in [`IterationTrace::kkt_ns`], which is cheaper
    /// than one span object per iteration).
    pub spans: Vec<SpanRecord>,
    /// One record per ADMM iteration, in order.
    pub records: Vec<IterationTrace>,
    /// Discrete events, in occurrence order.
    pub events: Vec<TraceEvent>,
}

impl SolveTrace {
    /// Total inner PCG iterations across the whole solve.
    pub fn total_cg_iterations(&self) -> u64 {
        self.records.iter().map(|r| r.cg_iters).sum()
    }

    /// The records where a termination check ran (finite residuals).
    pub fn checked_records(&self) -> impl Iterator<Item = &IterationTrace> {
        self.records.iter().filter(|r| r.prim_res.is_finite())
    }

    /// Full JSON export, including wall-clock spans and per-iteration
    /// KKT timings.
    pub fn to_json(&self) -> String {
        self.write_json(true)
    }

    /// Deterministic JSON subset for golden-file tests: identical runs
    /// (including runs at different kernel thread counts, which are
    /// bit-identical by the `rsqp-par` contract) produce byte-identical
    /// output. Excludes every wall-clock quantity.
    pub fn golden_json(&self) -> String {
        self.write_json(false)
    }

    fn write_json(&self, with_timings: bool) -> String {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.string("problem", &self.problem);
        w.u64("n", self.n as u64);
        w.u64("m", self.m as u64);
        w.string("backend", &self.backend);
        w.string("status", &self.status);
        w.u64("iterations", self.iterations);
        if with_timings {
            w.begin_array(Some("spans"));
            for span in &self.spans {
                span.write_json(&mut w);
            }
            w.end_array();
        }
        w.begin_array(Some("records"));
        for r in &self.records {
            w.begin_object(None);
            w.u64("iter", r.iter);
            w.u64("cg_iters", r.cg_iters);
            if with_timings {
                w.u64("kkt_ns", r.kkt_ns);
            }
            w.f64("rho_bar", r.rho_bar);
            w.f64("prim_res", r.prim_res);
            w.f64("dual_res", r.dual_res);
            w.end_object();
        }
        w.end_array();
        w.begin_array(Some("events"));
        for e in &self.events {
            w.begin_object(None);
            w.u64("iter", e.iter);
            w.string("kind", &e.kind);
            w.string("detail", &e.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut doc = w.finish();
        doc.push('\n');
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolveTrace {
        SolveTrace {
            problem: "control_2".into(),
            n: 4,
            m: 6,
            backend: "cpu-pcg".into(),
            status: "solved".into(),
            iterations: 2,
            spans: vec![SpanRecord { name: "solve".into(), depth: 0, start_ns: 0, end_ns: 10 }],
            records: vec![
                IterationTrace {
                    iter: 1,
                    cg_iters: 3,
                    kkt_ns: 5,
                    rho_bar: 0.1,
                    prim_res: f64::NAN,
                    dual_res: f64::NAN,
                },
                IterationTrace {
                    iter: 2,
                    cg_iters: 2,
                    kkt_ns: 4,
                    rho_bar: 0.1,
                    prim_res: 1e-5,
                    dual_res: 2e-5,
                },
            ],
            events: vec![TraceEvent { iter: 2, kind: "rho_update".into(), detail: "0.2".into() }],
        }
    }

    #[test]
    fn golden_json_excludes_timings() {
        let t = sample();
        let golden = t.golden_json();
        assert!(!golden.contains("kkt_ns"));
        assert!(!golden.contains("spans"));
        assert!(golden.contains("\"prim_res\":null"), "NaN must serialize as null: {golden}");
        assert!(golden.contains("\"rho_update\""));
        let full = t.to_json();
        assert!(full.contains("kkt_ns"));
        assert!(full.contains("\"spans\""));
    }

    #[test]
    fn derived_summaries() {
        let t = sample();
        assert_eq!(t.total_cg_iterations(), 5);
        assert_eq!(t.checked_records().count(), 1);
    }

    #[test]
    fn identical_traces_serialize_identically() {
        assert_eq!(sample().golden_json(), sample().golden_json());
    }
}
