//! Hierarchical timed phases: spans, timelines, and sinks.

use std::time::Instant;

use crate::json::JsonWriter;

/// One finished timed phase, with its nesting depth in the span tree.
///
/// Times are nanosecond offsets from the owning [`Timeline`]'s origin, so
/// a trace serialized on one machine stays meaningful on another (no
/// absolute clocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (e.g. `"setup"`, `"kkt_solve"`).
    pub name: String,
    /// 0 for root phases, +1 per enclosing open span.
    pub depth: u32,
    /// Start offset from the timeline origin, in nanoseconds.
    pub start_ns: u64,
    /// End offset from the timeline origin, in nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Serializes this span as one JSON object member of an open array.
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object(None);
        w.string("name", &self.name);
        w.u64("depth", u64::from(self.depth));
        w.u64("start_ns", self.start_ns);
        w.u64("end_ns", self.end_ns);
        w.end_object();
    }
}

/// A consumer of finished spans. The solver and runtime record through
/// this trait so harnesses can stream spans wherever they like; the
/// bundled [`VecSink`] simply collects them.
pub trait TraceSink {
    /// Receives one finished span.
    fn record(&mut self, span: SpanRecord);
}

/// The trivial sink: collects spans into a vector.
#[derive(Debug, Default)]
pub struct VecSink {
    /// Spans in completion (end-time) order.
    pub spans: Vec<SpanRecord>,
}

impl TraceSink for VecSink {
    fn record(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }
}

/// An identifier for an open span, returned by [`Timeline::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug)]
struct OpenSpan {
    name: String,
    depth: u32,
    start_ns: u64,
}

/// Builds a tree of timed spans against one clock origin.
///
/// Spans nest by call order: `start` pushes onto an open stack (depth =
/// stack height), `end` pops back to — and closes — the given span, so a
/// forgotten inner `end` cannot leave the stack unbalanced. Finished
/// spans are emitted in completion order.
#[derive(Debug)]
pub struct Timeline {
    origin: Instant,
    open: Vec<OpenSpan>,
    finished: Vec<SpanRecord>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// A timeline whose origin is now.
    pub fn new() -> Self {
        Timeline { origin: Instant::now(), open: Vec::new(), finished: Vec::new() }
    }

    /// Nanoseconds elapsed since the origin.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Opens a span named `name` starting now.
    pub fn start(&mut self, name: &str) -> SpanId {
        let start_ns = self.now_ns();
        self.open.push(OpenSpan {
            name: name.to_string(),
            depth: self.open.len() as u32,
            start_ns,
        });
        SpanId(self.open.len() - 1)
    }

    /// Closes `span` (and any still-open spans nested inside it) at the
    /// current time.
    pub fn end(&mut self, span: SpanId) {
        let end_ns = self.now_ns();
        while self.open.len() > span.0 {
            let s = self.open.pop().expect("stack length checked");
            self.finished.push(SpanRecord {
                name: s.name,
                depth: s.depth,
                start_ns: s.start_ns,
                end_ns,
            });
        }
    }

    /// Records an already-measured span verbatim (used to splice phases
    /// that happened before the timeline existed, e.g. solver setup).
    pub fn record_external(&mut self, name: &str, depth: u32, start_ns: u64, end_ns: u64) {
        self.finished.push(SpanRecord { name: name.to_string(), depth, start_ns, end_ns });
    }

    /// Finished spans so far, in completion order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.finished
    }

    /// Closes any still-open spans and returns all finished spans.
    pub fn finish(mut self) -> Vec<SpanRecord> {
        self.end(SpanId(0));
        self.finished
    }

    /// Drains finished spans into a sink (open spans stay open).
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        for span in self.finished.drain(..) {
            sink.record(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let mut t = Timeline::new();
        let outer = t.start("solve");
        let inner = t.start("kkt");
        t.end(inner);
        t.end(outer);
        let spans = t.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "kkt");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "solve");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[1].start_ns <= spans[0].start_ns);
        assert!(spans[1].end_ns >= spans[0].end_ns);
    }

    #[test]
    fn ending_an_outer_span_closes_inner_ones() {
        let mut t = Timeline::new();
        let outer = t.start("outer");
        let _inner = t.start("inner");
        t.end(outer);
        let spans = t.finish();
        assert_eq!(spans.len(), 2, "inner span must be force-closed");
    }

    #[test]
    fn external_spans_and_sinks() {
        let mut t = Timeline::new();
        t.record_external("setup", 0, 0, 1000);
        let mut sink = VecSink::default();
        t.drain_into(&mut sink);
        assert_eq!(sink.spans.len(), 1);
        assert_eq!(sink.spans[0].duration_ns(), 1000);
        assert!(t.spans().is_empty(), "drained spans must leave the timeline");
    }
}
