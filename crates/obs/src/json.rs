//! Minimal JSON emission, shared by the trace and metrics exporters.
//!
//! The workspace is offline and dependency-free, so instead of serde this
//! module provides a tiny push-style writer. Floats are emitted with
//! Rust's shortest-roundtrip formatting (`{:?}`), so a value parsed back
//! from the output is bit-identical to the one written — the property the
//! golden-trace tests rely on. Non-finite floats become `null` (JSON has
//! no NaN/Inf).

use std::fmt::Write as _;

/// A push-style JSON writer over an owned `String`.
///
/// Callers are responsible for the large-scale document structure (the
/// writer does not validate that objects and arrays are closed in order);
/// in exchange it is a zero-dependency, allocation-predictable building
/// block.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the next item at the current nesting level needs a comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.out
    }

    fn comma(&mut self) {
        if let Some(need) = self.needs_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`), optionally as the member `key` of the
    /// enclosing object.
    pub fn begin_object(&mut self, key: Option<&str>) {
        self.comma();
        if let Some(k) = key {
            self.key(k);
        }
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`), optionally as the member `key` of the
    /// enclosing object.
    pub fn begin_array(&mut self, key: Option<&str>) {
        self.comma();
        if let Some(k) = key {
            self.key(k);
        }
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    fn key(&mut self, key: &str) {
        escape_into(&mut self.out, key);
        self.out.push(':');
    }

    /// Writes a string member.
    pub fn string(&mut self, key: &str, value: &str) {
        self.comma();
        self.key(key);
        escape_into(&mut self.out, value);
    }

    /// Writes an unsigned-integer member.
    pub fn u64(&mut self, key: &str, value: u64) {
        self.comma();
        self.key(key);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a signed-integer member.
    pub fn i64(&mut self, key: &str, value: i64) {
        self.comma();
        self.key(key);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a float member with shortest-roundtrip precision; non-finite
    /// values become `null`.
    pub fn f64(&mut self, key: &str, value: f64) {
        self.comma();
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value:?}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a bare unsigned integer as an array element.
    pub fn element_u64(&mut self, value: u64) {
        self.comma();
        let _ = write!(self.out, "{value}");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.string("name", "a \"quoted\"\nvalue");
        w.u64("count", 3);
        w.f64("pi", 0.1 + 0.2);
        w.f64("bad", f64::NAN);
        w.begin_array(Some("xs"));
        w.element_u64(1);
        w.element_u64(2);
        w.end_array();
        w.begin_object(Some("inner"));
        w.i64("neg", -5);
        w.end_object();
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            "{\"name\":\"a \\\"quoted\\\"\\nvalue\",\"count\":3,\"pi\":0.30000000000000004,\
             \"bad\":null,\"xs\":[1,2],\"inner\":{\"neg\":-5}}"
        );
    }

    #[test]
    fn float_formatting_roundtrips() {
        for v in [1.0, -0.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let mut w = JsonWriter::new();
            w.begin_object(None);
            w.f64("v", v);
            w.end_object();
            let doc = w.finish();
            let text = doc.trim_start_matches("{\"v\":").trim_end_matches('}');
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} did not roundtrip via {text}");
        }
    }
}
