//! Observability layer for RSQP: metrics, spans, and solve traces.
//!
//! The paper's evaluation (§6) hinges on per-phase accounting — ADMM
//! iterations, PCG iterations per KKT solve, SpMV cycle counts — and a
//! production solve service additionally needs to explain *why* a job was
//! slow, retried, or fell back to LDLᵀ. This crate is the shared substrate
//! all of that reporting flows through, with three deliberately small
//! pieces:
//!
//! * [`MetricsRegistry`] — a lock-light registry of named [`Counter`]s,
//!   [`Gauge`]s, and [`Histogram`]s (fixed log₂ buckets). Registration
//!   takes a short mutex; every increment/observe afterwards is a single
//!   atomic operation, and [`MetricsRegistry::snapshot`] can run
//!   concurrently with writers without panicking or tearing individual
//!   values.
//! * [`Timeline`] / [`TraceSink`] — hierarchical timed phases (setup →
//!   scaling → per-ADMM-iteration → KKT solve → polish) recorded as
//!   [`SpanRecord`]s with explicit nesting depth.
//! * [`SolveTrace`] — the machine-readable record of one solve:
//!   per-iteration residuals, ρ updates, inner PCG iteration counts, and
//!   guard/fallback events, exportable as JSON ([`SolveTrace::to_json`])
//!   and as a timing-free deterministic subset
//!   ([`SolveTrace::golden_json`]) for golden-file regression tests.
//!
//! The crate is dependency-free (no serde, no tracing ecosystem): JSON is
//! emitted by a small hand-rolled writer, and every type is plain data so
//! the solver, runtime, and cycle-level machine can all depend on it
//! without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod span;
mod trace;

pub use json::JsonWriter;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use span::{SpanId, SpanRecord, Timeline, TraceSink, VecSink};
pub use trace::{IterationTrace, SolveTrace, TraceEvent};
