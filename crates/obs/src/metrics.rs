//! Lock-light counters, gauges, and log₂-bucket histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::json::JsonWriter;

/// Number of histogram buckets: bucket 0 holds the value 0 and bucket `k`
/// holds values in `[2^(k-1), 2^k)`, so 65 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, jobs in flight). Cloning
/// shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of observed values (for the mean). May momentarily lag the
    /// buckets under concurrent observation; the bucket counts themselves
    /// are the source of truth for totals.
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` samples with fixed log₂ buckets. There is no
/// separate total-count cell: the total is the sum of the bucket counts,
/// so "bucket counts sum to the number of observations" holds by
/// construction in every snapshot, even one taken mid-write.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }
}

/// Bucket index of a sample: 0 for the value 0, otherwise its bit length.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(&self.0.buckets) {
            *b = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, sum: self.0.sum.load(Ordering::Relaxed) }
    }
}

/// A consistent-per-cell copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log₂ bucket (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of observed values (may lag the buckets under concurrency).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations: the sum of the bucket counts.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Inclusive upper bound of the highest non-empty bucket (0 when
    /// empty) — a cheap "max is below" statistic for summaries.
    pub fn max_bound(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            None | Some(0) => 0,
            Some(k) if k >= 64 => u64::MAX,
            Some(k) => (1u64 << k) - 1,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
}

/// A lock-light registry of named metrics.
///
/// Handle lookup ([`MetricsRegistry::counter`] and friends) takes a short
/// mutex and returns a shared handle; the hot path — incrementing through
/// a held handle — is a single relaxed atomic op, so instruments can sit
/// inside worker loops without contention. Cloning the registry shares
/// the underlying metric set.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

fn get_or_insert<T: Clone + Default>(list: &Mutex<Vec<(String, T)>>, name: &str) -> T {
    let mut guard = list.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((_, handle)) = guard.iter().find(|(n, _)| n == name) {
        return handle.clone();
    }
    let handle = T::default();
    guard.push((name.to_string(), handle.clone()));
    handle
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use. Repeated
    /// calls with the same name return handles to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.inner.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.inner.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.inner.histograms, name)
    }

    /// A point-in-time copy of every registered metric. Safe to call
    /// while writers are active: each cell is read atomically (values
    /// never tear), though concurrently arriving updates may or may not
    /// be included.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let guard = self.inner.counters.lock().unwrap_or_else(PoisonError::into_inner);
            guard.iter().map(|(n, c)| (n.clone(), c.get())).collect()
        };
        let gauges = {
            let guard = self.inner.gauges.lock().unwrap_or_else(PoisonError::into_inner);
            guard.iter().map(|(n, g)| (n.clone(), g.get())).collect()
        };
        let histograms = {
            let guard = self.inner.histograms.lock().unwrap_or_else(PoisonError::into_inner);
            guard.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
        };
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, defaulting to 0 when it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, defaulting to 0 when it was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The snapshot as a JSON document (histograms as count/mean/max
    /// summaries plus their non-empty buckets).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.begin_object(Some("counters"));
        for (name, value) in &self.counters {
            w.u64(name, *value);
        }
        w.end_object();
        w.begin_object(Some("gauges"));
        for (name, value) in &self.gauges {
            w.i64(name, *value);
        }
        w.end_object();
        w.begin_object(Some("histograms"));
        for (name, h) in &self.histograms {
            w.begin_object(Some(name));
            w.u64("count", h.count());
            w.u64("sum", h.sum);
            w.f64("mean", h.mean());
            w.u64("max_bound", h.max_bound());
            w.begin_array(Some("buckets"));
            for &b in &h.buckets {
                w.element_u64(b);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs");
        c.inc();
        c.add(4);
        // Same name → same cell.
        assert_eq!(reg.counter("jobs").get(), 5);
        let g = reg.gauge("depth");
        g.add(3);
        g.sub(1);
        assert_eq!(reg.gauge("depth").get(), 2);
        g.set(-7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("jobs"), 5);
        assert_eq!(snap.gauge("depth"), -7);
        assert_eq!(snap.counter("never-registered"), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.max_bound(), 2047);
        assert!((s.mean() - 206.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_summaries() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn snapshot_exports_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.gauge("b").set(2);
        reg.histogram("c").observe(5);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"b\":2"));
        assert!(json.contains("\"count\":1"));
    }
}
