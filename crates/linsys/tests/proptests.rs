//! Property-based tests: LDLᵀ and PCG must agree with each other and with
//! dense ground truth on randomly generated quasi-definite KKT systems.

use proptest::prelude::*;
use rsqp_linsys::{pcg, KktMatrix, Ldlt, PcgSettings, ReducedKktOp};
use rsqp_sparse::CsrMatrix;

/// Random sparse PSD matrix P = B·Bᵀ (dense-constructed, sparsified) and a
/// random constraint matrix A.
fn arb_qp_data() -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (2usize..8, 1usize..8).prop_flat_map(|(n, m)| {
        let b_entries = prop::collection::vec(-2.0f64..2.0, n * n);
        let a_entries = prop::collection::vec((-2.0f64..2.0, 0.0f64..1.0), m * n);
        (Just(n), Just(m), b_entries, a_entries).prop_map(|(n, m, be, ae)| {
            // P = B Bᵀ with B lower triangular => PSD.
            let mut p = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..=i.min(j) {
                        acc += be[i * n + k] * be[j * n + k];
                    }
                    p[i][j] = acc;
                }
            }
            let p = CsrMatrix::from_dense(&p);
            let mut a = vec![vec![0.0; n]; m];
            for i in 0..m {
                for j in 0..n {
                    let (v, keep) = ae[i * n + j];
                    if keep < 0.5 {
                        a[i][j] = v;
                    }
                }
            }
            (p, CsrMatrix::from_dense(&a))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ldlt_solves_kkt_systems((p, a) in arb_qp_data(), seed in 0u64..100) {
        let n = p.nrows();
        let m = a.nrows();
        let rho: Vec<f64> = (0..m).map(|i| 0.1 + (i as f64 % 3.0)).collect();
        let kkt = KktMatrix::assemble(&p, &a, 1e-6, &rho).unwrap();
        let f = Ldlt::factor(kkt.matrix()).unwrap();
        prop_assert_eq!(f.num_positive_d(), n);
        let b: Vec<f64> = (0..n + m).map(|i| (((seed + i as u64) % 11) as f64) - 5.0).collect();
        let x = f.solve(&b).unwrap();
        // Residual check against the full symmetric KKT.
        let mut full = rsqp_sparse::CooMatrix::new(n + m, n + m);
        let u = kkt.matrix();
        for j in 0..n + m {
            let (rows, vals) = u.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                full.push(i, j, v);
                if i != j {
                    full.push(j, i, v);
                }
            }
        }
        let full = full.to_csr();
        let mut ax = vec![0.0; n + m];
        full.spmv(&x, &mut ax).unwrap();
        let scale = 1.0 + rsqp_sparse::vec_ops::inf_norm(&x);
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-7 * scale, "res {} vs {}", got, want);
        }
    }

    #[test]
    fn pcg_agrees_with_direct_reduction((p, a) in arb_qp_data()) {
        let n = p.nrows();
        let m = a.nrows();
        let sigma = 1e-4;
        let rho = vec![0.7; m];
        // Direct: KKT solve with rhs [b1; b2].
        let kkt = KktMatrix::assemble(&p, &a, sigma, &rho).unwrap();
        let f = Ldlt::factor(kkt.matrix()).unwrap();
        let b1: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let b2: Vec<f64> = (0..m).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut rhs: Vec<f64> = b1.iter().chain(b2.iter()).copied().collect();
        f.solve_in_place(&mut rhs).unwrap();
        // Indirect: reduced system with rhs b1 + Aᵀ(rho .* b2).
        let at = a.transpose();
        let mut reduced_b = b1.clone();
        let scaled: Vec<f64> = b2.iter().zip(&rho).map(|(v, r)| v * r).collect();
        at.spmv_acc(1.0, &scaled, &mut reduced_b).unwrap();
        let mut op = ReducedKktOp::new(&p, &a, sigma, &rho).unwrap();
        let sol = pcg(
            &mut op,
            &reduced_b,
            &vec![0.0; n],
            &PcgSettings { eps: 1e-12, eps_abs: 1e-14, max_iter: 10_000 },
        )
        .unwrap();
        let scale = 1.0 + rsqp_sparse::vec_ops::inf_norm(&rhs[..n]);
        for i in 0..n {
            prop_assert!(
                (sol.x[i] - rhs[i]).abs() < 1e-5 * scale,
                "component {}: pcg {} direct {}",
                i, sol.x[i], rhs[i]
            );
        }
    }
}
