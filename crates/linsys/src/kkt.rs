//! KKT-system assembly.
//!
//! Two views of the same optimality system are provided:
//!
//! * [`KktMatrix`] — the explicit quasi-definite matrix
//!   `[[P + σI, Aᵀ], [A, -diag(1/ρ)]]` in upper-triangular CSC form for the
//!   direct LDLᵀ path, with in-place ρ updates;
//! * [`ReducedKktOp`] — the matrix-free operator
//!   `x ↦ (P + σI + Aᵀ diag(ρ) A) x` of Eq. (3), which is what PCG and the
//!   FPGA datapath evaluate. Following §2.2, `AᵀA` is never formed: the
//!   product is computed incrementally as `P·x + σ·x + Aᵀ(ρ ∘ (A·x))`.

use std::sync::Arc;

use rsqp_par::ThreadPool;
use rsqp_sparse::{CooMatrix, CscMatrix, CsrMatrix, RowPartition, TransposeCache};

use crate::pcg::LinearOperator;
use crate::LinsysError;

/// The explicit upper-triangular KKT matrix of Eq. (2).
#[derive(Debug, Clone)]
pub struct KktMatrix {
    n: usize,
    m: usize,
    mat: CscMatrix,
    /// Data positions of the `-1/ρ_i` diagonal entries, for O(m) ρ updates.
    rho_positions: Vec<usize>,
}

impl KktMatrix {
    /// Assembles the KKT matrix from the problem data.
    ///
    /// `p` must be square (`n × n`, full symmetric storage — only the upper
    /// triangle is read), `a` is `m × n`, and `rho` has one positive entry
    /// per constraint.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if the shapes disagree or a ρ
    /// entry is not strictly positive.
    pub fn assemble(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
    ) -> Result<Self, LinsysError> {
        let n = p.nrows();
        let m = a.nrows();
        if p.ncols() != n {
            return Err(LinsysError::Dimension(format!(
                "P must be square, got {}x{}",
                n,
                p.ncols()
            )));
        }
        if a.ncols() != n {
            return Err(LinsysError::Dimension(format!(
                "A has {} columns but P is {n}x{n}",
                a.ncols()
            )));
        }
        if rho.len() != m {
            return Err(LinsysError::Dimension(format!(
                "rho has length {} but A has {m} rows",
                rho.len()
            )));
        }
        if rho.iter().any(|&r| r <= 0.0) {
            return Err(LinsysError::Dimension("rho entries must be positive".into()));
        }
        let dim = n + m;
        let mut coo = CooMatrix::with_capacity(dim, dim, p.nnz() + a.nnz() + dim);
        // P upper triangle + sigma*I.
        for i in 0..n {
            let (cols, vals) = p.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j >= i {
                    coo.push(i, j, v);
                }
            }
            coo.push(i, i, sigma);
        }
        // Aᵀ block: A entry (r, c) lands at KKT (c, n + r), always above the
        // diagonal of the lower-right block.
        for r in 0..m {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(c, n + r, v);
            }
        }
        // -diag(1/rho).
        for (i, &ri) in rho.iter().enumerate() {
            coo.push(n + i, n + i, -1.0 / ri);
        }
        let mat = coo.to_csc();
        // Upper-triangular sorted columns keep the diagonal last in each
        // column, so the rho entries are at colptr[n+i+1]-1.
        let rho_positions: Vec<usize> = (0..m).map(|i| mat.colptr()[n + i + 1] - 1).collect();
        Ok(KktMatrix { n, m, mat, rho_positions })
    }

    /// Number of decision variables `n`.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints `m`.
    pub fn num_constraints(&self) -> usize {
        self.m
    }

    /// The assembled upper-triangular CSC matrix of dimension `n + m`.
    pub fn matrix(&self) -> &CscMatrix {
        &self.mat
    }

    /// Overwrites the `-1/ρ` diagonal block in place. The sparsity structure
    /// is untouched, so an existing [`crate::Ldlt`] can
    /// [`refactor`](crate::Ldlt::refactor) against [`Self::matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if `rho.len() != m` or an entry is
    /// not strictly positive.
    pub fn update_rho(&mut self, rho: &[f64]) -> Result<(), LinsysError> {
        if rho.len() != self.m {
            return Err(LinsysError::Dimension(format!(
                "rho has length {} but KKT has {} constraints",
                rho.len(),
                self.m
            )));
        }
        if rho.iter().any(|&r| r <= 0.0) {
            return Err(LinsysError::Dimension("rho entries must be positive".into()));
        }
        let data = self.mat.data_mut();
        for (i, &ri) in rho.iter().enumerate() {
            data[self.rho_positions[i]] = -1.0 / ri;
        }
        Ok(())
    }
}

/// Matrix-free reduced KKT operator `K = P + σI + Aᵀ diag(ρ) A` (Eq. 3).
///
/// `Aᵀ` is built **once** at construction as a [`TransposeCache`], so every
/// `apply` evaluates `Aᵀ(ρ∘(Ax))` as two cache-friendly gather SpMVs
/// instead of a scatter (the GPU implementation and the FPGA likewise store
/// `A` and `Aᵀ` explicitly for row-major streaming). The operator owns its
/// matrices behind [`Arc`]s so backends can hold it across iterations
/// without cloning data, and runs its SpMVs on a shared [`ThreadPool`] over
/// nnz-balanced [`RowPartition`]s — bit-identical for every pool size.
#[derive(Debug, Clone)]
pub struct ReducedKktOp {
    p: Arc<CsrMatrix>,
    a: Arc<CsrMatrix>,
    at: TransposeCache,
    sigma: f64,
    rho: Vec<f64>,
    tmp_m: Vec<f64>,
    pool: Arc<ThreadPool>,
    p_part: RowPartition,
    a_part: RowPartition,
    at_part: RowPartition,
    spmv_count: usize,
}

impl ReducedKktOp {
    /// Creates a serial operator, cloning the matrices once and building
    /// the `Aᵀ` cache.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if the shapes are inconsistent.
    pub fn new(p: &CsrMatrix, a: &CsrMatrix, sigma: f64, rho: &[f64]) -> Result<Self, LinsysError> {
        Self::with_pool(
            Arc::new(p.clone()),
            Arc::new(a.clone()),
            sigma,
            rho,
            Arc::new(ThreadPool::serial()),
        )
    }

    /// Creates the operator on an existing pool without copying matrix
    /// data. Row partitions are balanced by nnz for the pool size; the `Aᵀ`
    /// cache is built here, once.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if the shapes are inconsistent.
    pub fn with_pool(
        p: Arc<CsrMatrix>,
        a: Arc<CsrMatrix>,
        sigma: f64,
        rho: &[f64],
        pool: Arc<ThreadPool>,
    ) -> Result<Self, LinsysError> {
        let n = p.nrows();
        let m = a.nrows();
        if p.ncols() != n {
            return Err(LinsysError::Dimension(format!("P must be square, got {n}x{}", p.ncols())));
        }
        if a.ncols() != n {
            return Err(LinsysError::Dimension(format!(
                "A has {} columns but P is {n}x{n}",
                a.ncols()
            )));
        }
        if rho.len() != m {
            return Err(LinsysError::Dimension(format!(
                "rho has length {} but A has {m} rows",
                rho.len()
            )));
        }
        let at = TransposeCache::new(&a);
        // A mild oversplit (2 chunks per thread) smooths out rows of uneven
        // cost without shrinking chunks below useful sizes.
        let chunks = pool.threads() * 2;
        let p_part = RowPartition::balanced(&p, chunks);
        let a_part = RowPartition::balanced(&a, chunks);
        let at_part = RowPartition::balanced(at.matrix(), chunks);
        Ok(ReducedKktOp {
            p,
            a,
            at,
            sigma,
            rho: rho.to_vec(),
            tmp_m: vec![0.0; m],
            pool,
            p_part,
            a_part,
            at_part,
            spmv_count: 0,
        })
    }

    /// Replaces the ρ vector (no structural work needed — this is the big
    /// advantage of the indirect method highlighted in §2.2).
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if the length changes.
    pub fn update_rho(&mut self, rho: &[f64]) -> Result<(), LinsysError> {
        if rho.len() != self.rho.len() {
            return Err(LinsysError::Dimension(format!(
                "rho length changed from {} to {}",
                self.rho.len(),
                rho.len()
            )));
        }
        self.rho.copy_from_slice(rho);
        Ok(())
    }

    /// Replaces the matrix values and ρ. The sparsity patterns of `P` and
    /// `A` must match the originals (the ADMM solver only rescales values
    /// in place); the `Aᵀ` cache is refreshed by a linear value pass, never
    /// rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] when a shape, nonzero count, or
    /// the ρ length differs from the cached structure.
    pub fn update_values(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), LinsysError> {
        if (p.nrows(), p.ncols(), p.nnz()) != (self.p.nrows(), self.p.ncols(), self.p.nnz()) {
            return Err(LinsysError::Dimension("P shape or nnz changed in update".into()));
        }
        if (a.nrows(), a.ncols(), a.nnz()) != (self.a.nrows(), self.a.ncols(), self.a.nnz()) {
            return Err(LinsysError::Dimension("A shape or nnz changed in update".into()));
        }
        self.update_rho(rho)?;
        self.p = Arc::new(p.clone());
        self.a = Arc::new(a.clone());
        self.at.refresh_values(&self.a)?;
        Ok(())
    }

    /// The Jacobi preconditioner diagonal
    /// `diag(P) + σ + Σ_i ρ_i A_{i,·}²` (column-wise), freshly allocated.
    pub fn jacobi_diag(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.p.nrows()];
        self.jacobi_diag_into(&mut d);
        d
    }

    /// Writes the Jacobi preconditioner diagonal into `out` (length `n`)
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n`.
    pub fn jacobi_diag_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.p.nrows(), "jacobi diagonal length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.p.get(i, i) + self.sigma;
        }
        for i in 0..self.a.nrows() {
            let (cols, vals) = self.a.row(i);
            let ri = self.rho[i];
            for (&j, &v) in cols.iter().zip(vals) {
                out[j] += ri * v * v;
            }
        }
    }

    /// `y = A x` on the operator's pool — the `z̃ = A x̃` step of a KKT
    /// solve, counted in [`Self::spmv_count`].
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Sparse`] on shape mismatch.
    pub fn a_spmv(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
        self.a.spmv_partitioned(x, y, &self.pool, &self.a_part)?;
        self.spmv_count += 1;
        Ok(())
    }

    /// `y += alpha · Aᵀ x` through the cached gather transpose on the
    /// operator's pool, counted in [`Self::spmv_count`].
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Sparse`] on shape mismatch.
    pub fn at_spmv_acc(&mut self, alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
        self.at.matrix().spmv_acc_partitioned(alpha, x, y, &self.pool, &self.at_part)?;
        self.spmv_count += 1;
        Ok(())
    }

    /// The cached transpose `Aᵀ`.
    pub fn transpose(&self) -> &TransposeCache {
        &self.at
    }

    /// The current ρ vector.
    pub fn rho(&self) -> &[f64] {
        &self.rho
    }

    /// The regularization shift σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The pool this operator dispatches its SpMVs on.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Number of `A`/`Aᵀ`/`P` SpMV evaluations performed so far (three per
    /// `apply`), used by the performance models.
    pub fn spmv_count(&self) -> usize {
        self.spmv_count
    }
}

impl LinearOperator for ReducedKktOp {
    fn dim(&self) -> usize {
        self.p.nrows()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
        // y = P x + sigma x
        self.p.spmv_partitioned(x, y, &self.pool, &self.p_part)?;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += self.sigma * xi;
        }
        // tmp = rho .* (A x); y += At tmp — both gather SpMVs.
        self.a.spmv_partitioned(x, &mut self.tmp_m, &self.pool, &self.a_part)?;
        for (t, &r) in self.tmp_m.iter_mut().zip(&self.rho) {
            *t *= r;
        }
        self.at.matrix().spmv_acc_partitioned(1.0, &self.tmp_m, y, &self.pool, &self.at_part)?;
        self.spmv_count += 3;
        Ok(())
    }

    fn precond_diag(&self) -> Option<Vec<f64>> {
        Some(self.jacobi_diag())
    }

    fn precond_diag_into(&self, out: &mut [f64]) -> bool {
        self.jacobi_diag_into(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ldlt;

    fn small_problem() -> (CsrMatrix, CsrMatrix) {
        let p = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
        let a = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        (p, a)
    }

    #[test]
    fn kkt_assembly_shape_and_blocks() {
        let (p, a) = small_problem();
        let rho = vec![0.1, 0.2, 0.4];
        let kkt = KktMatrix::assemble(&p, &a, 1e-6, &rho).unwrap();
        let m = kkt.matrix();
        assert_eq!((m.nrows(), m.ncols()), (5, 5));
        assert!(m.is_upper_triangular());
        assert!((m.get(0, 0) - (4.0 + 1e-6)).abs() < 1e-15);
        assert_eq!(m.get(0, 2), 1.0); // Aᵀ block
        assert_eq!(m.get(1, 4), 1.0);
        assert!((m.get(2, 2) + 10.0).abs() < 1e-12); // -1/0.1
        assert!((m.get(4, 4) + 2.5).abs() < 1e-12); // -1/0.4
    }

    #[test]
    fn kkt_rho_update_matches_fresh_assembly() {
        let (p, a) = small_problem();
        let mut kkt = KktMatrix::assemble(&p, &a, 1e-6, &[0.1, 0.1, 0.1]).unwrap();
        kkt.update_rho(&[1.0, 2.0, 4.0]).unwrap();
        let fresh = KktMatrix::assemble(&p, &a, 1e-6, &[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(kkt.matrix(), fresh.matrix());
    }

    #[test]
    fn kkt_rejects_bad_shapes_and_rho() {
        let (p, a) = small_problem();
        assert!(KktMatrix::assemble(&p, &a, 1e-6, &[0.1]).is_err());
        assert!(KktMatrix::assemble(&p, &a, 1e-6, &[0.1, -1.0, 0.1]).is_err());
        let bad_a = CsrMatrix::from_dense(&[vec![1.0, 2.0, 3.0]]);
        assert!(KktMatrix::assemble(&p, &bad_a, 1e-6, &[0.1]).is_err());
    }

    #[test]
    fn kkt_factorizes_and_matches_reduced_solve() {
        let (p, a) = small_problem();
        let rho = vec![0.5, 0.5, 0.5];
        let sigma = 1e-6;
        let kkt = KktMatrix::assemble(&p, &a, sigma, &rho).unwrap();
        let ldlt = Ldlt::factor(kkt.matrix()).unwrap();
        assert_eq!(ldlt.num_positive_d(), 2);
        // Solve KKT [x; nu] = [b1; 0] and compare x against the dense
        // reduced system (P + sigma I + rho AᵀA) x = b1.
        let b1 = [1.0, -2.0];
        let mut rhs = vec![b1[0], b1[1], 0.0, 0.0, 0.0];
        ldlt.solve_in_place(&mut rhs).unwrap();
        // Dense reduced solve.
        let k = [[4.0 + sigma + 0.5 * 2.0, 1.0 + 0.5], [1.0 + 0.5, 2.0 + sigma + 0.5 * 2.0]];
        let det = k[0][0] * k[1][1] - k[0][1] * k[1][0];
        let x0 = (k[1][1] * b1[0] - k[0][1] * b1[1]) / det;
        let x1 = (-k[1][0] * b1[0] + k[0][0] * b1[1]) / det;
        assert!((rhs[0] - x0).abs() < 1e-10, "{} vs {}", rhs[0], x0);
        assert!((rhs[1] - x1).abs() < 1e-10);
    }

    #[test]
    fn reduced_op_matches_dense() {
        let (p, a) = small_problem();
        let rho = vec![0.1, 0.2, 0.4];
        let sigma = 0.01;
        let mut op = ReducedKktOp::new(&p, &a, sigma, &rho).unwrap();
        let x = [1.0, 2.0];
        let mut y = vec![0.0; 2];
        op.apply(&x, &mut y).unwrap();
        // Dense: K = P + sigma I + At diag(rho) A
        // A rows: [1,0],[0,1],[1,1]
        // At diag(rho) A = [[0.1+0.4, 0.4], [0.4, 0.2+0.4]]
        let k = [[4.0 + sigma + 0.5, 1.0 + 0.4], [1.0 + 0.4, 2.0 + sigma + 0.6]];
        let want = [k[0][0] * x[0] + k[0][1] * x[1], k[1][0] * x[0] + k[1][1] * x[1]];
        assert!((y[0] - want[0]).abs() < 1e-12);
        assert!((y[1] - want[1]).abs() < 1e-12);
        assert_eq!(op.spmv_count(), 3);
    }

    #[test]
    fn jacobi_diag_matches_dense_diagonal() {
        let (p, a) = small_problem();
        let rho = vec![0.1, 0.2, 0.4];
        let sigma = 0.01;
        let op = ReducedKktOp::new(&p, &a, sigma, &rho).unwrap();
        let d = op.jacobi_diag();
        assert!((d[0] - (4.0 + sigma + 0.1 + 0.4)).abs() < 1e-12);
        assert!((d[1] - (2.0 + sigma + 0.2 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn update_rho_changes_operator() {
        let (p, a) = small_problem();
        let mut op = ReducedKktOp::new(&p, &a, 0.0, &[1.0, 1.0, 1.0]).unwrap();
        let mut y1 = vec![0.0; 2];
        op.apply(&[1.0, 0.0], &mut y1).unwrap();
        op.update_rho(&[2.0, 2.0, 2.0]).unwrap();
        let mut y2 = vec![0.0; 2];
        op.apply(&[1.0, 0.0], &mut y2).unwrap();
        // Doubling rho doubles the AᵀA part: y2 - Px = 2 (y1 - Px).
        let px = 4.0;
        assert!(((y2[0] - px) - 2.0 * (y1[0] - px)).abs() < 1e-12);
    }
}
