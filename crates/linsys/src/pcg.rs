//! Preconditioned Conjugate Gradient (Algorithm 2 of the RSQP paper).
//!
//! Unlike a direct LDLᵀ solve, PCG can fail mid-iteration: the operator may
//! turn out indefinite along a search direction (`pᵀKp ≤ 0`), or corrupted
//! input (NaN/Inf from an upstream ρ update or a faulty datapath) can poison
//! α/β. Both conditions are detected and reported as a typed [`PcgError`]
//! instead of silently returning the poisoned iterate, so callers can run a
//! recovery policy (see `solver::guard`).

use std::error::Error;
use std::fmt;

use rsqp_par::ThreadPool;
use rsqp_sparse::vec_ops;

use crate::LinsysError;

/// A symmetric positive-definite linear operator `y = K x`.
///
/// Implementors may maintain scratch space, hence `apply` takes `&mut self`.
pub trait LinearOperator {
    /// Operator dimension (square).
    fn dim(&self) -> usize;

    /// Computes `y = K x`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.len()` or `y.len()` differ from [`Self::dim`]
    /// or the underlying evaluation fails (e.g. a device-backed operator
    /// detects corruption). Implementations must not panic on bad shapes.
    fn apply(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError>;

    /// Diagonal of a preconditioner `M ≈ K` (not its inverse). `None`
    /// disables preconditioning (`M = I`).
    fn precond_diag(&self) -> Option<Vec<f64>> {
        None
    }

    /// Writes the preconditioner diagonal into `out` (length [`Self::dim`])
    /// and returns `true`, or returns `false` to disable preconditioning.
    ///
    /// The default forwards to [`Self::precond_diag`], which allocates;
    /// operators used on the solver hot path should override this so a
    /// workspace-based solve ([`pcg_with`]) stays allocation-free.
    fn precond_diag_into(&self, out: &mut [f64]) -> bool {
        match self.precond_diag() {
            Some(d) => {
                out.copy_from_slice(&d);
                true
            }
            None => false,
        }
    }
}

/// Typed failure of a [`pcg`] solve.
///
/// Any error means the returned iterate would have been unreliable; callers
/// should treat the warm-start vector as the last good state.
#[derive(Debug, Clone, PartialEq)]
pub enum PcgError {
    /// `pᵀKp ≤ 0` (or `rᵀM⁻¹r ≤ 0`): the operator or preconditioner is not
    /// positive definite along the current direction. Carries the iteration
    /// index and the offending curvature value.
    Breakdown {
        /// Iteration at which breakdown was detected (1-based).
        iteration: usize,
        /// The non-positive curvature `pᵀKp` or `rᵀM⁻¹r`.
        curvature: f64,
    },
    /// A scalar in the recurrence (step length, residual norm, or direction
    /// update) became NaN or ±Inf.
    NonFinite {
        /// Iteration at which the non-finite value appeared (0 = setup).
        iteration: usize,
        /// Which quantity went non-finite.
        quantity: &'static str,
    },
    /// The operator application itself failed.
    Operator(LinsysError),
}

impl fmt::Display for PcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcgError::Breakdown { iteration, curvature } => write!(
                f,
                "PCG breakdown at iteration {iteration}: curvature {curvature:e} is not positive"
            ),
            PcgError::NonFinite { iteration, quantity } => {
                write!(f, "PCG produced a non-finite {quantity} at iteration {iteration}")
            }
            PcgError::Operator(e) => write!(f, "PCG operator application failed: {e}"),
        }
    }
}

impl Error for PcgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PcgError::Operator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinsysError> for PcgError {
    fn from(e: LinsysError) -> Self {
        PcgError::Operator(e)
    }
}

/// Convergence and iteration-limit settings for [`pcg`].
#[derive(Debug, Clone, PartialEq)]
pub struct PcgSettings {
    /// Relative tolerance: iterate until `‖r‖₂ < eps·‖b‖₂` (Algorithm 2,
    /// line 10).
    pub eps: f64,
    /// Absolute floor on the residual test, guarding `b ≈ 0`.
    pub eps_abs: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for PcgSettings {
    fn default() -> Self {
        PcgSettings { eps: 1e-8, eps_abs: 1e-12, max_iter: 5000 }
    }
}

/// Result of a PCG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PcgResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Number of iterations performed (operator applications minus one).
    pub iterations: usize,
    /// Final residual 2-norm `‖K x − b‖₂`.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Iteration summary of an in-place [`pcg_with`] solve. The iterate itself
/// is returned through the `x` argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgSummary {
    /// Number of iterations performed (operator applications minus one).
    pub iterations: usize,
    /// Final residual 2-norm `‖K x − b‖₂`.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Reusable scratch space for [`pcg_with`]: the residual, preconditioned
/// residual, search direction, operator output, and preconditioner inverse.
///
/// Allocate once per KKT backend and reuse across solves; a solve against
/// an operator of the same dimension performs no heap allocation.
#[derive(Debug, Clone)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    d: Vec<f64>,
    p: Vec<f64>,
    kp: Vec<f64>,
    minv: Vec<f64>,
}

impl PcgWorkspace {
    /// Workspace sized for an operator of dimension `n`.
    pub fn new(n: usize) -> Self {
        PcgWorkspace {
            r: vec![0.0; n],
            d: vec![0.0; n],
            p: vec![0.0; n],
            kp: vec![0.0; n],
            minv: vec![0.0; n],
        }
    }

    /// Current workspace dimension.
    pub fn dim(&self) -> usize {
        self.r.len()
    }

    /// Grows or shrinks the buffers to dimension `n` (no-op when already
    /// that size).
    pub fn resize(&mut self, n: usize) {
        if self.r.len() != n {
            self.r.resize(n, 0.0);
            self.d.resize(n, 0.0);
            self.p.resize(n, 0.0);
            self.kp.resize(n, 0.0);
            self.minv.resize(n, 0.0);
        }
    }
}

/// Solves `K x = b` with the Preconditioned Conjugate Gradient method,
/// warm-started at `x0`.
///
/// Implements Algorithm 2 of the paper with a diagonal (Jacobi)
/// preconditioner taken from [`LinearOperator::precond_diag`].
///
/// # Errors
///
/// Returns [`PcgError::Breakdown`] if the operator is indefinite along a
/// search direction, [`PcgError::NonFinite`] if the recurrence produces
/// NaN/Inf (e.g. corrupted `b` or operator data), and
/// [`PcgError::Operator`] if an operator application fails, including a
/// typed dimension error when `b.len()` or `x0.len()` differ from
/// `op.dim()` (checked up front before any state is touched). On error the
/// warm-start `x0` remains the caller's last good iterate.
pub fn pcg(
    op: &mut dyn LinearOperator,
    b: &[f64],
    x0: &[f64],
    settings: &PcgSettings,
) -> Result<PcgResult, PcgError> {
    let mut x = x0.to_vec();
    let mut ws = PcgWorkspace::new(op.dim());
    let summary = pcg_with(op, b, &mut x, settings, &mut ws, None)?;
    Ok(PcgResult {
        x,
        iterations: summary.iterations,
        residual: summary.residual,
        converged: summary.converged,
    })
}

/// Solves `K x = b` in place, warm-started at the incoming value of `x`,
/// reusing `ws` for every intermediate vector.
///
/// This is the allocation-free core of [`pcg`]: with a correctly sized
/// workspace (and an operator overriding
/// [`LinearOperator::precond_diag_into`]) it performs **zero heap
/// allocations**, which is what lets the ADMM steady state run
/// allocation-free. With `pool = Some(_)`, dot products, norms and vector
/// updates run on the pool; results are bit-identical across pool sizes
/// (see `rsqp-par`'s determinism contract), though reductions on large
/// systems regroup differently from the serial path.
///
/// # Errors
///
/// Same conditions as [`pcg`]. Unlike [`pcg`], on error `x` may hold a
/// partially updated iterate — callers must treat their own copy as the
/// last good state (the solver's guard ladder already does).
pub fn pcg_with(
    op: &mut dyn LinearOperator,
    b: &[f64],
    x: &mut [f64],
    settings: &PcgSettings,
    ws: &mut PcgWorkspace,
    pool: Option<&ThreadPool>,
) -> Result<PcgSummary, PcgError> {
    let n = op.dim();
    if b.len() != n {
        return Err(PcgError::Operator(LinsysError::Dimension(format!(
            "rhs length {} does not match operator dimension {n}",
            b.len()
        ))));
    }
    if x.len() != n {
        return Err(PcgError::Operator(LinsysError::Dimension(format!(
            "warm-start length {} does not match operator dimension {n}",
            x.len()
        ))));
    }
    ws.resize(n);

    let dotf = |a: &[f64], c: &[f64]| match pool {
        Some(pl) => vec_ops::dot_par(a, c, pl),
        None => vec_ops::dot(a, c),
    };
    let norm2f = |v: &[f64]| match pool {
        Some(pl) => vec_ops::norm2_par(v, pl),
        None => vec_ops::norm2(v),
    };

    let has_pre = op.precond_diag_into(&mut ws.minv);
    if has_pre {
        for v in &mut ws.minv {
            *v = if *v != 0.0 { 1.0 / *v } else { 1.0 };
        }
    }

    let norm_b = norm2f(b);
    if !norm_b.is_finite() {
        return Err(PcgError::NonFinite { iteration: 0, quantity: "rhs norm" });
    }
    let tol = (settings.eps * norm_b).max(settings.eps_abs);

    // r0 = K x0 - b
    op.apply(x, &mut ws.r)?;
    match pool {
        Some(pl) => vec_ops::axpy_par(-1.0, b, &mut ws.r, pl),
        None => vec_ops::axpy(-1.0, b, &mut ws.r),
    }
    let mut res_norm = norm2f(&ws.r);
    if !res_norm.is_finite() {
        return Err(PcgError::NonFinite { iteration: 0, quantity: "residual norm" });
    }
    if res_norm <= tol {
        return Ok(PcgSummary { iterations: 0, residual: res_norm, converged: true });
    }
    // d0 = M^{-1} r0 ; p0 = -d0
    if has_pre {
        vec_ops::ew_mul(&ws.r, &ws.minv, &mut ws.d);
    } else {
        ws.d.copy_from_slice(&ws.r);
    }
    for (pi, &di) in ws.p.iter_mut().zip(&ws.d) {
        *pi = -di;
    }
    let mut delta = dotf(&ws.r, &ws.d);
    if !delta.is_finite() {
        return Err(PcgError::NonFinite { iteration: 0, quantity: "preconditioned residual" });
    }
    if delta <= 0.0 {
        return Err(PcgError::Breakdown { iteration: 0, curvature: delta });
    }

    let mut iterations = 0;
    let mut converged = false;
    while iterations < settings.max_iter {
        iterations += 1;
        op.apply(&ws.p, &mut ws.kp)?;
        let pkp = dotf(&ws.p, &ws.kp);
        if !pkp.is_finite() {
            return Err(PcgError::NonFinite {
                iteration: iterations, quantity: "curvature pᵀKp"
            });
        }
        if pkp <= 0.0 {
            return Err(PcgError::Breakdown { iteration: iterations, curvature: pkp });
        }
        let lambda = delta / pkp;
        if !lambda.is_finite() {
            return Err(PcgError::NonFinite { iteration: iterations, quantity: "step length α" });
        }
        match pool {
            Some(pl) => {
                vec_ops::axpy_par(lambda, &ws.p, x, pl);
                vec_ops::axpy_par(lambda, &ws.kp, &mut ws.r, pl);
            }
            None => {
                vec_ops::axpy(lambda, &ws.p, x);
                vec_ops::axpy(lambda, &ws.kp, &mut ws.r);
            }
        }
        res_norm = norm2f(&ws.r);
        if !res_norm.is_finite() {
            return Err(PcgError::NonFinite { iteration: iterations, quantity: "residual norm" });
        }
        if res_norm < tol {
            converged = true;
            break;
        }
        if has_pre {
            vec_ops::ew_mul(&ws.r, &ws.minv, &mut ws.d);
        } else {
            ws.d.copy_from_slice(&ws.r);
        }
        let delta_new = dotf(&ws.r, &ws.d);
        if !delta_new.is_finite() {
            return Err(PcgError::NonFinite {
                iteration: iterations,
                quantity: "preconditioned residual",
            });
        }
        if delta_new <= 0.0 {
            return Err(PcgError::Breakdown { iteration: iterations, curvature: delta_new });
        }
        let mu = delta_new / delta;
        delta = delta_new;
        // p = μp − d
        match pool {
            Some(pl) => vec_ops::lincomb_par(-1.0, &ws.d, mu, &mut ws.p, pl),
            None => {
                for (pi, &di) in ws.p.iter_mut().zip(&ws.d) {
                    *pi = mu * *pi - di;
                }
            }
        }
    }
    Ok(PcgSummary { iterations, residual: res_norm, converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    struct MatOp {
        m: CsrMatrix,
    }

    impl LinearOperator for MatOp {
        fn dim(&self) -> usize {
            self.m.nrows()
        }
        fn apply(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
            self.m.spmv(x, y).map_err(LinsysError::from)
        }
        fn precond_diag(&self) -> Option<Vec<f64>> {
            Some(self.m.diagonal())
        }
    }

    fn spd_matrix(n: usize) -> CsrMatrix {
        // Tridiagonal SPD: 2 on diagonal, -1 off diagonal, plus i on diag.
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64 * 0.1));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn solves_identity_in_one_iteration() {
        let mut op = MatOp { m: CsrMatrix::identity(5) };
        let b = vec![1.0, -2.0, 3.0, 0.5, 0.0];
        let r = pcg(&mut op, &b, &[0.0; 5], &PcgSettings::default()).unwrap();
        assert!(r.converged);
        assert!(r.iterations <= 1);
        for (xi, bi) in r.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let n = 50;
        let m = spd_matrix(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut b = vec![0.0; n];
        m.spmv(&x_true, &mut b).unwrap();
        let mut op = MatOp { m };
        let r = pcg(&mut op, &b, &vec![0.0; n], &PcgSettings::default()).unwrap();
        assert!(r.converged, "residual {}", r.residual);
        for (got, want) in r.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn warm_start_at_solution_converges_immediately() {
        let n = 20;
        let m = spd_matrix(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut b = vec![0.0; n];
        m.spmv(&x_true, &mut b).unwrap();
        let mut op = MatOp { m };
        let r = pcg(&mut op, &b, &x_true, &PcgSettings::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn zero_rhs_returns_immediately_from_zero() {
        let mut op = MatOp { m: spd_matrix(4) };
        let r = pcg(&mut op, &[0.0; 4], &[0.0; 4], &PcgSettings::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 4]);
    }

    #[test]
    fn respects_iteration_cap() {
        let n = 100;
        let m = spd_matrix(n);
        let b = vec![1.0; n];
        let mut op = MatOp { m };
        let r =
            pcg(&mut op, &b, &vec![0.0; n], &PcgSettings { eps: 1e-14, eps_abs: 0.0, max_iter: 2 })
                .unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn preconditioning_speeds_up_ill_conditioned_systems() {
        // Diagonal matrix with a huge condition number: Jacobi solves it in
        // a single iteration, identity preconditioning needs many.
        let n = 40;
        let diag: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 7) as i32)).collect();
        struct NoPre(CsrMatrix);
        impl LinearOperator for NoPre {
            fn dim(&self) -> usize {
                self.0.nrows()
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
                self.0.spmv(x, y).map_err(LinsysError::from)
            }
        }
        let b = vec![1.0; n];
        let settings = PcgSettings { eps: 1e-10, ..Default::default() };
        let mut pre = MatOp { m: CsrMatrix::from_diag(&diag) };
        let with = pcg(&mut pre, &b, &vec![0.0; n], &settings).unwrap();
        let mut nop = NoPre(CsrMatrix::from_diag(&diag));
        let without = pcg(&mut nop, &b, &vec![0.0; n], &settings).unwrap();
        assert!(with.converged);
        assert!(with.iterations < without.iterations);
        assert!(with.iterations <= 2);
    }

    #[test]
    fn indefinite_operator_reports_breakdown() {
        // diag(1, -1) is indefinite; the rhs steers the search into the
        // negative-curvature direction.
        let m = CsrMatrix::from_diag(&[1.0, -1.0]);
        struct NoPre(CsrMatrix);
        impl LinearOperator for NoPre {
            fn dim(&self) -> usize {
                self.0.nrows()
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
                self.0.spmv(x, y).map_err(LinsysError::from)
            }
        }
        let mut op = NoPre(m);
        let err = pcg(&mut op, &[0.0, 1.0], &[0.0; 2], &PcgSettings::default()).unwrap_err();
        match err {
            PcgError::Breakdown { curvature, .. } => assert!(curvature <= 0.0),
            other => panic!("expected breakdown, got {other:?}"),
        }
    }

    #[test]
    fn negative_semidefinite_operator_never_looks_converged() {
        let m = CsrMatrix::from_diag(&[-2.0, -3.0, -4.0]);
        let mut op = MatOp { m };
        let res = pcg(&mut op, &[1.0, 1.0, 1.0], &[0.0; 3], &PcgSettings::default());
        assert!(res.is_err(), "indefinite solve must not succeed: {res:?}");
    }

    #[test]
    fn non_finite_rhs_is_rejected() {
        let mut op = MatOp { m: spd_matrix(3) };
        let err =
            pcg(&mut op, &[1.0, f64::NAN, 0.0], &[0.0; 3], &PcgSettings::default()).unwrap_err();
        assert!(matches!(err, PcgError::NonFinite { .. }), "{err:?}");
    }

    #[test]
    fn non_finite_operator_output_is_detected() {
        struct PoisonOp;
        impl LinearOperator for PoisonOp {
            fn dim(&self) -> usize {
                2
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) -> Result<(), LinsysError> {
                y[0] = f64::NAN * x[0].max(1.0);
                y[1] = x[1];
                Ok(())
            }
        }
        let err = pcg(&mut PoisonOp, &[1.0, 1.0], &[0.0; 2], &PcgSettings::default()).unwrap_err();
        assert!(matches!(err, PcgError::NonFinite { .. }), "{err:?}");
    }

    #[test]
    fn operator_failure_is_propagated() {
        struct FailOp;
        impl LinearOperator for FailOp {
            fn dim(&self) -> usize {
                2
            }
            fn apply(&mut self, _x: &[f64], _y: &mut [f64]) -> Result<(), LinsysError> {
                Err(LinsysError::Dimension("device fault".into()))
            }
        }
        let err = pcg(&mut FailOp, &[1.0, 1.0], &[0.0; 2], &PcgSettings::default()).unwrap_err();
        assert!(matches!(err, PcgError::Operator(_)), "{err:?}");
    }
}
