//! Preconditioned Conjugate Gradient (Algorithm 2 of the RSQP paper).

use rsqp_sparse::vec_ops;

/// A symmetric positive-definite linear operator `y = K x`.
///
/// Implementors may maintain scratch space, hence `apply` takes `&mut self`.
pub trait LinearOperator {
    /// Operator dimension (square).
    fn dim(&self) -> usize;

    /// Computes `y = K x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `y.len()` differ from
    /// [`Self::dim`].
    fn apply(&mut self, x: &[f64], y: &mut [f64]);

    /// Diagonal of a preconditioner `M ≈ K` (not its inverse). `None`
    /// disables preconditioning (`M = I`).
    fn precond_diag(&self) -> Option<Vec<f64>> {
        None
    }
}

/// Convergence and iteration-limit settings for [`pcg`].
#[derive(Debug, Clone, PartialEq)]
pub struct PcgSettings {
    /// Relative tolerance: iterate until `‖r‖₂ < eps·‖b‖₂` (Algorithm 2,
    /// line 10).
    pub eps: f64,
    /// Absolute floor on the residual test, guarding `b ≈ 0`.
    pub eps_abs: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for PcgSettings {
    fn default() -> Self {
        PcgSettings { eps: 1e-8, eps_abs: 1e-12, max_iter: 5000 }
    }
}

/// Result of a PCG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PcgResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Number of iterations performed (operator applications minus one).
    pub iterations: usize,
    /// Final residual 2-norm `‖K x − b‖₂`.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Solves `K x = b` with the Preconditioned Conjugate Gradient method,
/// warm-started at `x0`.
///
/// Implements Algorithm 2 of the paper with a diagonal (Jacobi)
/// preconditioner taken from [`LinearOperator::precond_diag`].
///
/// # Panics
///
/// Panics if `b.len()` or `x0.len()` differ from `op.dim()`.
pub fn pcg(
    op: &mut dyn LinearOperator,
    b: &[f64],
    x0: &[f64],
    settings: &PcgSettings,
) -> PcgResult {
    let n = op.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x0.len(), n, "warm-start length mismatch");

    let minv: Option<Vec<f64>> = op.precond_diag().map(|d| {
        d.iter()
            .map(|&v| if v != 0.0 { 1.0 / v } else { 1.0 })
            .collect()
    });
    let apply_precond = |r: &[f64], d: &mut [f64]| match &minv {
        Some(mi) => vec_ops::ew_mul(r, mi, d),
        None => d.copy_from_slice(r),
    };

    let norm_b = vec_ops::norm2(b);
    let tol = (settings.eps * norm_b).max(settings.eps_abs);

    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    let mut d = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut kp = vec![0.0; n];

    // r0 = K x0 - b
    op.apply(&x, &mut r);
    vec_ops::axpy(-1.0, b, &mut r);
    let mut res_norm = vec_ops::norm2(&r);
    if res_norm <= tol {
        return PcgResult { x, iterations: 0, residual: res_norm, converged: true };
    }
    // d0 = M^{-1} r0 ; p0 = -d0
    apply_precond(&r, &mut d);
    for (pi, &di) in p.iter_mut().zip(&d) {
        *pi = -di;
    }
    let mut delta = vec_ops::dot(&r, &d);

    let mut iterations = 0;
    let mut converged = false;
    while iterations < settings.max_iter {
        iterations += 1;
        op.apply(&p, &mut kp);
        let pkp = vec_ops::dot(&p, &kp);
        if pkp <= 0.0 {
            // Operator is not positive definite along p (numerical
            // breakdown); stop with the current iterate.
            break;
        }
        let lambda = delta / pkp;
        vec_ops::axpy(lambda, &p, &mut x);
        vec_ops::axpy(lambda, &kp, &mut r);
        res_norm = vec_ops::norm2(&r);
        if res_norm < tol {
            converged = true;
            break;
        }
        apply_precond(&r, &mut d);
        let delta_new = vec_ops::dot(&r, &d);
        let mu = delta_new / delta;
        delta = delta_new;
        for (pi, &di) in p.iter_mut().zip(&d) {
            *pi = mu * *pi - di;
        }
    }
    PcgResult { x, iterations, residual: res_norm, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    struct MatOp {
        m: CsrMatrix,
    }

    impl LinearOperator for MatOp {
        fn dim(&self) -> usize {
            self.m.nrows()
        }
        fn apply(&mut self, x: &[f64], y: &mut [f64]) {
            self.m.spmv(x, y).unwrap();
        }
        fn precond_diag(&self) -> Option<Vec<f64>> {
            Some(self.m.diagonal())
        }
    }

    fn spd_matrix(n: usize) -> CsrMatrix {
        // Tridiagonal SPD: 2 on diagonal, -1 off diagonal, plus i on diag.
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64 * 0.1));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn solves_identity_in_one_iteration() {
        let mut op = MatOp { m: CsrMatrix::identity(5) };
        let b = vec![1.0, -2.0, 3.0, 0.5, 0.0];
        let r = pcg(&mut op, &b, &[0.0; 5], &PcgSettings::default());
        assert!(r.converged);
        assert!(r.iterations <= 1);
        for (xi, bi) in r.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let n = 50;
        let m = spd_matrix(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut b = vec![0.0; n];
        m.spmv(&x_true, &mut b).unwrap();
        let mut op = MatOp { m };
        let r = pcg(&mut op, &b, &vec![0.0; n], &PcgSettings::default());
        assert!(r.converged, "residual {}", r.residual);
        for (got, want) in r.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn warm_start_at_solution_converges_immediately() {
        let n = 20;
        let m = spd_matrix(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut b = vec![0.0; n];
        m.spmv(&x_true, &mut b).unwrap();
        let mut op = MatOp { m };
        let r = pcg(&mut op, &b, &x_true, &PcgSettings::default());
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn zero_rhs_returns_immediately_from_zero() {
        let mut op = MatOp { m: spd_matrix(4) };
        let r = pcg(&mut op, &[0.0; 4], &[0.0; 4], &PcgSettings::default());
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 4]);
    }

    #[test]
    fn respects_iteration_cap() {
        let n = 100;
        let m = spd_matrix(n);
        let b = vec![1.0; n];
        let mut op = MatOp { m };
        let r = pcg(
            &mut op,
            &b,
            &vec![0.0; n],
            &PcgSettings { eps: 1e-14, eps_abs: 0.0, max_iter: 2 },
        );
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn preconditioning_speeds_up_ill_conditioned_systems() {
        // Diagonal matrix with a huge condition number: Jacobi solves it in
        // a single iteration, identity preconditioning needs many.
        let n = 40;
        let diag: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 7) as i32)).collect();
        struct NoPre(CsrMatrix);
        impl LinearOperator for NoPre {
            fn dim(&self) -> usize {
                self.0.nrows()
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) {
                self.0.spmv(x, y).unwrap();
            }
        }
        let b = vec![1.0; n];
        let settings = PcgSettings { eps: 1e-10, ..Default::default() };
        let mut pre = MatOp { m: CsrMatrix::from_diag(&diag) };
        let with = pcg(&mut pre, &b, &vec![0.0; n], &settings);
        let mut nop = NoPre(CsrMatrix::from_diag(&diag));
        let without = pcg(&mut nop, &b, &vec![0.0; n], &settings);
        assert!(with.converged);
        assert!(with.iterations < without.iterations);
        assert!(with.iterations <= 2);
    }
}
