//! Fill-reducing orderings and symmetric permutations.
//!
//! OSQP pairs QDLDL with SuiteSparse AMD. We provide classical minimum
//! degree with dense-row deferral ([`min_degree_ordering`], the closest
//! simple relative of AMD), Reverse-Cuthill-McKee ([`rcm_ordering`]), and
//! the natural ordering as a baseline, plus the [`SymmetricPermutation`]
//! plumbing that applies an ordering to the KKT system while preserving
//! O(nnz) numeric refresh for ρ updates.

use rsqp_sparse::CscMatrix;

use crate::LinsysError;

/// Computes a Reverse-Cuthill-McKee ordering of the symmetric matrix whose
/// upper triangle is `upper`.
///
/// Returns `perm` such that new index `i` corresponds to old index
/// `perm[i]`. Disconnected components are each seeded from their
/// minimum-degree vertex.
///
/// # Errors
///
/// Returns [`LinsysError::Dimension`] if `upper` is not square.
pub fn rcm_ordering(upper: &CscMatrix) -> Result<Vec<usize>, LinsysError> {
    let n = upper.ncols();
    if upper.nrows() != n {
        return Err(LinsysError::Dimension(format!(
            "rcm_ordering requires a square matrix, got {}x{}",
            upper.nrows(),
            n
        )));
    }
    // Build a full (symmetric) adjacency list from the upper triangle.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let (rows, _) = upper.col(j);
        for &i in rows {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Stable iteration over candidate seeds sorted by degree.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&v| degree[v]);
    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        // BFS, visiting neighbours in increasing degree order.
        visited[seed] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Ok(order)
}

/// Inverts a permutation: `inv[perm[i]] == i`.
///
/// # Errors
///
/// Returns [`LinsysError::InvalidPermutation`] if `perm` is not a
/// permutation of `0..perm.len()`.
pub fn inverse_permutation(perm: &[usize]) -> Result<Vec<usize>, LinsysError> {
    let n = perm.len();
    let mut inv = vec![usize::MAX; n];
    for (i, &p) in perm.iter().enumerate() {
        if p >= n || inv[p] != usize::MAX {
            return Err(LinsysError::InvalidPermutation(format!(
                "index {p} at position {i} is out of range or repeated"
            )));
        }
        inv[p] = i;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    fn upper_of(dense: &[Vec<f64>]) -> CscMatrix {
        CsrMatrix::from_dense(dense).upper_triangle().to_csc()
    }

    #[test]
    fn rcm_is_a_permutation() {
        // Path graph 0-1-2-3-4 given in scrambled labels.
        let n = 5;
        let edges = [(0usize, 3usize), (3, 1), (1, 4), (4, 2)];
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 1.0;
        }
        for &(a, b) in &edges {
            dense[a][b] = 1.0;
            dense[b][a] = 1.0;
        }
        let perm = rcm_ordering(&upper_of(&dense)).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_path() {
        // A path graph has bandwidth 1 under the RCM ordering.
        let n = 9;
        // scrambled path: vertices relabeled by i -> (4*i) % 9 (coprime)
        let label = |i: usize| (4 * i) % n;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 1.0;
        }
        for i in 0..n - 1 {
            let (a, b) = (label(i), label(i + 1));
            dense[a][b] = 1.0;
            dense[b][a] = 1.0;
        }
        let perm = rcm_ordering(&upper_of(&dense)).unwrap();
        let inv = inverse_permutation(&perm).unwrap();
        let mut bandwidth = 0usize;
        for i in 0..n - 1 {
            let (a, b) = (label(i), label(i + 1));
            bandwidth = bandwidth.max(inv[a].abs_diff(inv[b]));
        }
        assert_eq!(bandwidth, 1, "perm {perm:?} did not linearize the path");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let n = 4;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 1.0;
        }
        dense[0][1] = 1.0;
        dense[1][0] = 1.0;
        let perm = rcm_ordering(&upper_of(&dense)).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let perm = vec![2, 0, 3, 1];
        let inv = inverse_permutation(&perm).unwrap();
        for i in 0..perm.len() {
            assert_eq!(inv[perm[i]], i);
        }
    }

    #[test]
    fn inverse_of_non_permutation_is_an_error() {
        assert!(matches!(inverse_permutation(&[0, 0]), Err(LinsysError::InvalidPermutation(_))));
    }
}

/// Computes a minimum-degree ordering of the symmetric matrix whose upper
/// triangle is `upper` — our stand-in for SuiteSparse AMD (see `DESIGN.md`).
///
/// Classical minimum degree on the elimination graph: repeatedly eliminate
/// a vertex of smallest current degree and connect its neighbours into a
/// clique. Vertices whose degree exceeds `dense_threshold(n)` are deferred
/// to the end (AMD's dense-row handling), which keeps the clique formation
/// from going quadratic on nearly-dense rows.
///
/// Returns `perm` such that new index `i` corresponds to old index
/// `perm[i]`.
///
/// # Errors
///
/// Returns [`LinsysError::Dimension`] if `upper` is not square.
pub fn min_degree_ordering(upper: &CscMatrix) -> Result<Vec<usize>, LinsysError> {
    use std::collections::BTreeSet;

    let n = upper.ncols();
    if upper.nrows() != n {
        return Err(LinsysError::Dimension(format!(
            "min_degree_ordering requires a square matrix, got {}x{}",
            upper.nrows(),
            n
        )));
    }
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for j in 0..n {
        let (rows, _) = upper.col(j);
        for &i in rows {
            if i != j {
                adj[i].insert(j);
                adj[j].insert(i);
            }
        }
    }
    let dense_cap = dense_threshold(n);
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut deferred: Vec<usize> = Vec::new();

    // Simple bucketed selection: scan for the minimum current degree.
    // A binary heap with lazy invalidation avoids O(n^2) scans.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> =
        (0..n).map(|v| std::cmp::Reverse((adj[v].len(), v))).collect();

    while order.len() + deferred.len() < n {
        let v = loop {
            let Some(std::cmp::Reverse((deg, v))) = heap.pop() else {
                // Heap exhausted by stale entries; fall back to a scan.
                break (0..n)
                    .filter(|&u| !eliminated[u])
                    .min_by_key(|&u| adj[u].len())
                    .expect("some vertex remains");
            };
            if eliminated[v] || deg != adj[v].len() {
                continue; // stale heap entry
            }
            break v;
        };
        if adj[v].len() > dense_cap {
            // Defer dense vertices: mark eliminated but order them last.
            eliminated[v] = true;
            deferred.push(v);
            // Remove from neighbours without forming a clique (AMD treats
            // dense rows as if eliminated last).
            let nbrs: Vec<usize> = adj[v].iter().copied().collect();
            for &u in &nbrs {
                adj[u].remove(&v);
                heap.push(std::cmp::Reverse((adj[u].len(), u)));
            }
            adj[v].clear();
            continue;
        }
        eliminated[v] = true;
        order.push(v);
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        // Connect neighbours into a clique and drop v.
        for (a_idx, &a) in nbrs.iter().enumerate() {
            adj[a].remove(&v);
            for &b in &nbrs[a_idx + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &u in &nbrs {
            heap.push(std::cmp::Reverse((adj[u].len(), u)));
        }
        adj[v].clear();
    }
    deferred.sort_unstable();
    order.extend(deferred);
    Ok(order)
}

fn dense_threshold(n: usize) -> usize {
    // AMD uses ~10·sqrt(n); anything denser is deferred.
    (10.0 * (n as f64).sqrt()).ceil() as usize + 16
}

/// A symmetric permutation of an upper-triangular matrix, with the data-slot
/// mapping needed to refresh numeric values in place (for ρ updates that
/// change values but not structure).
#[derive(Debug, Clone)]
pub struct SymmetricPermutation {
    perm: Vec<usize>,
    iperm: Vec<usize>,
    mat: CscMatrix,
    /// `src[k]` = index into the *original* data array whose value belongs
    /// at permuted data slot `k`.
    src: Vec<usize>,
}

impl SymmetricPermutation {
    /// Builds `Pᵀ·M·P` (upper triangle) for the symmetric matrix whose
    /// upper triangle is `upper`, where new index `i` = old `perm[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if `upper` is not square or its
    /// size differs from `perm.len()`, and
    /// [`LinsysError::InvalidPermutation`] if `perm` is not a permutation.
    pub fn new(upper: &CscMatrix, perm: Vec<usize>) -> Result<Self, LinsysError> {
        let n = upper.ncols();
        if upper.nrows() != n {
            return Err(LinsysError::Dimension(format!(
                "symmetric permutation requires square input, got {}x{}",
                upper.nrows(),
                n
            )));
        }
        if perm.len() != n {
            return Err(LinsysError::Dimension(format!(
                "permutation length {} does not match matrix dimension {n}",
                perm.len()
            )));
        }
        let iperm = inverse_permutation(&perm)?;
        // Gather permuted triplets (upper) with their source data index.
        let mut entries: Vec<(usize, usize, usize)> = Vec::with_capacity(upper.nnz());
        let mut data_idx = 0usize;
        for j in 0..n {
            let (rows, _) = upper.col(j);
            for &i in rows {
                let (mut pi, mut pj) = (iperm[i], iperm[j]);
                if pi > pj {
                    std::mem::swap(&mut pi, &mut pj);
                }
                entries.push((pj, pi, data_idx));
                data_idx += 1;
            }
        }
        entries.sort_unstable();
        let mut colptr = vec![0usize; n + 1];
        let mut rowidx = Vec::with_capacity(entries.len());
        let mut src = Vec::with_capacity(entries.len());
        for &(pj, pi, d) in &entries {
            colptr[pj + 1] += 1;
            rowidx.push(pi);
            src.push(d);
        }
        for j in 0..n {
            colptr[j + 1] += colptr[j];
        }
        let data: Vec<f64> = src.iter().map(|&d| upper.data()[d]).collect();
        let mat = CscMatrix::from_raw_parts(n, n, colptr, rowidx, data)?;
        Ok(SymmetricPermutation { perm, iperm, mat, src })
    }

    /// The permuted upper-triangular matrix.
    pub fn matrix(&self) -> &CscMatrix {
        &self.mat
    }

    /// The permutation (new → old).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Copies fresh numeric values from the (structurally identical)
    /// original matrix into the permuted one.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if `upper` has a different nnz
    /// count than the original (the structure changed).
    pub fn refresh_values(&mut self, upper: &CscMatrix) -> Result<(), LinsysError> {
        if upper.nnz() != self.src.len() {
            return Err(LinsysError::Dimension(format!(
                "refresh_values structure changed: {} nnz vs original {}",
                upper.nnz(),
                self.src.len()
            )));
        }
        let data = self.mat.data_mut();
        for (k, &d) in self.src.iter().enumerate() {
            data[k] = upper.data()[d];
        }
        Ok(())
    }

    /// Permutes a vector into the reordered space (`out[i] = v[perm[i]]`).
    pub fn permute_vec(&self, v: &[f64]) -> Vec<f64> {
        self.perm.iter().map(|&p| v[p]).collect()
    }

    /// Maps a reordered-space vector back (`out[perm[i]] = v[i]`).
    pub fn unpermute_vec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; v.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = v[i];
        }
        out
    }

    /// In-place variant of [`Self::permute_vec`] using a scratch buffer.
    pub fn permute_into(&self, v: &[f64], out: &mut [f64]) {
        for (o, &p) in out.iter_mut().zip(&self.perm) {
            *o = v[p];
        }
    }

    /// In-place variant of [`Self::unpermute_vec`].
    pub fn unpermute_into(&self, v: &[f64], out: &mut [f64]) {
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = v[i];
        }
    }

    /// Inverse permutation (old → new).
    pub fn iperm(&self) -> &[usize] {
        &self.iperm
    }
}

#[cfg(test)]
mod md_tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    fn upper_of(dense: &[Vec<f64>]) -> CscMatrix {
        CsrMatrix::from_dense(dense).upper_triangle().to_csc()
    }

    /// Arrow matrix with the dense row/column FIRST: natural ordering fills
    /// in completely, minimum degree orders the hub last and gets zero fill.
    fn bad_arrow(n: usize) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 4.0;
            if i > 0 {
                dense[0][i] = 1.0;
                dense[i][0] = 1.0;
            }
        }
        dense
    }

    fn fill_of(upper: &CscMatrix, perm: Option<Vec<usize>>) -> usize {
        let mat = match perm {
            Some(p) => SymmetricPermutation::new(upper, p).unwrap().matrix().clone(),
            None => upper.clone(),
        };
        crate::Ldlt::factor(&mat).expect("SPD input factors").l_nnz()
    }

    #[test]
    fn min_degree_is_a_permutation() {
        let u = upper_of(&bad_arrow(12));
        let perm = min_degree_ordering(&u).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn min_degree_eliminates_arrow_fill() {
        let n = 24;
        let u = upper_of(&bad_arrow(n));
        let natural = fill_of(&u, None);
        let md = fill_of(&u, Some(min_degree_ordering(&u).unwrap()));
        // Natural: eliminating the hub first fills the whole matrix.
        assert_eq!(natural, (n * (n - 1)) / 2);
        // MD: hub eliminated last -> only the arrow edges remain.
        assert_eq!(md, n - 1, "minimum degree should avoid all fill");
    }

    #[test]
    fn min_degree_never_worse_than_natural_on_benchmarks() {
        // Tridiagonal plus random long-range edges.
        let n = 30;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 6.0;
            if i + 1 < n {
                dense[i][i + 1] = 1.0;
                dense[i + 1][i] = 1.0;
            }
            let far = (i * 7 + 3) % n;
            if far != i {
                dense[i][far] = 0.5;
                dense[far][i] = 0.5;
            }
        }
        let u = upper_of(&dense);
        let natural = fill_of(&u, None);
        let md = fill_of(&u, Some(min_degree_ordering(&u).unwrap()));
        assert!(md <= natural, "md {md} vs natural {natural}");
    }

    #[test]
    fn symmetric_permutation_preserves_solutions() {
        let n = 10;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 5.0 + i as f64;
            if i + 2 < n {
                dense[i][i + 2] = -1.0;
                dense[i + 2][i] = -1.0;
            }
        }
        let u = upper_of(&dense);
        let perm = min_degree_ordering(&u).unwrap();
        let sp = SymmetricPermutation::new(&u, perm).unwrap();
        let f = crate::Ldlt::factor(sp.matrix()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let pb = sp.permute_vec(&b);
        let px = f.solve(&pb).unwrap();
        let x = sp.unpermute_vec(&px);
        // Check A x = b against the original dense matrix.
        for i in 0..n {
            let got: f64 = (0..n).map(|j| dense[i][j] * x[j]).sum();
            assert!((got - b[i]).abs() < 1e-9, "row {i}: {got} vs {}", b[i]);
        }
    }

    #[test]
    fn refresh_values_tracks_source_matrix() {
        let u = upper_of(&bad_arrow(6));
        let perm = min_degree_ordering(&u).unwrap();
        let mut sp = SymmetricPermutation::new(&u, perm).unwrap();
        // Scale the original values and refresh.
        let mut u2 = u.clone();
        for v in u2.data_mut() {
            *v *= 3.0;
        }
        sp.refresh_values(&u2).unwrap();
        let rebuilt = SymmetricPermutation::new(&u2, sp.perm().to_vec()).unwrap();
        assert_eq!(sp.matrix(), rebuilt.matrix());
    }

    #[test]
    fn permute_roundtrip() {
        let u = upper_of(&bad_arrow(5));
        let sp = SymmetricPermutation::new(&u, vec![4, 2, 0, 1, 3]).unwrap();
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(sp.unpermute_vec(&sp.permute_vec(&v)), v);
        let mut buf = vec![0.0; 5];
        sp.permute_into(&v, &mut buf);
        assert_eq!(buf, sp.permute_vec(&v));
        let mut back = vec![0.0; 5];
        sp.unpermute_into(&buf, &mut back);
        assert_eq!(back, v);
    }

    #[test]
    fn star_hub_is_eliminated_near_the_end() {
        // Star graph: the hub always has the largest degree, so minimum
        // degree eliminates it among the last two vertices.
        let n = 60;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((0, i, 1.0));
                t.push((i, 0, 1.0));
            }
        }
        let u = CsrMatrix::from_triplets(n, n, t).upper_triangle().to_csc();
        let perm = min_degree_ordering(&u).unwrap();
        let hub_pos = perm.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= n - 2, "hub at position {hub_pos} of {n}");
    }

    #[test]
    fn dense_clique_vertices_are_deferred() {
        // A complete graph bigger than the dense threshold: every vertex is
        // dense at pop time, so all are deferred and emitted in index order.
        let n = 200;
        let mut t = Vec::new();
        for i in 0..n {
            for j in 0..n {
                t.push((i, j, 1.0));
            }
        }
        let u = CsrMatrix::from_triplets(n, n, t).upper_triangle().to_csc();
        let perm = min_degree_ordering(&u).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // Vertex 0 is popped first while dense, hence deferred to the tail.
        let pos0 = perm.iter().position(|&v| v == 0).unwrap();
        assert!(pos0 > n / 2, "vertex 0 should be deferred, found at {pos0}");
    }
}
