use std::error::Error;
use std::fmt;

use rsqp_sparse::SparseError;

/// Error type for factorization and KKT assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum LinsysError {
    /// The input matrix is not upper triangular.
    NotUpperTriangular,
    /// Column `0` is missing its diagonal entry (LDLᵀ requires an explicit,
    /// possibly zero-valued diagonal in every column).
    MissingDiagonal(usize),
    /// A zero pivot was encountered while factorizing column `0`; the matrix
    /// is not quasi-definite.
    ZeroPivot(usize),
    /// Operand dimensions disagree.
    Dimension(String),
    /// A fill-reducing ordering or permutation vector is not a valid
    /// permutation of `0..n`.
    InvalidPermutation(String),
    /// An underlying sparse-matrix operation failed.
    Sparse(SparseError),
}

impl fmt::Display for LinsysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinsysError::NotUpperTriangular => {
                write!(f, "matrix must be upper triangular for LDLT factorization")
            }
            LinsysError::MissingDiagonal(j) => {
                write!(f, "column {j} is missing an explicit diagonal entry")
            }
            LinsysError::ZeroPivot(j) => write!(f, "zero pivot in column {j}"),
            LinsysError::Dimension(msg) => write!(f, "dimension error: {msg}"),
            LinsysError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            LinsysError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
        }
    }
}

impl Error for LinsysError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LinsysError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for LinsysError {
    fn from(e: SparseError) -> Self {
        LinsysError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_column() {
        assert!(LinsysError::ZeroPivot(7).to_string().contains('7'));
        assert!(LinsysError::MissingDiagonal(3).to_string().contains('3'));
    }

    #[test]
    fn from_sparse_error_chains_source() {
        use std::error::Error as _;
        let e: LinsysError = SparseError::InvalidStructure("x".into()).into();
        assert!(e.source().is_some());
    }
}
