//! Linear-system solvers used inside the OSQP/RSQP iteration.
//!
//! OSQP solves the KKT system (Eq. 2 of the RSQP paper) either *directly*
//! with a sparse quasi-definite LDLᵀ factorization (the CPU default,
//! mirroring QDLDL) or *indirectly* by reducing it to
//! `(P + σI + Aᵀ diag(ρ) A) x = b` (Eq. 3) and applying the Preconditioned
//! Conjugate Gradient method (Algorithm 2) — the path taken by cuOSQP and by
//! RSQP's FPGA accelerator.
//!
//! This crate provides both:
//!
//! * [`Ldlt`] — symbolic + numeric LDLᵀ of an upper-triangular CSC matrix
//!   with quasi-definite pivots, plus triangular solves,
//! * [`KktMatrix`] — assembly of the (permuted) KKT matrix from `P`, `A`,
//!   `σ`, `ρ`, with cheap ρ updates that reuse the symbolic factorization,
//! * [`ReducedKktOp`] — the matrix-free reduced-KKT operator,
//! * [`pcg`] — Algorithm 2 with a Jacobi (diagonal) preconditioner,
//! * [`rcm_ordering`] — Reverse-Cuthill-McKee fill-reducing ordering (our
//!   substitution for SuiteSparse AMD; see `DESIGN.md`).
//!
//! # Example: solving a tiny KKT system both ways
//!
//! ```
//! use rsqp_sparse::CsrMatrix;
//! use rsqp_linsys::{KktMatrix, Ldlt, ReducedKktOp, pcg, PcgSettings};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = CsrMatrix::from_diag(&[2.0, 2.0]);
//! let a = CsrMatrix::from_dense(&[vec![1.0, 1.0]]);
//! let rho = vec![0.1];
//! let kkt = KktMatrix::assemble(&p, &a, 1e-6, &rho)?;
//! let mut ldlt = Ldlt::factor(kkt.matrix())?;
//! let mut rhs = vec![1.0, 1.0, 0.0];
//! ldlt.solve_in_place(&mut rhs)?;
//!
//! let mut op = ReducedKktOp::new(&p, &a, 1e-6, &rho)?;
//! let b = vec![1.0, 1.0];
//! let sol = pcg(&mut op, &b, &vec![0.0; 2], &PcgSettings::default())?;
//! assert!((sol.x[0] - rhs[0]).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod kkt;
mod ldlt;
mod ordering;
mod pcg;

pub use error::LinsysError;
pub use kkt::{KktMatrix, ReducedKktOp};
pub use ldlt::Ldlt;
pub use ordering::{inverse_permutation, min_degree_ordering, rcm_ordering, SymmetricPermutation};
pub use pcg::{pcg, pcg_with, LinearOperator, PcgError, PcgResult, PcgSettings};
pub use pcg::{PcgSummary, PcgWorkspace};
