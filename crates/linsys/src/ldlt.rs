//! Sparse quasi-definite LDLᵀ factorization.
//!
//! This is a safe-Rust port of the QDLDL algorithm used by OSQP: an
//! up-looking LDLᵀ of an upper-triangular CSC matrix without pivoting, which
//! is guaranteed to exist for quasi-definite matrices such as the OSQP KKT
//! matrix `[[P + σI, Aᵀ], [A, -diag(1/ρ)]]`.
//!
//! The factorization is split into a symbolic phase (elimination tree +
//! column counts, run once per sparsity structure) and a numeric phase (run
//! again whenever values change, e.g. on a ρ update) — exactly the three-
//! stage structure described in §2.2 of the RSQP paper.

use rsqp_sparse::CscMatrix;

use crate::LinsysError;

/// An LDLᵀ factorization `A = L·D·Lᵀ` with unit lower-triangular `L`
/// (stored without its diagonal) and diagonal `D`.
#[derive(Debug, Clone)]
pub struct Ldlt {
    n: usize,
    etree: Vec<isize>,
    lnz: Vec<usize>,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_data: Vec<f64>,
    d: Vec<f64>,
    dinv: Vec<f64>,
    pos_d: usize,
}

impl Ldlt {
    /// Factorizes an upper-triangular CSC matrix (symbolic + numeric).
    ///
    /// Every column must contain an explicit diagonal entry (it may be zero
    /// *valued* only if a later pivot never divides by it — quasi-definite
    /// inputs always have non-zero pivots).
    ///
    /// # Errors
    ///
    /// * [`LinsysError::NotUpperTriangular`] if any entry lies below the
    ///   diagonal,
    /// * [`LinsysError::MissingDiagonal`] if a column lacks its diagonal,
    /// * [`LinsysError::ZeroPivot`] if a pivot is exactly zero.
    pub fn factor(a: &CscMatrix) -> Result<Self, LinsysError> {
        let n = a.ncols();
        if a.nrows() != n {
            return Err(LinsysError::Dimension(format!(
                "LDLT requires a square matrix, got {}x{}",
                a.nrows(),
                n
            )));
        }
        let (etree, lnz) = etree_and_counts(a)?;
        let total_lnz: usize = lnz.iter().sum();
        let mut fac = Ldlt {
            n,
            etree,
            lnz,
            l_colptr: vec![0; n + 1],
            l_rowidx: vec![0; total_lnz],
            l_data: vec![0.0; total_lnz],
            d: vec![0.0; n],
            dinv: vec![0.0; n],
            pos_d: 0,
        };
        for j in 0..n {
            fac.l_colptr[j + 1] = fac.l_colptr[j] + fac.lnz[j];
        }
        fac.refactor(a)?;
        Ok(fac)
    }

    /// Re-runs the numeric factorization for a matrix with the **same
    /// sparsity structure** as the one given to [`Ldlt::factor`].
    ///
    /// This is the cheap path taken when OSQP updates ρ: the symbolic
    /// analysis (elimination tree, column counts) is reused.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ldlt::factor`]. If the structure differs from
    /// the original, the factorization may also fail with an index error via
    /// [`LinsysError::NotUpperTriangular`].
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), LinsysError> {
        let n = self.n;
        if a.ncols() != n || a.nrows() != n {
            return Err(LinsysError::Dimension(format!(
                "refactor shape {}x{} != {}",
                a.nrows(),
                a.ncols(),
                n
            )));
        }
        let mut y_markers = vec![false; n];
        let mut y_idx = vec![0usize; n];
        let mut elim_buffer = vec![0usize; n];
        let mut l_next_space = vec![0usize; n];
        let mut y_vals = vec![0.0f64; n];
        l_next_space[..n].copy_from_slice(&self.l_colptr[..n]);
        self.pos_d = 0;

        for k in 0..n {
            let (rows, vals) = a.col(k);
            if rows.is_empty() {
                return Err(LinsysError::MissingDiagonal(k));
            }
            // Upper-triangular sorted columns keep the diagonal last.
            let last = rows.len() - 1;
            if rows[last] != k {
                return if rows[last] > k {
                    Err(LinsysError::NotUpperTriangular)
                } else {
                    Err(LinsysError::MissingDiagonal(k))
                };
            }
            self.d[k] = vals[last];

            // Scatter the strictly-upper entries of column k and compute the
            // elimination reach through the etree.
            let mut nnz_y = 0usize;
            for p in 0..last {
                let b_idx = rows[p];
                y_vals[b_idx] = vals[p];
                let mut next_idx = b_idx;
                if !y_markers[next_idx] {
                    y_markers[next_idx] = true;
                    elim_buffer[0] = next_idx;
                    let mut nnz_e = 1usize;
                    loop {
                        let parent = self.etree[next_idx];
                        if parent == -1 || parent as usize >= k {
                            break;
                        }
                        let parent = parent as usize;
                        if y_markers[parent] {
                            break;
                        }
                        y_markers[parent] = true;
                        elim_buffer[nnz_e] = parent;
                        nnz_e += 1;
                        next_idx = parent;
                    }
                    while nnz_e > 0 {
                        nnz_e -= 1;
                        y_idx[nnz_y] = elim_buffer[nnz_e];
                        nnz_y += 1;
                    }
                }
            }

            // Process the reach in topological (reverse insertion) order.
            for i in (0..nnz_y).rev() {
                let cidx = y_idx[i];
                let tmp_idx = l_next_space[cidx];
                let y_val = y_vals[cidx];
                for j in self.l_colptr[cidx]..tmp_idx {
                    y_vals[self.l_rowidx[j]] -= self.l_data[j] * y_val;
                }
                self.l_rowidx[tmp_idx] = k;
                self.l_data[tmp_idx] = y_val * self.dinv[cidx];
                self.d[k] -= y_val * self.l_data[tmp_idx];
                l_next_space[cidx] += 1;
                y_vals[cidx] = 0.0;
                y_markers[cidx] = false;
            }

            if self.d[k] == 0.0 {
                return Err(LinsysError::ZeroPivot(k));
            }
            if self.d[k] > 0.0 {
                self.pos_d += 1;
            }
            self.dinv[k] = 1.0 / self.d[k];
        }
        Ok(())
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries in `L` (excluding the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l_data.len()
    }

    /// The diagonal `D` of the factorization.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Number of positive entries in `D` — for a quasi-definite KKT matrix
    /// this must equal the number of primal variables.
    pub fn num_positive_d(&self) -> usize {
        self.pos_d
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if `b.len() != dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinsysError> {
        if b.len() != self.n {
            return Err(LinsysError::Dimension(format!(
                "solve rhs length {} does not match factorization dimension {}",
                b.len(),
                self.n
            )));
        }
        // x = L^{-1} b   (L is unit lower triangular, stored by columns)
        for j in 0..self.n {
            let bj = b[j];
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                b[self.l_rowidx[p]] -= self.l_data[p] * bj;
            }
        }
        // x = D^{-1} x
        for i in 0..self.n {
            b[i] *= self.dinv[i];
        }
        // x = L^{-T} x
        for j in (0..self.n).rev() {
            let mut bj = b[j];
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                bj -= self.l_data[p] * b[self.l_rowidx[p]];
            }
            b[j] = bj;
        }
        Ok(())
    }

    /// Convenience wrapper returning a fresh solution vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinsysError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves with `sweeps` rounds of iterative refinement against the
    /// original matrix `a` (which must be the factorized matrix): each
    /// round computes `r = b − A·x` via the symmetric upper-triangular
    /// product and corrects `x += A⁻¹·r`. Cuts the residual of
    /// ill-conditioned quasi-definite KKT solves by several digits.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::Dimension`] if the dimensions of `a` or `b`
    /// disagree with the factorization.
    pub fn solve_refined(
        &self,
        a: &CscMatrix,
        b: &[f64],
        sweeps: usize,
    ) -> Result<Vec<f64>, LinsysError> {
        if a.ncols() != self.n || a.nrows() != self.n {
            return Err(LinsysError::Dimension(format!(
                "refinement matrix {}x{} does not match factorization dimension {}",
                a.nrows(),
                a.ncols(),
                self.n
            )));
        }
        let mut x = self.solve(b)?;
        let mut ax = vec![0.0; self.n];
        for _ in 0..sweeps {
            a.symm_spmv_upper(&x, &mut ax)?;
            let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            self.solve_in_place(&mut r)?;
            for (xi, ri) in x.iter_mut().zip(&r) {
                *xi += ri;
            }
        }
        Ok(x)
    }
}

/// Computes the elimination tree and per-column counts of `L` for an
/// upper-triangular CSC matrix.
fn etree_and_counts(a: &CscMatrix) -> Result<(Vec<isize>, Vec<usize>), LinsysError> {
    let n = a.ncols();
    let mut work = vec![usize::MAX; n];
    let mut etree = vec![-1isize; n];
    let mut lnz = vec![0usize; n];
    for j in 0..n {
        work[j] = j;
        let (rows, _) = a.col(j);
        for &i in rows {
            if i > j {
                return Err(LinsysError::NotUpperTriangular);
            }
            let mut i = i;
            while work[i] != j {
                if etree[i] == -1 {
                    etree[i] = j as isize;
                }
                lnz[i] += 1;
                work[i] = j;
                i = etree[i] as usize;
            }
        }
    }
    Ok((etree, lnz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    fn upper(dense: &[Vec<f64>]) -> CscMatrix {
        CsrMatrix::from_dense(dense).upper_triangle().to_csc()
    }

    #[test]
    fn factor_spd_2x2() {
        let a = upper(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
        let f = Ldlt::factor(&a).unwrap();
        assert_eq!(f.num_positive_d(), 2);
        let x = f.solve(&[1.0, 1.0]).unwrap();
        // Verify A x = b with the full matrix.
        let full = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
        let mut b = vec![0.0; 2];
        full.spmv(&x, &mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factor_quasi_definite_kkt() {
        // [[ 2, 0, 1], [0, 2, 1], [1, 1, -1]] : quasi-definite (2 pos, 1 neg)
        let dense = vec![vec![2.0, 0.0, 1.0], vec![0.0, 2.0, 1.0], vec![1.0, 1.0, -1.0]];
        let f = Ldlt::factor(&upper(&dense)).unwrap();
        assert_eq!(f.num_positive_d(), 2);
        let x = f.solve(&[1.0, 2.0, 3.0]).unwrap();
        let full = CsrMatrix::from_dense(&dense);
        let mut b = vec![0.0; 3];
        full.spmv(&x, &mut b).unwrap();
        for (got, want) in b.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "got {got} want {want}");
        }
    }

    #[test]
    fn missing_diagonal_is_rejected() {
        // Column 1 has no diagonal entry.
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]).to_csc();
        assert!(matches!(Ldlt::factor(&a), Err(LinsysError::MissingDiagonal(1))));
    }

    #[test]
    fn lower_triangular_entry_rejected() {
        let a =
            CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0)]).to_csc();
        assert!(matches!(Ldlt::factor(&a), Err(LinsysError::NotUpperTriangular)));
    }

    #[test]
    fn zero_pivot_detected() {
        // Explicit zero diagonal entry (from_triplets keeps explicit zeros).
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 0.0), (1, 1, 1.0)]).to_csc();
        assert!(matches!(Ldlt::factor(&a), Err(LinsysError::ZeroPivot(0))));
    }

    #[test]
    fn non_square_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).to_csc();
        assert!(matches!(Ldlt::factor(&a), Err(LinsysError::Dimension(_))));
    }

    #[test]
    fn refactor_reuses_structure() {
        let d1 = vec![vec![4.0, 1.0, 0.0], vec![1.0, 3.0, 1.0], vec![0.0, 1.0, 5.0]];
        let mut f = Ldlt::factor(&upper(&d1)).unwrap();
        // Same structure, new values.
        let d2 = vec![vec![8.0, 2.0, 0.0], vec![2.0, 6.0, 2.0], vec![0.0, 2.0, 10.0]];
        f.refactor(&upper(&d2)).unwrap();
        let x = f.solve(&[1.0, 0.0, 0.0]).unwrap();
        let full = CsrMatrix::from_dense(&d2);
        let mut b = vec![0.0; 3];
        full.spmv(&x, &mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-10);
        assert!(b[1].abs() < 1e-10);
        assert!(b[2].abs() < 1e-10);
    }

    #[test]
    fn dense_spd_random_solve() {
        // Deterministic diagonally-dominant SPD matrix.
        let n = 12;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    dense[i][j] = 10.0 + i as f64;
                } else if (i + 2 * j) % 5 == 0 {
                    let v = 0.3 * ((i * j % 7) as f64 - 3.0);
                    dense[i][j] = v;
                    dense[j][i] = v;
                }
            }
        }
        // Symmetrize strictly (loop above may have overwritten asymmetric).
        for i in 0..n {
            for j in (i + 1)..n {
                let v = dense[i][j];
                dense[j][i] = v;
            }
        }
        let f = Ldlt::factor(&upper(&dense)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let x = f.solve(&b).unwrap();
        let full = CsrMatrix::from_dense(&dense);
        let mut ax = vec![0.0; n];
        full.spmv(&x, &mut ax).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "got {got} want {want}");
        }
    }

    #[test]
    fn l_nnz_counts_fill() {
        // Arrow matrix: dense last row/col produces no extra fill with
        // natural ordering when the arrow points down-right.
        let n = 6;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = 4.0;
            if i + 1 < n {
                dense[i][n - 1] = 1.0;
                dense[n - 1][i] = 1.0;
            }
        }
        let f = Ldlt::factor(&upper(&dense)).unwrap();
        assert_eq!(f.l_nnz(), n - 1);
        assert_eq!(f.dim(), n);
    }
}

#[cfg(test)]
mod refine_tests {
    use super::*;
    use rsqp_sparse::CsrMatrix;

    #[test]
    fn refinement_reduces_residual_on_ill_conditioned_kkt() {
        // A quasi-definite matrix with wildly different scales.
        let n = 6;
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n / 2 {
            dense[i][i] = 10f64.powi(4 - 2 * i as i32);
            dense[i][n / 2 + i] = 1.0;
            dense[n / 2 + i][i] = 1.0;
            dense[n / 2 + i][n / 2 + i] = -1e-6;
        }
        let upper = CsrMatrix::from_dense(&dense).upper_triangle().to_csc();
        let f = Ldlt::factor(&upper).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.3).collect();
        let plain = f.solve(&b).unwrap();
        let refined = f.solve_refined(&upper, &b, 3).unwrap();
        let res = |x: &[f64]| {
            let mut ax = vec![0.0; n];
            upper.symm_spmv_upper(x, &mut ax).unwrap();
            ax.iter().zip(&b).map(|(a, bb)| (a - bb).abs()).fold(0.0f64, f64::max)
        };
        assert!(res(&refined) <= res(&plain) * 1.0001, "{} vs {}", res(&refined), res(&plain));
        assert!(res(&refined) < 1e-8);
    }

    #[test]
    fn refinement_is_noop_on_well_conditioned_systems() {
        let upper =
            CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 3.0]]).upper_triangle().to_csc();
        let f = Ldlt::factor(&upper).unwrap();
        let refined = f.solve_refined(&upper, &[1.0, 2.0], 2).unwrap();
        let plain = f.solve(&[1.0, 2.0]).unwrap();
        for (a, b) in refined.iter().zip(&plain) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
