//! End-to-end fault tolerance: bit flips injected inside the cycle-level
//! machine must be detected by the solve pipeline's numerical guard and
//! either recovered (iterate reset, CG tightening, PCG→LDLᵀ fallback) or
//! reported as `NumericalError` — never silently returned as a bogus
//! `Solved`.

use std::cell::RefCell;
use std::rc::Rc;

use rsqp_arch::{ArchConfig, FaultConfig, Machine};
use rsqp_core::FpgaPcgBackend;
use rsqp_problems::{generate, Domain};
use rsqp_solver::{QpProblem, Settings, SolveResult, Solver, Status};

fn settings() -> Settings {
    Settings { eps_abs: 1e-4, eps_rel: 1e-4, max_iter: 4000, ..Default::default() }
}

fn solve_with_faults(
    problem: &QpProblem,
    fault: FaultConfig,
) -> (SolveResult, Rc<RefCell<Machine>>, String) {
    let config = ArchConfig::baseline(16).with_fault_injection(Some(fault));
    let mut machine_handle = None;
    let mut solver = Solver::with_backend(problem, settings(), &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            rsqp_solver::CgTolerance::Fixed(e) => e,
            rsqp_solver::CgTolerance::Adaptive { start, .. } => start,
        };
        let (backend, handle) =
            FpgaPcgBackend::new(p, a, sigma, rho, config.clone(), eps, s.cg_max_iter);
        machine_handle = Some(handle);
        Ok(Box::new(backend))
    })
    .expect("setup succeeds");
    let result = solver.solve().expect("recoverable faults must not surface as Err");
    let final_backend = solver.backend_name().to_string();
    (result, machine_handle.expect("factory ran"), final_backend)
}

/// Worst constraint violation of `x`: `max(l - Ax, Ax - u, 0)`.
fn primal_violation(qp: &QpProblem, x: &[f64]) -> f64 {
    let mut ax = vec![0.0; qp.num_constraints()];
    qp.a().spmv(x, &mut ax).expect("dimensions match");
    let mut worst = 0.0f64;
    for i in 0..ax.len() {
        worst = worst.max(qp.l()[i] - ax[i]).max(ax[i] - qp.u()[i]);
    }
    worst
}

fn assert_no_bogus_solved(qp: &QpProblem, r: &SolveResult) {
    if r.status == Status::Solved {
        assert!(
            r.x.iter().chain(&r.y).chain(&r.z).all(|v| v.is_finite()),
            "Solved with a non-finite solution"
        );
        let viol = primal_violation(qp, &r.x);
        assert!(viol <= 10.0 * 1e-3, "Solved but infeasible by {viol:.3e} (>10x the tolerance)");
    }
}

#[test]
fn heavy_mac_faults_trigger_the_recovery_ladder() {
    // Every SpMV output corrupted: the on-device PCG loop cannot converge,
    // so the backend faults and the ladder must degrade to the direct
    // LDLT backend (or, at worst, diagnose a NumericalError).
    let qp = generate(Domain::Control, 3, 11);
    let fault = FaultConfig::new(2024).with_mac_output_flips(1.0);
    let (r, machine, final_backend) = solve_with_faults(&qp, fault);

    assert!(machine.borrow().stats().faults > 0, "harness never struck");
    assert_no_bogus_solved(&qp, &r);
    match r.status {
        Status::Solved => {
            assert!(
                r.guard.backend_fallbacks >= 1,
                "solved under total MAC corruption without falling back: {:?}",
                r.guard
            );
            assert_eq!(final_backend, "ldlt");
        }
        Status::NumericalError => assert!(r.guard.faults_detected >= 1),
        other => panic!("undiagnosed outcome {other:?} (guard {:?})", r.guard),
    }
}

#[test]
fn fault_sweep_never_yields_a_bogus_solved() {
    let qp = generate(Domain::Control, 3, 11);
    for seed in [1u64, 2, 3] {
        for prob in [0.002, 0.05, 1.0] {
            let fault = FaultConfig::new(seed).with_mac_output_flips(prob);
            let (r, _machine, _) = solve_with_faults(&qp, fault);
            assert_no_bogus_solved(&qp, &r);
            assert!(
                matches!(
                    r.status,
                    Status::Solved | Status::MaxIterationsReached | Status::NumericalError
                ),
                "seed {seed} prob {prob}: unexpected status {:?}",
                r.status
            );
        }
    }
}

#[test]
fn disarmed_fault_harness_is_inert() {
    // Armed with zero probabilities: identical to a fault-free machine.
    let qp = generate(Domain::Control, 3, 11);
    let (r, machine, _) = solve_with_faults(&qp, FaultConfig::new(99));
    assert_eq!(r.status, Status::Solved);
    assert_eq!(machine.borrow().stats().faults, 0);
    assert!(!r.guard.intervened(), "guard intervened on a clean solve: {:?}", r.guard);
}
