//! End-to-end: the OSQP ADMM loop converging with the KKT system solved on
//! the simulated RSQP accelerator, with cycle accounting.

use rsqp_arch::ArchConfig;
use rsqp_core::perf::fpga::FpgaPerfModel;
use rsqp_core::{customize, FpgaPcgBackend};
use rsqp_problems::{generate, Domain};
use rsqp_solver::{LinSysKind, QpProblem, Settings, Solver, Status};

fn settings() -> Settings {
    Settings { eps_abs: 1e-4, eps_rel: 1e-4, max_iter: 10_000, ..Default::default() }
}

fn solve_on_fpga(
    problem: &QpProblem,
    config: ArchConfig,
) -> (rsqp_solver::SolveResult, rsqp_arch::RunStats, u64) {
    let mut machine_handle = None;
    let mut outer = 0u64;
    let mut solver = Solver::with_backend(problem, settings(), &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            rsqp_solver::CgTolerance::Fixed(e) => e,
            rsqp_solver::CgTolerance::Adaptive { start, .. } => start,
        };
        let (backend, handle) =
            FpgaPcgBackend::new(p, a, sigma, rho, config.clone(), eps, s.cg_max_iter);
        outer = backend.outer_cycles_per_iteration();
        machine_handle = Some(handle);
        Ok(Box::new(backend))
    })
    .expect("setup succeeds");
    let result = solver.solve().expect("solve succeeds");
    let stats = machine_handle.expect("factory ran").borrow().stats();
    (result, stats, outer)
}

#[test]
fn fpga_backend_converges_and_matches_cpu() {
    for (domain, size) in [(Domain::Control, 3), (Domain::Svm, 3), (Domain::Portfolio, 1)] {
        let qp = generate(domain, size, 11);
        // Reference CPU solve (direct LDLT).
        let mut cpu =
            Solver::new(&qp, Settings { linsys: LinSysKind::DirectLdlt, ..settings() }).unwrap();
        let cpu_result = cpu.solve().unwrap();
        assert_eq!(cpu_result.status, Status::Solved);

        // Simulated-FPGA solve with a customized architecture.
        let custom = customize(&qp, 16, 4);
        let (fpga_result, stats, _) = solve_on_fpga(&qp, custom.config.clone());
        assert_eq!(fpga_result.status, Status::Solved, "{domain}");
        assert!(
            (fpga_result.objective - cpu_result.objective).abs()
                < 1e-2 * (1.0 + cpu_result.objective.abs()),
            "{domain}: objectives {} vs {}",
            fpga_result.objective,
            cpu_result.objective
        );
        assert!(stats.cycles > 0, "cycles must accumulate");
        assert!(stats.breakdown.spmv > 0);
    }
}

#[test]
fn customized_architecture_needs_fewer_cycles_than_baseline() {
    let qp = generate(Domain::Svm, 3, 5);
    let custom = customize(&qp, 16, 4);

    let (r_base, s_base, outer_b) = solve_on_fpga(&qp, ArchConfig::baseline(16));
    let (r_custom, s_custom, outer_c) = solve_on_fpga(&qp, custom.config.clone());
    assert_eq!(r_base.status, Status::Solved);
    assert_eq!(r_custom.status, Status::Solved);

    // Same algorithm; cycle counts should favor the customized design
    // (Figure 10's customization speedup).
    let t_base = FpgaPerfModel::from_config(&ArchConfig::baseline(16)).solve_time(
        s_base,
        r_base.iterations,
        outer_b,
        qp.num_vars(),
        qp.num_constraints(),
    );
    let t_custom = FpgaPerfModel::from_config(&custom.config).solve_time(
        s_custom,
        r_custom.iterations,
        outer_c,
        qp.num_vars(),
        qp.num_constraints(),
    );
    assert!(t_custom < t_base, "customized {:?} should beat baseline {:?}", t_custom, t_base);
}

#[test]
fn fpga_backend_survives_rho_updates() {
    // An equality-heavy problem triggers rho boosting and adaptive updates.
    let qp = generate(Domain::Eqqp, 16, 3);
    let (result, _, _) = solve_on_fpga(&qp, ArchConfig::baseline(16));
    assert_eq!(result.status, Status::Solved);
}

#[test]
fn backend_reports_cg_iterations() {
    let qp = generate(Domain::Lasso, 4, 2);
    let (result, _, _) = solve_on_fpga(&qp, ArchConfig::baseline(16));
    assert_eq!(result.status, Status::Solved);
    assert!(result.backend.cg_iterations > 0);
    assert_eq!(result.backend.kkt_solves, result.iterations);
}

#[test]
fn matrix_value_update_reuses_the_architecture() {
    // Two numeric instances of the same structure: solve the first, swap in
    // the second instance's values through update_matrices, and re-solve on
    // the *same* simulated accelerator (HBM values refreshed, schedules and
    // CVB layouts untouched).
    let qp1 = generate(Domain::Control, 3, 1);
    let qp2 = generate(Domain::Control, 3, 2);
    let custom = customize(&qp1, 16, 4);
    let cfg = custom.config.clone();
    let mut solver = Solver::with_backend(&qp1, settings(), &mut |p, a, sigma, rho, s| {
        let eps = match s.cg_tolerance {
            rsqp_solver::CgTolerance::Fixed(e) => e,
            rsqp_solver::CgTolerance::Adaptive { start, .. } => start,
        };
        let (b, _h) = FpgaPcgBackend::new(p, a, sigma, rho, cfg.clone(), eps, s.cg_max_iter);
        Ok(Box::new(b))
    })
    .unwrap();
    let r1 = solver.solve().unwrap();
    assert_eq!(r1.status, Status::Solved);

    solver.update_matrices(Some(qp2.p().clone()), Some(qp2.a().clone())).unwrap();
    solver.update_q(qp2.q().to_vec()).unwrap();
    solver.update_bounds(qp2.l().to_vec(), qp2.u().to_vec()).unwrap();
    let r2 = solver.solve().unwrap();
    assert_eq!(r2.status, Status::Solved);

    // Reference: a fresh CPU solve of instance 2.
    let mut cpu = Solver::new(&qp2, settings()).unwrap();
    let want = cpu.solve().unwrap();
    assert!(
        (r2.objective - want.objective).abs() < 1e-2 * (1.0 + want.objective.abs()),
        "updated-solve objective {} vs fresh {}",
        r2.objective,
        want.objective
    );
}
