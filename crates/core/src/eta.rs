//! The match score η of §3.6.

/// The ingredients of the match score for one (matrix, input-vector) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaParts {
    /// Non-zeros of the matrix.
    pub nnz: usize,
    /// Length of the multiplicand vector.
    pub l: usize,
    /// Zero-padding overhead of the pack schedule.
    pub ep: usize,
    /// Extra-copy factor of the CVB layout (`1 ≤ E_c ≤ C`).
    pub ec: f64,
}

impl EtaParts {
    /// Ideal cycle count `(nnz + L)/C` numerator term.
    pub fn ideal_work(&self) -> f64 {
        (self.nnz + self.l) as f64
    }

    /// Realized work `(nnz + E_p + E_c·L)` denominator term.
    pub fn real_work(&self) -> f64 {
        self.nnz as f64 + self.ep as f64 + self.ec * self.l as f64
    }
}

/// Match score `η = (nnz + L)/(nnz + E_p + E_c·L)` aggregated over one or
/// more matrix/vector pairs (the paper's formula, summed over the SpMV
/// workload `P`, `A`, `Aᵀ` of one PCG iteration).
///
/// Returns 1.0 for an empty workload. The result lies in `(0, 1]`.
pub fn eta(parts: &[EtaParts]) -> f64 {
    let ideal: f64 = parts.iter().map(EtaParts::ideal_work).sum();
    let real: f64 = parts.iter().map(EtaParts::real_work).sum();
    if real == 0.0 {
        1.0
    } else {
        ideal / real
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_scores_one() {
        let p = EtaParts { nnz: 100, l: 10, ep: 0, ec: 1.0 };
        assert!((eta(&[p]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn padding_and_copies_lower_the_score() {
        let base = EtaParts { nnz: 100, l: 10, ep: 0, ec: 1.0 };
        let padded = EtaParts { ep: 50, ..base };
        let copied = EtaParts { ec: 4.0, ..base };
        assert!(eta(&[padded]) < eta(&[base]));
        assert!(eta(&[copied]) < eta(&[base]));
        assert!(eta(&[padded]) > 0.0);
    }

    #[test]
    fn aggregate_lies_between_components() {
        let good = EtaParts { nnz: 100, l: 10, ep: 0, ec: 1.0 };
        let bad = EtaParts { nnz: 100, l: 10, ep: 100, ec: 8.0 };
        let agg = eta(&[good, bad]);
        assert!(agg < eta(&[good]) && agg > eta(&[bad]));
    }

    #[test]
    fn empty_workload_is_one() {
        assert_eq!(eta(&[]), 1.0);
    }

    #[test]
    fn matches_papers_baseline_formula() {
        // Baseline: single-output tree -> E_p = C·len − nnz; full duplication
        // -> E_c = C. For a diagonal matrix at C = 4: len = n rows, nnz = n,
        // L = n: η = (n + n)/(n + (4n − n) + 4n) = 2/8 = 0.25.
        let n = 32;
        let c = 4;
        let p = EtaParts { nnz: n, l: n, ep: c * n - n, ec: c as f64 };
        assert!((eta(&[p]) - 0.25).abs() < 1e-12);
    }
}
