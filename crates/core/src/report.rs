//! Small table/CSV helpers shared by the figure and table harnesses.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple rectangular results table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Renders as an aligned text table (what the harness binaries print).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ =
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the CSV rendering to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a duration in seconds with engineering-friendly precision.
pub fn fmt_secs(d: std::time::Duration) -> String {
    fmt_f(d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.push(["1", "x,y"]);
        t.push(["2", "q\"z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new(["name", "v"]);
        t.push(["long-name", "1"]);
        t.push(["s", "22"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let mut t = Table::new(["a"]);
        t.push(["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.456), "123.5");
        assert_eq!(fmt_f(0.5), "0.500");
        assert!(fmt_f(1e-5).contains('e'));
    }

    #[test]
    fn csv_file_roundtrip() {
        let mut t = Table::new(["x"]);
        t.push(["1"]);
        let path = std::env::temp_dir().join("rsqp_report_test.csv");
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.starts_with("x\n"));
        let _ = std::fs::remove_file(path);
    }
}
