//! The simulated-FPGA KKT backend.
//!
//! Implements [`rsqp_solver::KktBackend`] by executing the PCG kernel of
//! Algorithm 2 on the cycle-level machine of `rsqp-arch`. The numerical
//! results flowing back into the ADMM loop are the machine's — so the
//! solver genuinely converges on simulated-accelerator arithmetic — and
//! every solve advances the machine's cycle counters, which the performance
//! model later converts to seconds via the f_max estimate.

use std::cell::RefCell;
use std::rc::Rc;

use rsqp_arch::kernels::{admm_outer_cycles, build_pcg, PcgKernel};
use rsqp_arch::{ArchConfig, Machine, MatrixId, RunStats};
use rsqp_solver::{BackendStats, KktBackend, SolverError};
use rsqp_sparse::CsrMatrix;

/// A [`KktBackend`] backed by the simulated RSQP accelerator.
pub struct FpgaPcgBackend {
    machine: Rc<RefCell<Machine>>,
    kernel: PcgKernel,
    matrix_ids: (MatrixId, MatrixId, MatrixId),
    a: CsrMatrix,
    p_diag: Vec<f64>,
    rho: Vec<f64>,
    sigma: f64,
    eps: f64,
    stats: BackendStats,
    outer_cycles_per_iter: u64,
}

impl std::fmt::Debug for FpgaPcgBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpgaPcgBackend")
            .field("c", &self.machine.borrow().config().c())
            .finish_non_exhaustive()
    }
}

impl FpgaPcgBackend {
    /// Builds the backend for the (scaled) problem matrices under the given
    /// architecture configuration.
    ///
    /// Returns the backend plus a shared handle to the machine so harnesses
    /// can read cycle statistics after the solve.
    pub fn new(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        config: ArchConfig,
        cg_eps: f64,
        cg_max_iter: usize,
    ) -> (Self, Rc<RefCell<Machine>>) {
        let n = p.nrows();
        let m = a.nrows();
        let at = a.transpose();
        let outer_cycles_per_iter = admm_outer_cycles(&config, n, m);
        let mut machine = Machine::new(config);
        let pid = machine.add_matrix(p);
        let aid = machine.add_matrix(a);
        let atid = machine.add_matrix(&at);
        let matrix_ids = (pid, aid, atid);
        let kernel = build_pcg(&mut machine, pid, aid, atid, n, m, cg_max_iter.max(1));
        let mut backend = FpgaPcgBackend {
            machine: Rc::new(RefCell::new(machine)),
            kernel,
            matrix_ids,
            a: a.clone(),
            p_diag: p.diagonal(),
            rho: rho.to_vec(),
            sigma,
            eps: cg_eps,
            stats: BackendStats::default(),
            outer_cycles_per_iter,
        };
        backend.refresh_device_constants();
        let handle = Rc::clone(&backend.machine);
        (backend, handle)
    }

    /// Same as [`FpgaPcgBackend::new`] with the baseline architecture (used
    /// for "no customization" comparisons at a given width).
    pub fn baseline(
        p: &CsrMatrix,
        a: &CsrMatrix,
        sigma: f64,
        rho: &[f64],
        c: usize,
        cg_eps: f64,
        cg_max_iter: usize,
    ) -> (Self, Rc<RefCell<Machine>>) {
        Self::new(p, a, sigma, rho, ArchConfig::baseline(c), cg_eps, cg_max_iter)
    }

    /// Analytic cycles per ADMM iteration spent in the outer vector updates
    /// (Algorithm 1, lines 4–7) — added to the measured PCG cycles by the
    /// performance model.
    pub fn outer_cycles_per_iteration(&self) -> u64 {
        self.outer_cycles_per_iter
    }

    /// Cumulative machine statistics.
    pub fn machine_stats(&self) -> RunStats {
        self.machine.borrow().stats()
    }

    fn refresh_device_constants(&mut self) {
        // Jacobi inverse diagonal: diag(P) + σ + Σ ρ_i A_{i,·}².
        let n = self.p_diag.len();
        let mut diag = self.p_diag.clone();
        for d in &mut diag {
            *d += self.sigma;
        }
        for i in 0..self.a.nrows() {
            let (cols, vals) = self.a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                diag[j] += self.rho[i] * v * v;
            }
        }
        let minv: Vec<f64> = diag.iter().map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 }).collect();
        debug_assert_eq!(minv.len(), n);
        let mut machine = self.machine.borrow_mut();
        machine.write_vec(self.kernel.minv, &minv);
        machine.write_vec(self.kernel.rho_vec, &self.rho);
        machine.write_scalar(self.kernel.sigma, self.sigma);
        machine.write_scalar(self.kernel.eps, self.eps);
        machine.write_scalar(self.kernel.eps_abs_sq, 1e-28);
    }
}

impl KktBackend for FpgaPcgBackend {
    fn name(&self) -> &str {
        "fpga-pcg"
    }

    fn update_rho(&mut self, rho: &[f64]) -> Result<(), SolverError> {
        if rho.len() != self.rho.len() {
            return Err(SolverError::Backend("rho length changed".into()));
        }
        self.rho.copy_from_slice(rho);
        // Rebuild the device preconditioner and the device ρ vector from
        // the cached diag(P) and A (no structural work — the indirect
        // method's cheap ρ update, §2.2).
        self.refresh_device_constants();
        Ok(())
    }

    fn set_cg_tolerance(&mut self, eps: f64) {
        self.eps = eps;
        self.machine.borrow_mut().write_scalar(self.kernel.eps, eps);
    }

    fn solve_kkt(
        &mut self,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        q: &[f64],
        xtilde: &mut [f64],
        ztilde: &mut [f64],
    ) -> Result<(), SolverError> {
        let mut machine = self.machine.borrow_mut();
        machine.write_vec(self.kernel.x, x);
        machine.write_vec(self.kernel.z, z);
        machine.write_vec(self.kernel.y, y);
        machine.write_vec(self.kernel.q, q);
        // `run` reports this solve's stats alone (cumulative counters live
        // on the machine for the perf model).
        let run = machine
            .run(&self.kernel.program)
            .map_err(|e| SolverError::Backend(format!("machine error: {e}")))?;
        xtilde.copy_from_slice(machine.read_vec(self.kernel.x));
        ztilde.copy_from_slice(machine.read_vec(self.kernel.ztilde));
        self.stats.kkt_solves += 1;
        let trips = run.loop_trips as usize;
        self.stats.cg_iterations += trips;
        self.stats.spmv_evals += 3 * (trips + 1) + 2;
        Ok(())
    }

    fn update_matrices(
        &mut self,
        p: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
    ) -> Result<(), SolverError> {
        {
            let mut machine = self.machine.borrow_mut();
            let (pid, aid, atid) = self.matrix_ids;
            machine.update_matrix_values(pid, p);
            machine.update_matrix_values(aid, a);
            machine.update_matrix_values(atid, &a.transpose());
        }
        self.a = a.clone();
        self.p_diag = p.diagonal();
        self.rho.copy_from_slice(rho);
        self.refresh_device_constants();
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}
