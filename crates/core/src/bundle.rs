//! Hardware-generation output bundle (§4.5, Figure 6).
//!
//! The paper's flow ends with "pass the customization of the MAC tree
//! structure, the indices translation, the duplication map for the CVBs,
//! and the routing logic … to our hardware generation program for creating
//! the HLS description". This module materializes that hand-off as files:
//!
//! ```text
//! <dir>/
//!   architecture.txt            # C, S, resource/f_max estimates, η report
//!   align_acc_cnt_switch.h      # Figure 4's generated routing snippet
//!   spmv_align.cpp              # Figure 5's enclosing HLS function
//!   cvb_<matrix>.txt            # per-matrix CVB index-translation tables
//!   pcg.rom                     # the Algorithm-2 kernel, ROM-encoded
//!   pcg.lst                     # human-readable disassembly of the kernel
//! ```

use std::io::Write;
use std::path::Path;

use rsqp_arch::kernels::build_pcg;
use rsqp_arch::{codegen, rom, Machine, ResourceModel};
use rsqp_solver::QpProblem;

use crate::{layout_for, CustomizationResult};

/// Writes the full hardware-generation bundle for a problem under the
/// customization `result` into `dir` (created if missing).
///
/// Returns the number of files written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bundle(
    problem: &QpProblem,
    result: &CustomizationResult,
    dir: impl AsRef<Path>,
) -> std::io::Result<usize> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut files = 0;

    // architecture.txt
    {
        let est = ResourceModel.estimate(result.config.set());
        let mut f = std::fs::File::create(dir.join("architecture.txt"))?;
        writeln!(f, "problem: {}", problem.name())?;
        writeln!(f, "datapath width C: {}", result.config.c())?;
        writeln!(f, "structure set:    {}", result.notation())?;
        writeln!(f, "eta baseline:     {:.4}", result.eta_baseline)?;
        writeln!(f, "eta customized:   {:.4}", result.eta_custom)?;
        writeln!(
            f,
            "resources:        {} DSP, {} FF, {} LUT @ {:.0} MHz",
            est.dsp, est.ff, est.lut, est.fmax_mhz
        )?;
        for m in &result.matrices {
            writeln!(
                f,
                "matrix {:>2}: nnz {} cycles {} -> {} E_p {} -> {} E_c {:.2} -> {:.2}",
                m.name, m.nnz, m.cycles_baseline, m.cycles_custom, m.ep.0, m.ep.1, m.ec.0, m.ec.1
            )?;
        }
        files += 1;
    }

    // HLS snippets.
    std::fs::write(
        dir.join("align_acc_cnt_switch.h"),
        codegen::alignment_switch(result.config.set()),
    )?;
    files += 1;
    std::fs::write(dir.join("spmv_align.cpp"), codegen::spmv_align_function(result.config.set()))?;
    files += 1;

    // CVB translation tables.
    let at = problem.a().transpose();
    for (name, m) in [("P", problem.p()), ("A", problem.a()), ("At", &at)] {
        let layout = layout_for(m, &result.config);
        let mut f = std::fs::File::create(dir.join(format!("cvb_{name}.txt")))?;
        writeln!(f, "# CVB layout for {name}: {} addresses", layout.num_addresses())?;
        writeln!(f, "# element -> address (unlisted elements are never read)")?;
        for j in 0..m.ncols() {
            if let Some(a) = layout.addr_of(j) {
                writeln!(f, "{j} {a}")?;
            }
        }
        files += 1;
    }

    // ROM image of the PCG kernel.
    {
        let mut machine = Machine::new(result.config.clone());
        let p = machine.add_matrix(problem.p());
        let a = machine.add_matrix(problem.a());
        let atid = machine.add_matrix(&at);
        let kernel = build_pcg(
            &mut machine,
            p,
            a,
            atid,
            problem.num_vars(),
            problem.num_constraints(),
            2000,
        );
        let image = rom::encode_program(&kernel.program);
        let bytes: Vec<u8> = image.iter().flat_map(|w| w.to_le_bytes()).collect();
        std::fs::write(dir.join("pcg.rom"), bytes)?;
        files += 1;
        std::fs::write(dir.join("pcg.lst"), rom::disassemble(&kernel.program))?;
        files += 1;
    }
    Ok(files)
}

/// Convenience: customize and write the bundle in one call.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn generate_bundle(
    problem: &QpProblem,
    c: usize,
    s_target: usize,
    dir: impl AsRef<Path>,
) -> std::io::Result<(CustomizationResult, usize)> {
    let result = crate::customize(problem, c, s_target);
    let files = write_bundle(problem, &result, dir)?;
    Ok((result, files))
}

/// Validates a ROM file written by [`write_bundle`] by decoding it back.
///
/// # Errors
///
/// Propagates I/O errors; decoding failures map to `InvalidData`.
pub fn validate_rom(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let bytes = std::fs::read(path)?;
    if bytes.len() % 8 != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "ROM image is not a whole number of 64-bit words",
        ));
    }
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect();
    let program = rom::decode_program(&words, 2000)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(program.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_problems::{generate, Domain};

    #[test]
    fn bundle_writes_all_files_and_rom_decodes() {
        let qp = generate(Domain::Svm, 3, 1);
        let dir = std::env::temp_dir().join("rsqp_bundle_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (result, files) = generate_bundle(&qp, 16, 3, &dir).unwrap();
        assert_eq!(files, 8);
        assert!(result.eta_custom > 0.0);
        // Every expected file exists and is non-empty.
        for name in [
            "architecture.txt",
            "align_acc_cnt_switch.h",
            "spmv_align.cpp",
            "cvb_P.txt",
            "cvb_A.txt",
            "cvb_At.txt",
            "pcg.rom",
            "pcg.lst",
        ] {
            let meta =
                std::fs::metadata(dir.join(name)).unwrap_or_else(|_| panic!("{name} missing"));
            assert!(meta.len() > 0, "{name} is empty");
        }
        // The ROM decodes back into a program.
        let instrs = validate_rom(dir.join("pcg.rom")).unwrap();
        assert!(instrs > 20, "PCG kernel has {instrs} instructions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rom_rejects_garbage() {
        let dir = std::env::temp_dir();
        let p = dir.join("rsqp_bad_rom_test.rom");
        std::fs::write(&p, [1, 2, 3]).unwrap();
        assert!(validate_rom(&p).is_err());
        let _ = std::fs::remove_file(p);
    }
}
