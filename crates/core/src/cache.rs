//! Pattern-keyed cache of per-structure customization artifacts.
//!
//! Everything the customization pipeline produces — the LZW structure set,
//! the First-Fit CVB layout, the [`ArchConfig`](rsqp_arch::ArchConfig), the
//! η report — depends only on the *sparsity structure* of `P` and `A`, and
//! so does the symbolic half of the direct KKT factorization (the
//! fill-reducing ordering). Repeated-solve workloads (MPC, backtesting,
//! batched QPs) re-solve one structure with new values at every step, so
//! these artifacts should be computed **once per pattern** and shared.
//!
//! [`CustomizationCache`] keys on [`PatternKey`] (a structure-only
//! fingerprint), stores the artifacts behind `Arc`s so concurrent jobs and
//! sessions share one copy, and is bounded with LRU eviction. The key
//! invariant: because the key is structure-only, **value updates never
//! invalidate an entry** — `update_q`/`update_bounds`/`update_matrices`
//! all map to the same key, and only a genuinely new sparsity pattern pays
//! the pipeline again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use rsqp_solver::{kkt_ordering, KktOrdering, QpProblem, SolverError};
use rsqp_sparse::PatternKey;

use crate::customize::{customize, CustomizationResult};

/// Pipeline parameters a cache instance is fixed to. Entries produced under
/// different parameters are not interchangeable, so the parameters live on
/// the cache rather than the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Architecture width `C` passed to [`customize`].
    pub c: usize,
    /// Structure-set size budget `|S|` passed to [`customize`].
    pub s_target: usize,
    /// Fill-reducing ordering computed for the KKT pattern.
    pub ordering: KktOrdering,
}

impl Default for CacheParams {
    fn default() -> Self {
        // The paper's default design point (C = 16, |S| ≤ 4) and the
        // solver's default ordering.
        CacheParams { c: 16, s_target: 4, ordering: KktOrdering::MinDegree }
    }
}

/// Everything computed once per sparsity pattern and shared across solves.
#[derive(Debug)]
pub struct PatternArtifacts {
    /// The structure fingerprint these artifacts belong to.
    pub key: PatternKey,
    /// Parameters they were computed under.
    pub params: CacheParams,
    /// Full customization pipeline output (§4): structure set, CVB layout
    /// summary, `ArchConfig`, η scores, resource estimates.
    pub customization: CustomizationResult,
    /// Fill-reducing permutation of the KKT pattern under
    /// [`CacheParams::ordering`] (`None` for
    /// [`KktOrdering::Natural`]). Replay through
    /// [`rsqp_solver::DirectLdltBackend::with_permutation`] to skip the
    /// symbolic analysis on every rebuild.
    pub kkt_perm: Option<Vec<usize>>,
}

/// Outcome of one cache consultation.
#[derive(Debug, Clone)]
pub struct CacheLookup {
    /// The (possibly just computed) shared artifacts.
    pub artifacts: Arc<PatternArtifacts>,
    /// `true` when the artifacts were already cached.
    pub hit: bool,
}

struct Entry {
    artifacts: Arc<PatternArtifacts>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<PatternKey, Entry>,
    tick: u64,
}

/// A bounded, `Arc`-sharing cache of [`PatternArtifacts`] keyed by
/// [`PatternKey`].
///
/// Misses compute the artifacts while holding the cache lock, so a pattern
/// is customized **exactly once** even when many threads race on it — the
/// losers of the race block and then share the winner's `Arc`. (The
/// pipeline is the expensive part; serializing distinct-pattern misses is
/// an accepted cost of that exactly-once guarantee.) Hits are a map lookup
/// plus an `Arc` clone.
pub struct CustomizationCache {
    params: CacheParams,
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for CustomizationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomizationCache")
            .field("params", &self.params)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

impl CustomizationCache {
    /// A cache holding at most `capacity` patterns (clamped to ≥ 1) under
    /// the default [`CacheParams`].
    pub fn new(capacity: usize) -> Self {
        Self::with_params(capacity, CacheParams::default())
    }

    /// A cache with explicit pipeline parameters.
    pub fn with_params(capacity: usize, params: CacheParams) -> Self {
        CustomizationCache {
            params,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { entries: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The pipeline parameters this cache computes entries under.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Maximum number of cached patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached patterns.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Returns the artifacts for `problem`'s sparsity pattern, computing
    /// and caching them on first sight of the pattern. Every call counts as
    /// exactly one hit or one miss.
    ///
    /// # Errors
    ///
    /// Returns an error if the KKT ordering computation fails (shape
    /// inconsistency); the customization pipeline itself is infallible on a
    /// validated [`QpProblem`].
    pub fn get_or_customize(&self, problem: &QpProblem) -> Result<CacheLookup, SolverError> {
        let key = PatternKey::new(problem.p(), problem.a());
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(CacheLookup { artifacts: Arc::clone(&entry.artifacts), hit: true });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let customization = customize(problem, self.params.c, self.params.s_target);
        let kkt_perm = kkt_ordering(problem.p(), problem.a(), self.params.ordering)?;
        let artifacts =
            Arc::new(PatternArtifacts { key, params: self.params, customization, kkt_perm });
        if inner.entries.len() >= self.capacity {
            // Evict the least-recently-used pattern to stay bounded.
            if let Some(&victim) =
                inner.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
            {
                inner.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.entries.insert(key, Entry { artifacts: Arc::clone(&artifacts), last_used: tick });
        Ok(CacheLookup { artifacts, hit: false })
    }

    /// The cached artifacts for `key`, if present. Does **not** touch the
    /// hit/miss ledger or the LRU order — this is an inspection helper, not
    /// the solve path.
    pub fn peek(&self, key: &PatternKey) -> Option<Arc<PatternArtifacts>> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entries.get(key).map(|e| Arc::clone(&e.artifacts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_problems::{generate, Domain};

    #[test]
    fn repeat_patterns_hit_and_share() {
        let cache = CustomizationCache::new(4);
        let qp1 = generate(Domain::Control, 3, 1);
        let qp2 = generate(Domain::Control, 3, 2); // same structure, new values
        let first = cache.get_or_customize(&qp1).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_customize(&qp2).unwrap();
        assert!(second.hit, "a value change must not invalidate the entry");
        assert!(Arc::ptr_eq(&first.artifacts, &second.artifacts), "hits share the same allocation");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_patterns_miss_independently() {
        let cache = CustomizationCache::new(4);
        let control = generate(Domain::Control, 3, 1);
        let svm = generate(Domain::Svm, 3, 1);
        assert!(!cache.get_or_customize(&control).unwrap().hit);
        assert!(!cache.get_or_customize(&svm).unwrap().hit);
        assert!(cache.get_or_customize(&control).unwrap().hit);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_with_lru_eviction() {
        let cache = CustomizationCache::new(1);
        let control = generate(Domain::Control, 3, 1);
        let svm = generate(Domain::Svm, 3, 1);
        cache.get_or_customize(&control).unwrap();
        cache.get_or_customize(&svm).unwrap(); // evicts control
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.get_or_customize(&control).unwrap().hit, "evicted entry re-misses");
    }

    #[test]
    fn artifacts_carry_customization_and_ordering() {
        let cache = CustomizationCache::new(2);
        let qp = generate(Domain::Control, 3, 1);
        let lookup = cache.get_or_customize(&qp).unwrap();
        let art = &lookup.artifacts;
        assert_eq!(art.key, rsqp_sparse::PatternKey::new(qp.p(), qp.a()));
        assert!(art.customization.eta_custom >= art.customization.eta_baseline);
        let perm = art.kkt_perm.as_ref().expect("min-degree produces a permutation");
        assert_eq!(perm.len(), qp.num_vars() + qp.num_constraints());
        assert!(cache.peek(&art.key).is_some());
    }

    #[test]
    fn natural_ordering_caches_no_permutation() {
        let params = CacheParams { ordering: KktOrdering::Natural, ..Default::default() };
        let cache = CustomizationCache::with_params(2, params);
        let qp = generate(Domain::Control, 3, 1);
        assert!(cache.get_or_customize(&qp).unwrap().artifacts.kkt_perm.is_none());
    }
}
