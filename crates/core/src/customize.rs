//! The problem-specific customization pipeline (§4, Figure 6).
//!
//! ```text
//! problem structure ──► sparsity string encoding (P, A, Aᵀ)
//!                   ──► E_p optimization: LZW search for S  (Eq. 4)
//!                   ──► E_c optimization: First-Fit CVB compression (Eq. 5)
//!                   ──► ArchConfig + η report (+ HLS snippets via rsqp-arch)
//! ```

use rsqp_arch::{ArchConfig, ResourceEstimate, ResourceModel};
use rsqp_cvb::{first_fit, AccessMatrix, CvbLayout};
use rsqp_encode::{baseline_set, search_structures};
use rsqp_encode::{greedy_schedule, SparsityString, StructureSet};
use rsqp_solver::QpProblem;
use rsqp_sparse::CsrMatrix;

use crate::eta::{eta, EtaParts};

/// Customization outcome for one matrix of the SpMV workload.
#[derive(Debug, Clone)]
pub struct MatrixCustomization {
    /// Which matrix (`"P"`, `"A"`, `"At"`).
    pub name: &'static str,
    /// Non-zeros.
    pub nnz: usize,
    /// Input-vector length.
    pub l: usize,
    /// Scheduled SpMV cycles under the baseline set.
    pub cycles_baseline: usize,
    /// Scheduled SpMV cycles under the customized set.
    pub cycles_custom: usize,
    /// `E_p` under baseline / custom.
    pub ep: (usize, usize),
    /// `E_c` under baseline / custom.
    pub ec: (f64, f64),
    /// CVB addresses under the customized layout.
    pub cvb_addresses: usize,
}

/// Result of the customization pipeline for one problem.
#[derive(Debug, Clone)]
pub struct CustomizationResult {
    /// The customized architecture configuration.
    pub config: ArchConfig,
    /// The baseline configuration at the same width.
    pub baseline: ArchConfig,
    /// Aggregate match score of the baseline architecture.
    pub eta_baseline: f64,
    /// Aggregate match score after customization.
    pub eta_custom: f64,
    /// Per-matrix details.
    pub matrices: Vec<MatrixCustomization>,
    /// Resource estimate of the customized design.
    pub resources: ResourceEstimate,
    /// Resource estimate of the baseline design.
    pub baseline_resources: ResourceEstimate,
}

impl CustomizationResult {
    /// Improvement of the match score, `Δη` (the y-axis of Figure 9).
    pub fn eta_improvement(&self) -> f64 {
        self.eta_custom - self.eta_baseline
    }

    /// The notation string of the chosen structure set (e.g. `64{8d4e1g}`).
    pub fn notation(&self) -> String {
        self.config.set().to_string()
    }
}

/// Runs the full pipeline: string encoding of `P`, `A`, `Aᵀ`, structure
/// search with `|S| ≤ s_target`, CVB compression, η scoring.
pub fn customize(problem: &QpProblem, c: usize, s_target: usize) -> CustomizationResult {
    let p = problem.p();
    let a = problem.a();
    let at = a.transpose();
    // Mine the structure set over the concatenated workload string.
    let sp = SparsityString::encode(p, c);
    let sa = SparsityString::encode(a, c);
    let sat = SparsityString::encode(&at, c);
    let combined = SparsityString::concat(&[&sp, &sa, &sat]);
    let set = search_structures(&combined, s_target);
    customize_with_config(problem, ArchConfig::new(set))
}

/// Scores a *given* architecture configuration against a problem (used by
/// the Table 3 harness to evaluate hand-picked design points).
pub fn customize_with_config(problem: &QpProblem, config: ArchConfig) -> CustomizationResult {
    let c = config.c();
    let p = problem.p();
    let a = problem.a();
    let at = a.transpose();
    let base_cfg = ArchConfig::baseline(c);

    let mut matrices = Vec::new();
    let mut base_parts = Vec::new();
    let mut custom_parts = Vec::new();
    for (name, m) in [("P", p), ("A", a), ("At", &at)] {
        let (mc, bp, cp) = analyze_matrix(name, m, base_cfg.set(), config.set());
        base_parts.push(bp);
        custom_parts.push(cp);
        matrices.push(mc);
    }

    let model = ResourceModel;
    CustomizationResult {
        eta_baseline: eta(&base_parts),
        eta_custom: eta(&custom_parts),
        resources: model.estimate(config.set()),
        baseline_resources: model.estimate(base_cfg.set()),
        baseline: base_cfg,
        config,
        matrices,
    }
}

fn analyze_matrix(
    name: &'static str,
    m: &CsrMatrix,
    base_set: &StructureSet,
    custom_set: &StructureSet,
) -> (MatrixCustomization, EtaParts, EtaParts) {
    let c = base_set.alphabet().c();
    let s = SparsityString::encode(m, c);
    let l = m.ncols();

    let base_sched = greedy_schedule(&s, base_set);
    let custom_sched = greedy_schedule(&s, custom_set);

    // Baseline CVB: C full copies (E_c = C). Customized: First-Fit.
    let access = AccessMatrix::from_schedule(&custom_sched, &s, m, custom_set);
    let layout = first_fit(&access);
    let ec_base = c as f64;
    let ec_custom = layout.ec().min(c as f64);

    let bp = EtaParts { nnz: m.nnz(), l, ep: base_sched.ep(), ec: ec_base };
    let cp = EtaParts { nnz: m.nnz(), l, ep: custom_sched.ep(), ec: ec_custom };
    let mc = MatrixCustomization {
        name,
        nnz: m.nnz(),
        l,
        cycles_baseline: base_sched.cycles(),
        cycles_custom: custom_sched.cycles(),
        ep: (base_sched.ep(), custom_sched.ep()),
        ec: (ec_base, ec_custom),
        cvb_addresses: layout.num_addresses(),
    };
    (mc, bp, cp)
}

/// Re-exported helper: the baseline structure set at width `c` (single
/// full-width output, full vector duplication).
pub fn baseline_config(c: usize) -> ArchConfig {
    ArchConfig::new(baseline_set(rsqp_encode::Alphabet::new(c)))
}

/// The customized CVB layout for one matrix under a configuration —
/// exposed for harnesses that need the layout itself (e.g. codegen dumps).
pub fn layout_for(m: &CsrMatrix, config: &ArchConfig) -> CvbLayout {
    let s = SparsityString::encode(m, config.c());
    let sched = greedy_schedule(&s, config.set());
    let access = AccessMatrix::from_schedule(&sched, &s, m, config.set());
    first_fit(&access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_problems::{generate, Domain};

    #[test]
    fn customization_improves_eta_on_structured_problems() {
        for domain in [Domain::Control, Domain::Svm, Domain::Lasso, Domain::Portfolio] {
            let qp = generate(domain, 3, 1);
            let r = customize(&qp, 16, 4);
            assert!(
                r.eta_custom > r.eta_baseline,
                "{domain}: {} vs {}",
                r.eta_custom,
                r.eta_baseline
            );
            assert!(r.eta_custom <= 1.0 + 1e-12);
            assert!(r.eta_baseline > 0.0);
        }
    }

    #[test]
    fn eqqp_improves_least() {
        // Figure 9: the eqqp class benefits least from customization.
        let structured = customize(&generate(Domain::Svm, 4, 1), 16, 4);
        let eqqp = customize(&generate(Domain::Eqqp, 40, 1), 16, 4);
        assert!(structured.eta_improvement() > eqqp.eta_improvement());
    }

    #[test]
    fn result_reports_per_matrix_details() {
        let qp = generate(Domain::Svm, 3, 1);
        let r = customize(&qp, 16, 4);
        assert_eq!(r.matrices.len(), 3);
        let names: Vec<_> = r.matrices.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["P", "A", "At"]);
        for m in &r.matrices {
            assert!(m.cycles_custom <= m.cycles_baseline);
            assert!(m.ec.1 <= m.ec.0);
        }
        assert!(r.notation().starts_with("16{"));
    }

    #[test]
    fn custom_design_uses_more_area() {
        let qp = generate(Domain::Svm, 3, 1);
        let r = customize(&qp, 16, 4);
        assert!(r.resources.ff >= r.baseline_resources.ff);
        assert!(r.resources.lut >= r.baseline_resources.lut);
        assert_eq!(r.resources.dsp, r.baseline_resources.dsp);
    }

    #[test]
    fn scoring_a_given_config_works() {
        use rsqp_encode::{Alphabet, StructureSet};
        let qp = generate(Domain::Svm, 3, 1);
        let cfg = ArchConfig::new(StructureSet::parse("16a1e", Alphabet::new(16)));
        let r = customize_with_config(&qp, cfg);
        assert!(r.eta_custom >= r.eta_baseline);
    }

    #[test]
    fn layout_for_is_consistent() {
        let qp = generate(Domain::Control, 3, 1);
        let cfg = baseline_config(8);
        let layout = layout_for(qp.a(), &cfg);
        assert!(layout.num_addresses() > 0);
    }
}
