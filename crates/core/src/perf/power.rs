//! Power-efficiency accounting (Figure 13).

use std::time::Duration;

/// Throughput per watt: problem instances solved per second per watt —
/// "the number of problem instances each device can run using unit power"
/// (§5.4).
pub fn throughput_per_watt(solve_time: Duration, power_w: f64) -> f64 {
    let t = solve_time.as_secs_f64();
    if t <= 0.0 || power_w <= 0.0 {
        return 0.0;
    }
    (1.0 / t) / power_w
}

/// Energy per solved instance in joules.
pub fn energy_per_instance(solve_time: Duration, power_w: f64) -> f64 {
    solve_time.as_secs_f64() * power_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_per_watt_basics() {
        let t = Duration::from_millis(100);
        // 10 instances/s at 20 W -> 0.5 per watt.
        assert!((throughput_per_watt(t, 20.0) - 0.5).abs() < 1e-12);
        assert_eq!(throughput_per_watt(Duration::ZERO, 20.0), 0.0);
        assert_eq!(throughput_per_watt(t, 0.0), 0.0);
    }

    #[test]
    fn energy_is_time_times_power() {
        let e = energy_per_instance(Duration::from_secs(2), 19.0);
        assert!((e - 38.0).abs() < 1e-12);
    }

    #[test]
    fn fpga_beats_gpu_at_equal_times() {
        use crate::perf::fpga::FPGA_POWER_W;
        let t = Duration::from_millis(50);
        let fpga = throughput_per_watt(t, FPGA_POWER_W);
        let gpu = throughput_per_watt(t, 110.0);
        assert!(fpga / gpu > 5.0);
    }
}
