//! FPGA end-to-end time model: simulated cycles → seconds.

use std::time::Duration;

use rsqp_arch::{ArchConfig, ResourceModel, RunStats};

/// PCIe host↔card bandwidth used for the per-solve vector transfers
/// (bytes/second). The U50 is a PCIe 3.0 ×16 card; sustained ≈ 12 GB/s.
const PCIE_BW: f64 = 12.0e9;
/// Fixed per-solve host overhead (driver calls, kernel arguments, fences).
const HOST_OVERHEAD_S: f64 = 60e-6;

/// Converts machine cycle counts into end-to-end FPGA solve time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPerfModel {
    /// Clock frequency the design closes at, from the calibrated model.
    pub fmax_hz: f64,
}

impl FpgaPerfModel {
    /// Derives the model from an architecture configuration.
    pub fn from_config(config: &ArchConfig) -> Self {
        let est = ResourceModel.estimate(config.set());
        FpgaPerfModel { fmax_hz: est.fmax_mhz * 1e6 }
    }

    /// Builds directly from a frequency in MHz.
    pub fn from_fmax_mhz(mhz: f64) -> Self {
        FpgaPerfModel { fmax_hz: mhz * 1e6 }
    }

    /// End-to-end solve time:
    ///
    /// * the measured PCG cycles (`stats.cycles`),
    /// * plus the analytic outer-update cycles per ADMM iteration,
    /// * plus the per-solve host overhead and the PCIe transfer of the
    ///   iterate/result vectors.
    ///
    /// Matrix upload is excluded: like the bitstream, it is per-*structure*
    /// setup amortized over many solves (§1 of the paper).
    pub fn solve_time(
        &self,
        stats: RunStats,
        admm_iterations: usize,
        outer_cycles_per_iter: u64,
        n: usize,
        m: usize,
    ) -> Duration {
        let device_cycles = stats.cycles + admm_iterations as u64 * outer_cycles_per_iter;
        let device_s = device_cycles as f64 / self.fmax_hz;
        let transfer_s = ((n + m) as f64 * 2.0 * 8.0) / PCIE_BW;
        Duration::from_secs_f64(device_s + transfer_s + HOST_OVERHEAD_S)
    }

    /// Time of a single SpMV that takes `cycles` machine cycles — the
    /// "SpMV/µs" basis of Table 3.
    pub fn spmv_time(&self, cycles: u64) -> Duration {
        Duration::from_secs_f64(cycles as f64 / self.fmax_hz)
    }
}

/// Steady-state board power observed while running the benchmark (§5.4:
/// "the power consumption of the FPGA is steady at 19 W").
pub const FPGA_POWER_W: f64 = 19.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64) -> RunStats {
        RunStats { cycles, ..Default::default() }
    }

    #[test]
    fn time_scales_with_cycles_and_frequency() {
        let fast = FpgaPerfModel::from_fmax_mhz(300.0);
        let slow = FpgaPerfModel::from_fmax_mhz(150.0);
        let t_fast = fast.solve_time(stats(3_000_000), 10, 100, 100, 100);
        let t_slow = slow.solve_time(stats(3_000_000), 10, 100, 100, 100);
        assert!(t_slow > t_fast);
        let t_more = fast.solve_time(stats(6_000_000), 10, 100, 100, 100);
        assert!(t_more > t_fast);
    }

    #[test]
    fn from_config_uses_resource_model() {
        let small = FpgaPerfModel::from_config(&ArchConfig::baseline(16));
        assert!(small.fmax_hz > 2.0e8);
    }

    #[test]
    fn host_overhead_dominates_tiny_solves() {
        let m = FpgaPerfModel::from_fmax_mhz(300.0);
        let t = m.solve_time(stats(100), 1, 10, 10, 10);
        assert!(t.as_secs_f64() >= HOST_OVERHEAD_S);
        assert!(t.as_secs_f64() < 2.0 * HOST_OVERHEAD_S);
    }

    #[test]
    fn spmv_time_matches_fmax() {
        let m = FpgaPerfModel::from_fmax_mhz(250.0);
        let t = m.spmv_time(250);
        assert!((t.as_secs_f64() - 1e-6).abs() < 1e-12);
    }
}
