//! Analytic cuOSQP-on-RTX-3070 cost model.
//!
//! cuOSQP (Schubiger et al. 2020) executes the same indirect ADMM as RSQP:
//! per CG iteration a handful of cuSparse/cuBLAS kernels, per ADMM iteration
//! a dozen element-wise kernels. On a discrete GPU each kernel launch costs
//! microseconds, and the kernels themselves are memory-bound. The model
//! reproduces cuOSQP's published behaviour: launch overhead makes the GPU
//! *slower* than the CPU on small problems, while bandwidth wins at
//! ≳10⁵ non-zeros.

use std::time::Duration;

/// Per-kernel launch overhead (seconds). Typical for CUDA on PCIe cards.
const LAUNCH_S: f64 = 5.0e-6;
/// Effective device bandwidth: 448 GB/s peak × ~55 % achievable on sparse
/// streams.
const BW_EFF: f64 = 246.0e9;
/// Host↔device PCIe bandwidth for the per-solve vector traffic.
const PCIE_BW: f64 = 12.0e9;
/// Kernels per CG iteration (3 SpMV + axpy/dot chain).
const KERNELS_PER_CG: f64 = 8.0;
/// Kernels per ADMM outer update.
const KERNELS_PER_ADMM: f64 = 12.0;

/// The GPU cost model (single-precision cuOSQP on an RTX 3070).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPerfModel {
    launch_s: f64,
    bw_eff: f64,
}

impl GpuPerfModel {
    /// The RTX 3070 instance used throughout the evaluation.
    pub fn rtx3070() -> Self {
        GpuPerfModel { launch_s: LAUNCH_S, bw_eff: BW_EFF }
    }

    /// Custom constants (for sensitivity studies).
    pub fn with_constants(launch_s: f64, bw_eff: f64) -> Self {
        GpuPerfModel { launch_s, bw_eff }
    }

    /// Estimated end-to-end solve time given the iteration counts observed
    /// on the reference solver run.
    ///
    /// * `admm_iterations` / `cg_iterations` — totals for the solve,
    /// * `n`, `m`, `nnz` — problem dimensions (`nnz = nnz(P)+nnz(A)`).
    pub fn solve_time(
        &self,
        admm_iterations: usize,
        cg_iterations: usize,
        n: usize,
        m: usize,
        nnz: usize,
    ) -> Duration {
        // Bytes per CG iteration: the three SpMVs stream P, A, Aᵀ once
        // (value f32 + column index u32 = 8 B per stored entry; A counted
        // twice for A and Aᵀ) plus ~10 n-length vector touches.
        let spmv_bytes = (nnz + nnz) as f64 * 8.0;
        let vec_bytes = 10.0 * (n as f64) * 4.0;
        let cg_time = cg_iterations as f64
            * (KERNELS_PER_CG * self.launch_s + (spmv_bytes + vec_bytes) / self.bw_eff);
        // ADMM outer update: ~12 kernels over m- and n-length vectors.
        let admm_bytes = (8.0 * m as f64 + 4.0 * n as f64) * 4.0 * 3.0;
        let admm_time =
            admm_iterations as f64 * (KERNELS_PER_ADMM * self.launch_s + admm_bytes / self.bw_eff);
        // Per-solve host↔device traffic (q, bounds, iterates, results).
        let transfer = ((n + m) as f64 * 6.0 * 4.0) / PCIE_BW + 30.0e-6;
        Duration::from_secs_f64(cg_time + admm_time + transfer)
    }

    /// Modeled board power while solving a problem of the given size,
    /// spanning the 44–126 W range the paper measured with `nvidia-smi`.
    pub fn power_w(&self, nnz: usize) -> f64 {
        let util = ((nnz as f64) / 3.0e5).powf(0.7).min(1.0);
        44.0 + 82.0 * util
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_overhead_dominates_small_problems() {
        let g = GpuPerfModel::rtx3070();
        // 100 ADMM iters, 300 CG iters on a tiny problem.
        let t = g.solve_time(100, 300, 50, 100, 500).as_secs_f64();
        let launch_only = 300.0 * KERNELS_PER_CG * LAUNCH_S + 100.0 * KERNELS_PER_ADMM * LAUNCH_S;
        assert!(t > launch_only);
        assert!(t < launch_only * 1.5, "t {t} vs launches {launch_only}");
    }

    #[test]
    fn bandwidth_dominates_large_problems() {
        let g = GpuPerfModel::rtx3070();
        let small = g.solve_time(100, 300, 1_000, 2_000, 10_000).as_secs_f64();
        let large = g.solve_time(100, 300, 100_000, 200_000, 2_000_000).as_secs_f64();
        assert!(large > 3.0 * small);
    }

    #[test]
    fn power_spans_papers_range() {
        let g = GpuPerfModel::rtx3070();
        assert!(g.power_w(100) < 50.0);
        assert!((g.power_w(10_000_000) - 126.0).abs() < 1.0);
        assert!(g.power_w(100_000) > g.power_w(1_000));
    }

    #[test]
    fn custom_constants_change_the_estimate() {
        let fast = GpuPerfModel::with_constants(1e-6, 400e9);
        let slow = GpuPerfModel::rtx3070();
        assert!(
            fast.solve_time(10, 100, 1000, 1000, 10000)
                < slow.solve_time(10, 100, 1000, 1000, 10000)
        );
    }
}
