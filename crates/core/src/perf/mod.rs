//! Performance, power, and efficiency models for the three platforms of
//! Table 2.
//!
//! * **CPU** (Intel i7-10700KF in the paper): *measured* — the Rust solver's
//!   wall-clock stands in for OSQP+MKL; only the static platform data lives
//!   here.
//! * **GPU** (NVIDIA RTX 3070 running cuOSQP): *modeled* — a
//!   launch-overhead + memory-roofline model (see [`gpu`]).
//! * **FPGA** (AMD-Xilinx U50 running RSQP): *simulated* — cycles come from
//!   the `rsqp-arch` machine, converted to seconds with the calibrated
//!   f_max model (see [`fpga`]).

pub mod fpga;
pub mod gpu;
pub mod power;

/// Static description of one platform row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Device class ("FPGA", "CPU", "GPU").
    pub kind: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Peak single-precision throughput in teraflops.
    pub peak_tflops: f64,
    /// Process node in nanometres.
    pub lithography_nm: u32,
    /// Thermal design power in watts.
    pub tdp_w: u32,
}

/// The three platforms of the paper's Table 2.
pub fn platforms() -> [Platform; 3] {
    [
        Platform {
            kind: "FPGA",
            model: "AMD-Xilinx U50",
            peak_tflops: 0.3,
            lithography_nm: 16,
            tdp_w: 75,
        },
        Platform {
            kind: "CPU",
            model: "Intel i7-10700KF",
            peak_tflops: 0.5,
            lithography_nm: 14,
            tdp_w: 125,
        },
        Platform {
            kind: "GPU",
            model: "NVIDIA RTX3070",
            peak_tflops: 20.0,
            lithography_nm: 8,
            tdp_w: 220,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_platforms_match_paper() {
        let p = platforms();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].model, "AMD-Xilinx U50");
        assert_eq!(p[1].tdp_w, 125);
        assert!((p[2].peak_tflops - 20.0).abs() < 1e-12);
    }
}
