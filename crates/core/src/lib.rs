//! RSQP core: the paper's primary contribution, assembled.
//!
//! This crate ties the substrates together into the system the paper
//! describes:
//!
//! * [`customize`] — the problem-specific customization pipeline of §4:
//!   encode the sparsity of `P`, `A`, `Aᵀ` as strings, search a MAC-tree
//!   structure set with LZW (minimizing `E_p`), compress the vector buffers
//!   with First-Fit (minimizing `E_c`), and score the result with the match
//!   metric η of §3.6;
//! * [`CustomizationCache`] — a bounded, pattern-keyed cache of those
//!   artifacts (plus the symbolic LDLᵀ ordering), so repeated-solve
//!   workloads pay the pipeline once per sparsity structure, not per
//!   problem instance;
//! * [`FpgaPcgBackend`] — a [`rsqp_solver::KktBackend`] that runs Algorithm
//!   2 on the cycle-level machine of `rsqp-arch`, so the OSQP outer loop
//!   converges on *simulated-FPGA arithmetic* while cycles are counted;
//! * [`perf`] — end-to-end time, power, and efficiency models for the three
//!   platforms of Table 2 (measured CPU, modeled GPU, simulated FPGA);
//! * [`report`] — small CSV/table helpers shared by the figure harnesses.
//!
//! # Example: customize an architecture for one problem
//!
//! ```
//! use rsqp_core::customize;
//! use rsqp_problems::{generate, Domain};
//!
//! let qp = generate(Domain::Svm, 3, 1);
//! let result = customize(&qp, 16, 4);
//! assert!(result.eta_custom >= result.eta_baseline);
//! assert!(result.eta_custom <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod bundle;
mod cache;
mod customize;
mod eta;
pub mod perf;
pub mod report;

pub use backend::FpgaPcgBackend;
pub use cache::{CacheLookup, CacheParams, CustomizationCache, PatternArtifacts};
pub use customize::{
    baseline_config, customize, customize_with_config, layout_for, CustomizationResult,
    MatrixCustomization,
};
pub use eta::{eta, EtaParts};
