//! Safe chunked-slice and reduction helpers layered on [`ThreadPool::run`].

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::pool::ThreadPool;

/// Vectors shorter than this are best processed serially: below it the
/// condvar round-trip of a pool dispatch costs more than the work.
pub const PAR_LEN_THRESHOLD: usize = 8192;

/// Chunk length used by elementwise kernels (`axpy`, `lincomb`, …).
pub const ELEM_CHUNK: usize = 16_384;

/// Maximum number of chunks a reduction is split into. Fixed so the partial
/// sums fit a stack array and the combine order never changes.
pub const MAX_REDUCE_CHUNKS: usize = 128;

/// Minimum reduction chunk length (keeps tiny chunks from dominating).
const REDUCE_CHUNK_MIN: usize = 4096;

/// The fixed reduction chunk length for a vector of length `len`.
///
/// Depends only on `len`, never on the thread count, so the chunk grid —
/// and therefore the floating-point grouping of a reduction — is identical
/// on every pool.
pub fn reduce_chunk_len(len: usize) -> usize {
    len.div_ceil(MAX_REDUCE_CHUNKS).max(REDUCE_CHUNK_MIN)
}

/// Shares a raw base pointer with worker threads.
///
/// Each chunk task derives a slice from it over a range that the caller
/// has proven disjoint from every other chunk's range.
struct SlicePtr<T> {
    ptr: *mut T,
}

// SAFETY: the tasks built on this only ever materialize disjoint
// subslices, so aliased access to the same element cannot occur.
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T> SlicePtr<T> {
    /// Pointer `off` elements past the base. A method (rather than direct
    /// field access) so closures capture the `Sync` wrapper, not the raw
    /// pointer field.
    fn at(&self, off: usize) -> *mut T {
        self.ptr.wrapping_add(off)
    }
}

impl ThreadPool {
    /// Splits `out` at `bounds` and runs `f(chunk_index, start, chunk)` on
    /// every piece in parallel. `bounds` must start at 0, end at
    /// `out.len()`, and be non-decreasing — the caller typically gets it
    /// from a row partition balanced by nnz.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a valid partition of `out`, or if `f`
    /// panics.
    pub fn par_chunks<T, F>(&self, out: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        assert!(bounds.len() >= 2, "partition needs at least one chunk");
        assert_eq!(bounds[0], 0, "partition must start at 0");
        assert_eq!(*bounds.last().unwrap(), out.len(), "partition must cover the slice");
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "partition bounds must be sorted");

        let base = SlicePtr { ptr: out.as_mut_ptr() };
        self.run(bounds.len() - 1, &|i| {
            let (lo, hi) = (bounds[i], bounds[i + 1]);
            // SAFETY: bounds are sorted and within `out`, so [lo, hi) is in
            // range and disjoint from every other chunk's range.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(lo), hi - lo) };
            f(i, lo, chunk);
        });
    }

    /// Splits `out` into `chunk_len`-sized pieces (last one shorter) and
    /// runs `f(start, chunk)` on every piece in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` or if `f` panics.
    pub fn par_chunks_uniform<T, F>(&self, out: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        let len = out.len();
        if len == 0 {
            return;
        }
        let base = SlicePtr { ptr: out.as_mut_ptr() };
        self.run(len.div_ceil(chunk_len), &|i| {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(len);
            // SAFETY: [lo, hi) ranges of distinct chunk indices are
            // disjoint and within `out`.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(lo), hi - lo) };
            f(lo, chunk);
        });
    }

    /// Ordered parallel sum: evaluates `f(range)` for every chunk of the
    /// fixed grid (`chunk_len`-sized pieces of `0..len`) in parallel, then
    /// adds the partial sums **in chunk order** on the calling thread.
    ///
    /// Bit-identical across thread counts because both the grid and the
    /// combine order are independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`, if the grid exceeds
    /// [`MAX_REDUCE_CHUNKS`] chunks, or if `f` panics.
    pub fn par_sum<F>(&self, len: usize, chunk_len: usize, f: F) -> f64
    where
        F: Fn(Range<usize>) -> f64 + Sync,
    {
        if len == 0 {
            return 0.0;
        }
        assert!(chunk_len > 0, "chunk length must be positive");
        let nchunks = len.div_ceil(chunk_len);
        assert!(
            nchunks <= MAX_REDUCE_CHUNKS,
            "reduction grid too fine: {nchunks} chunks (max {MAX_REDUCE_CHUNKS}); \
             use reduce_chunk_len(len)"
        );
        // Fixed stack slots — no allocation on the reduction path.
        let slots: [AtomicU64; MAX_REDUCE_CHUNKS] =
            std::array::from_fn(|_| AtomicU64::new(0f64.to_bits()));
        self.run(nchunks, &|i| {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(len);
            slots[i].store(f(lo..hi).to_bits(), Ordering::Relaxed);
        });
        let mut total = 0.0;
        for slot in slots.iter().take(nchunks) {
            total += f64::from_bits(slot.load(Ordering::Relaxed));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_covers_disjoint_ranges() {
        let pool = ThreadPool::new(4);
        let mut v = vec![0usize; 100];
        let bounds = [0usize, 10, 10, 55, 100];
        pool.par_chunks(&mut v, &bounds, |idx, start, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = 1000 * idx + start + k;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            let idx = if i < 10 {
                0
            } else if i < 55 {
                2
            } else {
                3
            };
            assert_eq!(x, 1000 * idx + i);
        }
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn par_chunks_rejects_short_partition() {
        let pool = ThreadPool::serial();
        let mut v = vec![0.0; 10];
        pool.par_chunks(&mut v, &[0, 5], |_, _, _| {});
    }

    #[test]
    fn par_chunks_uniform_touches_every_element_once() {
        let pool = ThreadPool::new(3);
        let mut v = vec![0u32; 1000];
        pool.par_chunks_uniform(&mut v, 64, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_sum_matches_chunked_serial_sum_bitwise() {
        let x: Vec<f64> = (0..50_000).map(|i| ((i * 37 + 11) % 1000) as f64 * 1e-3 - 0.4).collect();
        let chunk = reduce_chunk_len(x.len());
        let serial_chunked: f64 =
            x.chunks(chunk).map(|c| c.iter().sum::<f64>()).fold(0.0, |a, b| a + b);
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let got = pool.par_sum(x.len(), chunk, |r| x[r].iter().sum());
            assert_eq!(got.to_bits(), serial_chunked.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn reduce_chunk_len_is_pure_in_len() {
        assert_eq!(reduce_chunk_len(1), 4096);
        assert_eq!(reduce_chunk_len(4096 * 128), 4096);
        let len: usize = 10_000_000;
        assert!(len.div_ceil(reduce_chunk_len(len)) <= MAX_REDUCE_CHUNKS);
    }
}
