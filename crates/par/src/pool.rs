//! The reusable worker pool and its allocation-free dispatch protocol.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Type-erased pointer to the closure of the active parallel region.
///
/// The pointee lives on the stack of the thread inside [`ThreadPool::run`];
/// `run` does not return until every worker that entered the region has
/// left it again (`active == 0`), so the pointer never dangles while a
/// worker holds it.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync`, so calling it from several threads at once
// is fine, and the region protocol above keeps it alive while shared.
unsafe impl Send for TaskPtr {}

struct Dispatch {
    /// Region counter; an increment (with `task` set) wakes the workers.
    generation: u64,
    /// Chunk count of the active region.
    nchunks: usize,
    /// The active region's closure; `None` while no region is open.
    task: Option<TaskPtr>,
    /// Number of workers currently inside the active region.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<Dispatch>,
    /// Wakes workers when a region opens (or shutdown is requested).
    start: Condvar,
    /// Wakes the caller when the last worker leaves the region.
    done: Condvar,
    /// Next unclaimed chunk index of the active region.
    next: AtomicUsize,
    /// Set when a chunk panicked on a worker; re-raised by the caller.
    panicked: AtomicBool,
}

fn lock(m: &Mutex<Dispatch>) -> MutexGuard<'_, Dispatch> {
    // Workers run user closures under catch_unwind and never panic while
    // holding the lock, but survive poisoning anyway.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A reusable pool of worker threads executing indexed chunk tasks.
///
/// The calling thread always participates in the work, so a pool of
/// `threads` runs a region on up to `threads` threads using `threads - 1`
/// workers; [`ThreadPool::serial`] (or `new(1)`) has no workers at all and
/// runs every region inline. Chunks are claimed dynamically from a shared
/// counter, but which thread runs a chunk never affects results — see the
/// crate-level determinism contract.
///
/// Regions are serialized per pool: concurrent [`ThreadPool::run`] calls
/// from different threads queue up rather than interleave.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serializes `run` so at most one region is open per pool.
    region: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish_non_exhaustive()
    }
}

/// Available hardware parallelism (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

impl ThreadPool {
    /// Creates a pool that runs regions on up to `threads` threads
    /// (`threads - 1` spawned workers plus the caller). `threads == 0` is
    /// treated as 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(Dispatch {
                generation: 0,
                nchunks: 0,
                task: None,
                active: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsqp-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        ThreadPool { shared, region: Mutex::new(()), workers, threads }
    }

    /// A pool with no workers: every region runs inline on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Thread count this pool runs regions on (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when the pool has no workers and runs everything inline.
    pub fn is_serial(&self) -> bool {
        self.workers.is_empty()
    }

    /// Runs `f(chunk_index)` for every index in `0..nchunks`, spread over
    /// the pool. Returns once every chunk has finished. With no workers or
    /// a single chunk the calls happen inline, in order.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f`. When the panicking chunk ran on a worker
    /// the original payload is lost and a generic message is raised; the
    /// remaining chunks still complete first, so the pool stays usable.
    pub fn run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if nchunks == 0 {
            return;
        }
        if self.workers.is_empty() || nchunks == 1 {
            for i in 0..nchunks {
                f(i);
            }
            return;
        }
        let region = self.region.lock().unwrap_or_else(PoisonError::into_inner);

        // Erase the borrow's lifetime so the pointer fits the inline task
        // slot. SAFETY: the pointee outlives the region because this
        // function does not return before `active` drops to zero below.
        let ptr = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = lock(&self.shared.state);
            self.shared.next.store(0, Ordering::Relaxed);
            st.task = Some(ptr);
            st.nchunks = nchunks;
            st.generation = st.generation.wrapping_add(1);
        }
        self.shared.start.notify_all();

        // The caller participates instead of blocking idle.
        let caller = catch_unwind(AssertUnwindSafe(|| loop {
            let idx = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if idx >= nchunks {
                break;
            }
            f(idx);
        }));

        // Close the region and wait until every worker that entered it has
        // left; after this no thread holds the task pointer.
        {
            let mut st = lock(&self.shared.state);
            st.task = None;
            while st.active != 0 {
                st = self.shared.done.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        drop(region);

        if let Err(payload) = caller {
            self.shared.panicked.store(false, Ordering::Relaxed);
            resume_unwind(payload);
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("rsqp-par: a parallel task panicked on a worker thread");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (task, nchunks, generation) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    if let Some(task) = st.task {
                        // Enter the region while it is provably open (task
                        // still set, under the lock): the caller cannot
                        // return before `active` drops back to zero.
                        st.active += 1;
                        break (task, st.nchunks, st.generation);
                    }
                    // Woke up after the region already closed; skip it so a
                    // stale generation never claims chunks of a later one.
                    seen = st.generation;
                }
                st = shared.start.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        seen = generation;

        // SAFETY: `active` was incremented under the lock while the region
        // was open, so the closure outlives this whole claim loop.
        let f = unsafe { &*task.0 };
        loop {
            let idx = shared.next.fetch_add(1, Ordering::Relaxed);
            if idx >= nchunks {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| f(idx))).is_err() {
                shared.panicked.store(true, Ordering::Relaxed);
            }
        }

        let mut st = lock(&shared.state);
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ThreadPool::serial();
        let order = Mutex::new(Vec::new());
        pool.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn all_chunks_run_exactly_once() {
        let pool = ThreadPool::new(4);
        for nchunks in [1usize, 2, 3, 7, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..nchunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(nchunks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} of {nchunks}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_regions() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            pool.run(8, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * (0..8).sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still work after the panic.
        let count = AtomicUsize::new(0);
        pool.run(16, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = ThreadPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }
}
