//! Deterministic data-parallel primitives for the RSQP CPU hot path.
//!
//! The registry is unreachable in our build environment, so this crate is a
//! small, dependency-free stand-in for the slice of rayon the solver needs:
//! a reusable [`ThreadPool`] that runs an indexed task over a fixed chunk
//! grid, plus safe helpers for disjoint mutable chunks
//! ([`ThreadPool::par_chunks`], [`ThreadPool::par_chunks_uniform`]) and
//! ordered reductions ([`ThreadPool::par_sum`]).
//!
//! # Determinism contract
//!
//! Every primitive here is **deterministic by construction**:
//!
//! * Chunk boundaries are a pure function of the input length (or an
//!   explicit, caller-supplied partition) — never of the thread count or of
//!   runtime timing.
//! * Reductions combine per-chunk partial results **in chunk order** on the
//!   calling thread. Floating-point results are therefore bit-identical
//!   across thread counts (1, 2, 8, …) and across runs; they may differ
//!   from a single serial left-to-right pass only because the chunk grid
//!   groups the additions differently, and that grouping is fixed.
//! * Elementwise chunk kernels write disjoint output ranges, so their
//!   results are bit-identical to a serial pass regardless of scheduling.
//!
//! # Dispatch cost
//!
//! A pool is created once and reused; dispatching a parallel region
//! performs no heap allocation (the task is passed to workers as a borrowed
//! pointer guarded by a generation/quiescence protocol). Callers should
//! still fall back to serial loops below [`PAR_LEN_THRESHOLD`] elements,
//! where a condvar round-trip costs more than the work.

mod chunks;
mod pool;

pub use chunks::{reduce_chunk_len, ELEM_CHUNK, MAX_REDUCE_CHUNKS, PAR_LEN_THRESHOLD};
pub use pool::{available_threads, ThreadPool};
