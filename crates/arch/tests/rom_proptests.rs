//! Property-based tests: the instruction-ROM encoding round-trips arbitrary
//! well-formed instructions and programs.

use proptest::prelude::*;
use rsqp_arch::rom::{decode_instr, decode_program, encode_instr, encode_program};
use rsqp_arch::{Instr, MatrixId, ProgramBuilder, SReg, ScalarOp, VecId};

fn arb_sreg() -> impl Strategy<Value = SReg> {
    (0usize..128).prop_map(SReg::from_raw)
}

fn arb_vec() -> impl Strategy<Value = VecId> {
    (0usize..16384).prop_map(VecId::from_raw)
}

fn arb_matrix() -> impl Strategy<Value = MatrixId> {
    (0usize..16).prop_map(MatrixId::from_raw)
}

fn arb_scalar_op() -> impl Strategy<Value = ScalarOp> {
    prop::sample::select(vec![
        ScalarOp::Add,
        ScalarOp::Sub,
        ScalarOp::Mul,
        ScalarOp::Div,
        ScalarOp::Max,
    ])
}

fn arb_body_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_scalar_op(), arb_sreg(), arb_sreg(), arb_sreg())
            .prop_map(|(op, dst, a, b)| Instr::Scalar { op, dst, a, b }),
        (arb_sreg(), any::<f64>()).prop_map(|(dst, value)| Instr::SetScalar { dst, value }),
        arb_vec().prop_map(|vec| Instr::LoadHbm { vec }),
        arb_vec().prop_map(|vec| Instr::StoreHbm { vec }),
        (arb_vec(), arb_sreg(), arb_vec(), arb_sreg(), arb_vec())
            .prop_map(|(dst, alpha, a, beta, b)| Instr::Lincomb { dst, alpha, a, beta, b }),
        (arb_vec(), arb_vec(), arb_vec()).prop_map(|(dst, a, b)| Instr::EwMul { dst, a, b }),
        (arb_vec(), arb_vec(), arb_vec()).prop_map(|(dst, a, b)| Instr::EwMax { dst, a, b }),
        (arb_vec(), arb_vec(), arb_vec()).prop_map(|(dst, a, b)| Instr::EwMin { dst, a, b }),
        (arb_sreg(), arb_vec(), arb_vec()).prop_map(|(dst, a, b)| Instr::Dot { dst, a, b }),
        (arb_vec(), arb_matrix()).prop_map(|(vec, matrix)| Instr::Duplicate { vec, matrix }),
        (arb_matrix(), arb_vec(), arb_vec()).prop_map(|(matrix, input, output)| Instr::Spmv {
            matrix,
            input,
            output
        }),
    ]
}

proptest! {
    #[test]
    fn single_instructions_roundtrip(i in arb_body_instr()) {
        let decoded = decode_instr(encode_instr(&i)).expect("decodes");
        match (&i, &decoded) {
            // NaN immediates compare by bits.
            (Instr::SetScalar { dst: d1, value: v1 }, Instr::SetScalar { dst: d2, value: v2 }) => {
                prop_assert_eq!(d1, d2);
                prop_assert_eq!(v1.to_bits(), v2.to_bits());
            }
            _ => prop_assert_eq!(&decoded, &i),
        }
    }

    #[test]
    fn programs_roundtrip(body in prop::collection::vec(arb_body_instr(), 0..40),
                          with_loop in any::<bool>(),
                          trips in 1usize..1000) {
        let mut pb = ProgramBuilder::new();
        pb.max_trips(trips);
        let half = body.len() / 2;
        for i in &body[..half] {
            pb.push(*i);
        }
        if with_loop {
            pb.loop_start();
        }
        for i in &body[half..] {
            pb.push(*i);
        }
        if with_loop {
            pb.loop_end_if_less(SReg::from_raw(0), SReg::from_raw(1));
        }
        let p = pb.build().expect("balanced");
        let rom = encode_program(&p);
        let back = decode_program(&rom, trips).expect("decodes");
        prop_assert_eq!(back.len(), p.len());
        prop_assert_eq!(back.loop_bounds(), p.loop_bounds());
        for (a, b) in back.instrs().iter().zip(p.instrs()) {
            match (a, b) {
                (Instr::SetScalar { value: v1, .. }, Instr::SetScalar { value: v2, .. }) => {
                    prop_assert_eq!(v1.to_bits(), v2.to_bits());
                }
                _ => prop_assert_eq!(a, b),
            }
        }
    }
}
