//! Proves the lane-exact datapath (scheduled packs + CVB bank translation)
//! computes exactly what the reference CSR kernel computes, on real
//! benchmark matrices with customized structure sets.

use rsqp_arch::{ArchConfig, Instr, Machine, ProgramBuilder};
use rsqp_encode::{search_structures, SparsityString, StructureSet};
use rsqp_problems::{generate, Domain};
use rsqp_sparse::CsrMatrix;

fn run_spmv(machine: &mut Machine, mat: rsqp_arch::MatrixId, x: &[f64], rows: usize) -> Vec<f64> {
    let xv = machine.alloc_vec(x.len());
    let yv = machine.alloc_vec(rows);
    machine.write_vec(xv, x);
    let mut pb = ProgramBuilder::new();
    pb.push(Instr::Duplicate { vec: xv, matrix: mat });
    pb.push(Instr::Spmv { matrix: mat, input: xv, output: yv });
    machine.run(&pb.build().unwrap()).unwrap();
    machine.read_vec(yv).to_vec()
}

fn check_matrix(m: &CsrMatrix, set: StructureSet) {
    let mut fast = Machine::new(ArchConfig::new(set.clone()));
    let mut exact = Machine::new(ArchConfig::new(set));
    exact.set_lane_exact(true);
    let mf = fast.add_matrix(m);
    let me = exact.add_matrix(m);
    let x: Vec<f64> = (0..m.ncols()).map(|j| ((j as f64) * 0.37).sin() + 0.1).collect();
    let yf = run_spmv(&mut fast, mf, &x, m.nrows());
    let ye = run_spmv(&mut exact, me, &x, m.nrows());
    let mut want = vec![0.0; m.nrows()];
    m.spmv(&x, &mut want).unwrap();
    for i in 0..m.nrows() {
        assert!((yf[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()), "fast path row {i}");
        assert!(
            (ye[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
            "lane-exact row {i}: {} vs {}",
            ye[i],
            want[i]
        );
    }
    // And the two machines must report identical cycle counts.
    assert_eq!(fast.stats().cycles, exact.stats().cycles);
}

#[test]
fn lane_exact_matches_reference_on_benchmark_matrices() {
    for (domain, size) in [
        (Domain::Control, 3),
        (Domain::Svm, 4),
        (Domain::Lasso, 4),
        (Domain::Portfolio, 1),
        (Domain::Huber, 3),
        (Domain::Eqqp, 12),
    ] {
        let qp = generate(domain, size, 7);
        for m in [qp.p(), qp.a()] {
            if m.nnz() == 0 {
                continue;
            }
            let c = 16;
            let s = SparsityString::encode(m, c);
            let set = search_structures(&s, 4);
            check_matrix(m, set);
        }
    }
}

#[test]
fn lane_exact_handles_long_rows() {
    // A matrix with rows far longer than C exercises the $-chunk partial
    // accumulation path.
    let n = 40;
    let mut t = Vec::new();
    for j in 0..n {
        t.push((0, j, (j as f64) * 0.1 + 1.0));
    }
    t.push((1, 0, 2.0));
    t.push((2, 1, 3.0));
    let m = CsrMatrix::from_triplets(3, n, t);
    let s = SparsityString::encode(&m, 8);
    let set = search_structures(&s, 3);
    check_matrix(&m, set);
}

#[test]
fn customization_reduces_cycles_on_svm() {
    let qp = generate(Domain::Svm, 5, 3);
    let a = qp.a();
    let c = 16;
    let s = SparsityString::encode(a, c);
    let baseline = StructureSet::baseline(s.alphabet());
    let custom = search_structures(&s, 4);

    let mut mb = Machine::new(ArchConfig::new(baseline));
    let mut mc = Machine::new(ArchConfig::new(custom));
    let ib = mb.add_matrix(a);
    let ic = mc.add_matrix(a);
    let base_cycles = mb.schedule_of(ib).cycles();
    let custom_cycles = mc.schedule_of(ic).cycles();
    assert!(custom_cycles < base_cycles, "customized {custom_cycles} vs baseline {base_cycles}");
    // CVB compression must also beat full duplication.
    let full_addresses = a.ncols();
    assert!(mc.layout_of(ic).num_addresses() <= full_addresses);
}
