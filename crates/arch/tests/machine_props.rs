//! Property-based machine tests: random vector-engine programs must compute
//! exactly what a direct reference evaluation computes, and cycle counts
//! must be deterministic.

use proptest::prelude::*;
use rsqp_arch::{ArchConfig, Instr, Machine, ProgramBuilder, ScalarOp};

/// A tiny reference interpreter over three vectors and four scalars.
#[derive(Clone)]
struct Ref {
    vecs: Vec<Vec<f64>>,
    sregs: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Lincomb { dst: usize, alpha: usize, a: usize, beta: usize, b: usize },
    EwMul { dst: usize, a: usize, b: usize },
    EwMax { dst: usize, a: usize, b: usize },
    EwMin { dst: usize, a: usize, b: usize },
    Dot { dst: usize, a: usize, b: usize },
    Scalar { op: ScalarOp, dst: usize, a: usize, b: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let v = 0usize..3;
    let s = 0usize..4;
    prop_oneof![
        (v.clone(), s.clone(), v.clone(), s.clone(), v.clone())
            .prop_map(|(dst, alpha, a, beta, b)| Op::Lincomb { dst, alpha, a, beta, b }),
        (v.clone(), v.clone(), v.clone()).prop_map(|(dst, a, b)| Op::EwMul { dst, a, b }),
        (v.clone(), v.clone(), v.clone()).prop_map(|(dst, a, b)| Op::EwMax { dst, a, b }),
        (v.clone(), v.clone(), v.clone()).prop_map(|(dst, a, b)| Op::EwMin { dst, a, b }),
        (s.clone(), v.clone(), v.clone()).prop_map(|(dst, a, b)| Op::Dot { dst, a, b }),
        (
            prop::sample::select(vec![ScalarOp::Add, ScalarOp::Sub, ScalarOp::Mul, ScalarOp::Max]),
            s.clone(),
            s.clone(),
            s
        )
            .prop_map(|(op, dst, a, b)| Op::Scalar { op, dst, a, b }),
    ]
}

impl Ref {
    fn apply(&mut self, op: Op) {
        let n = self.vecs[0].len();
        match op {
            Op::Lincomb { dst, alpha, a, beta, b } => {
                for k in 0..n {
                    let v =
                        self.sregs[alpha] * self.vecs[a][k] + self.sregs[beta] * self.vecs[b][k];
                    self.vecs[dst][k] = v;
                }
            }
            Op::EwMul { dst, a, b } => {
                for k in 0..n {
                    self.vecs[dst][k] = self.vecs[a][k] * self.vecs[b][k];
                }
            }
            Op::EwMax { dst, a, b } => {
                for k in 0..n {
                    self.vecs[dst][k] = self.vecs[a][k].max(self.vecs[b][k]);
                }
            }
            Op::EwMin { dst, a, b } => {
                for k in 0..n {
                    self.vecs[dst][k] = self.vecs[a][k].min(self.vecs[b][k]);
                }
            }
            Op::Dot { dst, a, b } => {
                self.sregs[dst] = (0..n).map(|k| self.vecs[a][k] * self.vecs[b][k]).sum();
            }
            Op::Scalar { op, dst, a, b } => {
                let (x, y) = (self.sregs[a], self.sregs[b]);
                self.sregs[dst] = match op {
                    ScalarOp::Add => x + y,
                    ScalarOp::Sub => x - y,
                    ScalarOp::Mul => x * y,
                    ScalarOp::Div => x / y,
                    ScalarOp::Max => x.max(y),
                };
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn machine_matches_reference_interpreter(
        ops in prop::collection::vec(arb_op(), 1..25),
        init in prop::collection::vec(-4.0f64..4.0, 12),
        sinit in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let n = 4;
        let mut machine = Machine::new(ArchConfig::baseline(4));
        let vids: Vec<_> = (0..3).map(|_| machine.alloc_vec(n)).collect();
        let sids: Vec<_> = (0..4).map(|_| machine.alloc_scalar()).collect();
        let mut reference = Ref {
            vecs: init.chunks(n).map(|c| c.to_vec()).collect(),
            sregs: sinit.clone(),
        };
        for (i, vid) in vids.iter().enumerate() {
            machine.write_vec(*vid, &reference.vecs[i]);
        }
        for (i, sid) in sids.iter().enumerate() {
            machine.write_scalar(*sid, reference.sregs[i]);
        }

        let mut pb = ProgramBuilder::new();
        for &op in &ops {
            let instr = match op {
                Op::Lincomb { dst, alpha, a, beta, b } => Instr::Lincomb {
                    dst: vids[dst], alpha: sids[alpha], a: vids[a], beta: sids[beta], b: vids[b],
                },
                Op::EwMul { dst, a, b } => Instr::EwMul { dst: vids[dst], a: vids[a], b: vids[b] },
                Op::EwMax { dst, a, b } => Instr::EwMax { dst: vids[dst], a: vids[a], b: vids[b] },
                Op::EwMin { dst, a, b } => Instr::EwMin { dst: vids[dst], a: vids[a], b: vids[b] },
                Op::Dot { dst, a, b } => Instr::Dot { dst: sids[dst], a: vids[a], b: vids[b] },
                Op::Scalar { op, dst, a, b } => Instr::Scalar {
                    op, dst: sids[dst], a: sids[a], b: sids[b],
                },
            };
            pb.push(instr);
            reference.apply(op);
        }
        let program = pb.build().expect("no loops");
        machine.run(&program).expect("valid program");

        for (i, vid) in vids.iter().enumerate() {
            let got = machine.read_vec(*vid);
            for k in 0..n {
                prop_assert_eq!(got[k].to_bits(), reference.vecs[i][k].to_bits(),
                    "vec {} elem {}", i, k);
            }
        }
        for (i, sid) in sids.iter().enumerate() {
            prop_assert_eq!(machine.read_scalar(*sid).to_bits(), reference.sregs[i].to_bits(),
                "scalar {}", i);
        }
        prop_assert_eq!(machine.stats().instructions as usize, ops.len());
    }

    #[test]
    fn cycle_counts_are_deterministic(ops in prop::collection::vec(arb_op(), 1..15)) {
        let run = || {
            let mut machine = Machine::new(ArchConfig::baseline(8));
            let vids: Vec<_> = (0..3).map(|_| machine.alloc_vec(8)).collect();
            let sids: Vec<_> = (0..4).map(|_| machine.alloc_scalar()).collect();
            let mut pb = ProgramBuilder::new();
            for &op in &ops {
                pb.push(match op {
                    Op::Lincomb { dst, alpha, a, beta, b } => Instr::Lincomb {
                        dst: vids[dst], alpha: sids[alpha], a: vids[a], beta: sids[beta], b: vids[b],
                    },
                    Op::EwMul { dst, a, b } => Instr::EwMul { dst: vids[dst], a: vids[a], b: vids[b] },
                    Op::EwMax { dst, a, b } => Instr::EwMax { dst: vids[dst], a: vids[a], b: vids[b] },
                    Op::EwMin { dst, a, b } => Instr::EwMin { dst: vids[dst], a: vids[a], b: vids[b] },
                    Op::Dot { dst, a, b } => Instr::Dot { dst: sids[dst], a: vids[a], b: vids[b] },
                    Op::Scalar { op, dst, a, b } => Instr::Scalar { op, dst: sids[dst], a: sids[a], b: sids[b] },
                });
            }
            let program = pb.build().expect("no loops");
            machine.run(&program).expect("valid");
            machine.stats().cycles
        };
        prop_assert_eq!(run(), run());
    }
}
