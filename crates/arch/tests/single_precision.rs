//! Single-precision emulation: the PCG kernel still converges (to f32-level
//! tolerances) when every datapath result is rounded to `f32`, matching the
//! paper's single-precision hardware.

use rsqp_arch::kernels::build_pcg;
use rsqp_arch::{ArchConfig, Machine};
use rsqp_sparse::CsrMatrix;

fn run_pcg(single: bool, eps: f64) -> Vec<f64> {
    let pm = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
    let am = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 0.0]]);
    let atm = am.transpose();
    let config = ArchConfig::baseline(4).with_single_precision(single);
    let mut machine = Machine::new(config);
    let p = machine.add_matrix(&pm);
    let a = machine.add_matrix(&am);
    let at = machine.add_matrix(&atm);
    let k = build_pcg(&mut machine, p, a, at, 2, 2, 500);
    machine.write_vec(k.q, &[1.0, -1.0]);
    machine.write_vec(k.z, &[0.3, 0.4]);
    machine.write_vec(k.y, &[-0.1, 0.2]);
    machine.write_vec(k.rho_vec, &[0.5, 0.25]);
    // Jacobi diag for this instance.
    machine.write_vec(k.minv, &[1.0 / 4.75, 1.0 / 2.5]);
    machine.write_scalar(k.sigma, 1e-6);
    machine.write_scalar(k.eps, eps);
    machine.write_scalar(k.eps_abs_sq, 1e-20);
    machine.run(&k.program).unwrap();
    machine.read_vec(k.x).to_vec()
}

#[test]
fn f32_mode_converges_close_to_f64_solution() {
    let x64 = run_pcg(false, 1e-10);
    let x32 = run_pcg(true, 1e-5);
    for (a, b) in x64.iter().zip(&x32) {
        assert!((a - b).abs() < 1e-4, "f32 {b} vs f64 {a}");
        assert!(b.is_finite());
    }
    // And the f32 results are exactly representable in f32.
    for v in &x32 {
        assert_eq!(*v, *v as f32 as f64);
    }
}

#[test]
fn f32_mode_does_not_change_cycle_counts() {
    // Precision only affects values, never the cycle model.
    let pm = CsrMatrix::identity(8);
    for single in [false, true] {
        let config = ArchConfig::baseline(4).with_single_precision(single);
        let mut machine = Machine::new(config);
        let m = machine.add_matrix(&pm);
        let x = machine.alloc_vec(8);
        let y = machine.alloc_vec(8);
        machine.write_vec(x, &[1.0; 8]);
        let mut pb = rsqp_arch::ProgramBuilder::new();
        pb.push(rsqp_arch::Instr::Duplicate { vec: x, matrix: m });
        pb.push(rsqp_arch::Instr::Spmv { matrix: m, input: x, output: y });
        machine.run(&pb.build().unwrap()).unwrap();
        if single {
            assert!(machine.stats().cycles > 0);
        }
    }
}
