//! High-bandwidth-memory channel model (§3.1).
//!
//! "The sparse matrices P, A and Aᵀ of the problem, represented by the
//! non-zero values and their coordinates, are partitioned across different
//! HBM channels for high throughput parallel access." This module models
//! that partitioning for the U50's HBM2 stack and validates that a chosen
//! datapath width `C` is actually sustainable: streaming `C` values plus
//! `C` indices per cycle needs enough channels.

use rsqp_sparse::CsrMatrix;

/// Bytes per streamed non-zero: an `f32` value plus a 32-bit vector index
/// (the layout the paper's accelerator uses).
pub const BYTES_PER_NNZ: usize = 8;

/// The HBM stack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmModel {
    /// Number of pseudo-channels (U50: 32).
    pub channels: usize,
    /// Sustained bandwidth per channel in bytes per second (U50: ~6.3 GB/s
    /// per pseudo-channel for streaming reads ≈ 201 GB/s aggregate).
    pub channel_bw: f64,
    /// Capacity per channel in bytes (U50: 8 GiB / 32).
    pub channel_capacity: usize,
}

impl HbmModel {
    /// The AMD-Xilinx U50 configuration used in the paper (Table 2).
    pub fn u50() -> Self {
        HbmModel { channels: 32, channel_bw: 6.3e9, channel_capacity: (8usize << 30) / 32 }
    }

    /// Number of channels needed to stream `c` non-zeros per cycle at
    /// `fmax_hz` without stalling.
    pub fn required_channels(&self, c: usize, fmax_hz: f64) -> usize {
        let demand = c as f64 * BYTES_PER_NNZ as f64 * fmax_hz;
        (demand / self.channel_bw).ceil() as usize
    }

    /// Whether width `c` at `fmax_hz` is sustainable on this stack.
    pub fn sustains(&self, c: usize, fmax_hz: f64) -> bool {
        self.required_channels(c, fmax_hz) <= self.channels
    }

    /// Round-robin channel assignment for a matrix's non-zero stream,
    /// chunked by pack rows: returns per-channel byte loads. Balanced loads
    /// mean the stream saturates all assigned channels.
    pub fn partition(&self, matrices: &[&CsrMatrix]) -> Vec<usize> {
        let mut loads = vec![0usize; self.channels];
        let mut ch = 0;
        for m in matrices {
            for row in 0..m.nrows() {
                let bytes = m.row_nnz(row) * BYTES_PER_NNZ;
                loads[ch] += bytes;
                ch = (ch + 1) % self.channels;
            }
        }
        loads
    }

    /// Imbalance of a partition: max load / mean load (1.0 = perfect).
    pub fn imbalance(loads: &[usize]) -> f64 {
        let total: usize = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Whether the matrices fit in the stack.
    pub fn fits(&self, matrices: &[&CsrMatrix]) -> bool {
        let loads = self.partition(matrices);
        loads.iter().all(|&b| b <= self.channel_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u50_sustains_the_papers_design_points() {
        let hbm = HbmModel::u50();
        // C = 64 at 300 MHz: 64 * 8 B * 3e8 = 153.6 GB/s < 201 GB/s. OK.
        assert!(hbm.sustains(64, 300e6));
        // C = 128 at 300 MHz would exceed the stack.
        assert!(!hbm.sustains(128, 300e6));
        assert!(hbm.required_channels(64, 300e6) <= 32);
    }

    #[test]
    fn required_channels_scales_linearly() {
        let hbm = HbmModel::u50();
        let a = hbm.required_channels(16, 300e6);
        let b = hbm.required_channels(32, 300e6);
        assert!(b >= 2 * a - 1);
    }

    #[test]
    fn partition_balances_uniform_matrices() {
        let hbm = HbmModel::u50();
        let m = CsrMatrix::from_diag(&vec![1.0; 640]);
        let loads = hbm.partition(&[&m]);
        assert_eq!(loads.iter().sum::<usize>(), 640 * BYTES_PER_NNZ);
        assert!((HbmModel::imbalance(&loads) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partition_reports_skew() {
        let hbm = HbmModel { channels: 2, channel_bw: 1e9, channel_capacity: 1 << 20 };
        // One heavy row then one light row: alternating assignment skews.
        let m = CsrMatrix::from_triplets(
            2,
            100,
            (0..99)
                .map(|j| (0usize, j, 1.0))
                .chain(std::iter::once((1usize, 0usize, 1.0)))
                .collect::<Vec<_>>(),
        );
        let loads = hbm.partition(&[&m]);
        assert!(HbmModel::imbalance(&loads) > 1.5);
    }

    #[test]
    fn capacity_check() {
        let tiny = HbmModel { channels: 2, channel_bw: 1e9, channel_capacity: 64 };
        let small = CsrMatrix::identity(4);
        assert!(tiny.fits(&[&small]));
        let big = CsrMatrix::from_diag(&vec![1.0; 1000]);
        assert!(!tiny.fits(&[&big]));
    }

    #[test]
    fn empty_partition_is_balanced() {
        let loads = vec![0usize; 4];
        assert_eq!(HbmModel::imbalance(&loads), 1.0);
    }
}
