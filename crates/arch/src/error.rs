use std::error::Error;
use std::fmt;

/// Errors raised by program validation and machine execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A register id is outside the machine's register file.
    BadRegister(String),
    /// Operand vector lengths disagree.
    LengthMismatch {
        /// Instruction description.
        instr: String,
        /// Expected length.
        expected: usize,
        /// Actual length.
        found: usize,
    },
    /// An SpMV read a CVB that does not hold the instruction's input vector
    /// (a missing or stale vector-duplication instruction in the program).
    StaleCvb {
        /// The matrix whose CVB was read.
        matrix: usize,
    },
    /// Loop structure is malformed (LoopEnd without LoopStart, nesting, …).
    MalformedLoop(String),
    /// The hardware loop hit its trip cap without the exit condition firing.
    LoopCapReached {
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::BadRegister(msg) => write!(f, "bad register: {msg}"),
            ArchError::LengthMismatch { instr, expected, found } => {
                write!(f, "length mismatch in {instr}: expected {expected}, found {found}")
            }
            ArchError::StaleCvb { matrix } => write!(
                f,
                "SpMV on matrix {matrix} reads a stale or unloaded CVB (missing Duplicate)"
            ),
            ArchError::MalformedLoop(msg) => write!(f, "malformed loop: {msg}"),
            ArchError::LoopCapReached { cap } => {
                write!(f, "hardware loop reached its trip cap of {cap}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ArchError::StaleCvb { matrix: 2 }.to_string().contains('2'));
        assert!(ArchError::LoopCapReached { cap: 7 }.to_string().contains('7'));
        assert!(ArchError::BadRegister("v9".into()).to_string().contains("v9"));
    }
}
