//! The cycle-level machine.

use rsqp_cvb::{first_fit, AccessMatrix, CvbLayout};
use rsqp_encode::{dp_schedule, greedy_schedule, Schedule, SparsityString};
use rsqp_sparse::CsrMatrix;

use crate::config::{CvbPolicy, SchedulePolicy};
use crate::program::class_of;
use crate::{ArchConfig, ArchError, Instr, MatrixId, Program, SReg, ScalarOp, VecId};

/// Per-instruction-class cycle totals — the machine's answer to "where did
/// the time go", used for the FPGA-side KKT-fraction analysis and the power
/// model's utilization estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// SpMV instruction cycles.
    pub spmv: u64,
    /// Vector-engine instruction cycles (including dot products).
    pub vector: u64,
    /// Vector-duplication cycles.
    pub duplication: u64,
    /// Scalar ALU cycles.
    pub scalar: u64,
    /// HBM transfer cycles.
    pub transfer: u64,
    /// Control (loop) cycles.
    pub control: u64,
}

impl CycleBreakdown {
    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.spmv + self.vector + self.duplication + self.scalar + self.transfer + self.control
    }

    fn add(&mut self, class: &str, cycles: u64) {
        match class {
            "spmv" => self.spmv += cycles,
            "vector" => self.vector += cycles,
            "duplication" => self.duplication += cycles,
            "scalar" => self.scalar += cycles,
            "transfer" => self.transfer += cycles,
            "control" => self.control += cycles,
            other => unreachable!("unknown class {other}"),
        }
    }

    fn since(self, earlier: CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            spmv: self.spmv - earlier.spmv,
            vector: self.vector - earlier.vector,
            duplication: self.duplication - earlier.duplication,
            scalar: self.scalar - earlier.scalar,
            transfer: self.transfer - earlier.transfer,
            control: self.control - earlier.control,
        }
    }
}

/// Execution statistics: what [`Machine::run`] returns for one program
/// execution, and what [`Machine::stats`] accumulates across them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Cycles by instruction class.
    pub breakdown: CycleBreakdown,
    /// Instructions retired.
    pub instructions: u64,
    /// Hardware-loop trips taken.
    pub loop_trips: u64,
    /// Bytes moved over the (simulated) HBM interface by `LoadHbm` /
    /// `StoreHbm` (8 bytes per element).
    pub hbm_bytes: u64,
    /// Bit flips injected by the fault harness (0 unless armed via
    /// [`crate::FaultConfig`]).
    pub faults: u64,
}

impl RunStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// monotone counters — how [`Machine::run`] derives its per-run stats
    /// from the cumulative ones.
    pub fn since(self, earlier: RunStats) -> RunStats {
        RunStats {
            cycles: self.cycles - earlier.cycles,
            breakdown: self.breakdown.since(earlier.breakdown),
            instructions: self.instructions - earlier.instructions,
            loop_trips: self.loop_trips - earlier.loop_trips,
            hbm_bytes: self.hbm_bytes - earlier.hbm_bytes,
            faults: self.faults - earlier.faults,
        }
    }

    /// Folds these stats into a metrics registry under `machine_*`
    /// counters — the bridge from the cycle-level simulator to the shared
    /// observability layer (cycles per class, instructions, loop trips,
    /// HBM traffic, and injected faults).
    pub fn fold_into(&self, registry: &rsqp_obs::MetricsRegistry) {
        registry.counter("machine_cycles").add(self.cycles);
        registry.counter("machine_instructions").add(self.instructions);
        registry.counter("machine_loop_trips").add(self.loop_trips);
        registry.counter("machine_hbm_bytes").add(self.hbm_bytes);
        registry.counter("machine_faults").add(self.faults);
        registry.counter("machine_cycles_spmv").add(self.breakdown.spmv);
        registry.counter("machine_cycles_vector").add(self.breakdown.vector);
        registry.counter("machine_cycles_duplication").add(self.breakdown.duplication);
        registry.counter("machine_cycles_scalar").add(self.breakdown.scalar);
        registry.counter("machine_cycles_transfer").add(self.breakdown.transfer);
        registry.counter("machine_cycles_control").add(self.breakdown.control);
    }
}

/// One matrix resident in (simulated) HBM with its customization artifacts.
#[derive(Debug, Clone)]
struct MatrixUnit {
    csr: CsrMatrix,
    string: SparsityString,
    schedule: Schedule,
    layout: CvbLayout,
    access: AccessMatrix,
    /// Which vector (and write-version) currently sits in this matrix's CVB.
    cvb: Option<(VecId, u64)>,
}

/// The simulated RSQP accelerator.
///
/// Holds the register files, the matrices with their pack schedules and CVB
/// layouts, and executes [`Program`]s functionally while counting cycles.
#[derive(Debug)]
pub struct Machine {
    config: ArchConfig,
    vecs: Vec<Vec<f64>>,
    vec_versions: Vec<u64>,
    sregs: Vec<f64>,
    matrices: Vec<MatrixUnit>,
    stats: RunStats,
    lane_exact: bool,
    /// SplitMix64 state of the fault-injection stream.
    fault_rng: u64,
}

impl Machine {
    /// Creates a machine with the given architecture configuration.
    pub fn new(config: ArchConfig) -> Self {
        let fault_rng = config.fault().map_or(0, |f| f.seed);
        Machine {
            config,
            vecs: Vec::new(),
            vec_versions: Vec::new(),
            sregs: Vec::new(),
            matrices: Vec::new(),
            stats: RunStats::default(),
            lane_exact: false,
            fault_rng,
        }
    }

    /// Enables lane-exact SpMV execution: every SpMV is evaluated through
    /// the scheduled datapath (slot by slot, reading operands through the
    /// compressed-CVB bank translation) instead of the fast CSR kernel.
    /// Slower, used by tests to prove the two paths agree.
    pub fn set_lane_exact(&mut self, on: bool) {
        self.lane_exact = on;
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Registers a matrix: builds its pack schedule (greedy, as in the
    /// paper) and the CVB layout dictated by the configuration's
    /// [`CvbPolicy`] (First-Fit for customized designs, `C` full copies for
    /// the baseline).
    pub fn add_matrix(&mut self, m: &CsrMatrix) -> MatrixId {
        let c = self.config.c();
        let string = SparsityString::encode(m, c);
        let schedule = match self.config.scheduler() {
            SchedulePolicy::Greedy => greedy_schedule(&string, self.config.set()),
            SchedulePolicy::DpOptimal => dp_schedule(&string, self.config.set()),
        };
        let access = AccessMatrix::from_schedule(&schedule, &string, m, self.config.set());
        let layout = match self.config.cvb_policy() {
            CvbPolicy::FirstFit => first_fit(&access),
            CvbPolicy::FullDuplication => CvbLayout::full_duplication(&access),
        };
        self.matrices.push(MatrixUnit {
            csr: m.clone(),
            string,
            schedule,
            layout,
            access,
            cvb: None,
        });
        MatrixId(self.matrices.len() - 1)
    }

    /// Allocates a vector register of length `len`, zero-initialized.
    pub fn alloc_vec(&mut self, len: usize) -> VecId {
        self.vecs.push(vec![0.0; len]);
        self.vec_versions.push(0);
        VecId(self.vecs.len() - 1)
    }

    /// Allocates a scalar register, zero-initialized.
    pub fn alloc_scalar(&mut self) -> SReg {
        self.sregs.push(0.0);
        SReg(self.sregs.len() - 1)
    }

    /// Host write into a vector register (models the CPU filling HBM before
    /// a run; cycle-free — the in-program [`Instr::LoadHbm`] carries the
    /// transfer cost).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn write_vec(&mut self, id: VecId, data: &[f64]) {
        assert_eq!(self.vecs[id.0].len(), data.len(), "vector length mismatch");
        self.vecs[id.0].copy_from_slice(data);
        self.vec_versions[id.0] += 1;
    }

    /// Host read of a vector register.
    pub fn read_vec(&self, id: VecId) -> &[f64] {
        &self.vecs[id.0]
    }

    /// Host write of a scalar register.
    pub fn write_scalar(&mut self, id: SReg, v: f64) {
        self.sregs[id.0] = v;
    }

    /// Host read of a scalar register.
    pub fn read_scalar(&self, id: SReg) -> f64 {
        self.sregs[id.0]
    }

    /// Replaces a registered matrix's numeric values (structure must be
    /// identical). The pack schedule, CVB layout, and cycle model are
    /// untouched — only the HBM-resident values change, which is exactly
    /// what the architecture-reuse story of §1 requires.
    ///
    /// # Panics
    ///
    /// Panics if the sparsity structure differs.
    pub fn update_matrix_values(&mut self, id: MatrixId, m: &CsrMatrix) {
        let unit = &mut self.matrices[id.0];
        assert!(
            rsqp_encode::SparsityString::encode(m, self.config.c()).chars() == unit.string.chars()
                && unit.csr.indptr() == m.indptr()
                && unit.csr.indices() == m.indices(),
            "matrix value update changed the sparsity structure"
        );
        unit.csr = m.clone();
        // Any CVB contents are now stale only if the *vector* changed, not
        // the matrix; matrix values live in HBM, so the CVB stays valid.
    }

    /// Pack schedule of a registered matrix.
    pub fn schedule_of(&self, id: MatrixId) -> &Schedule {
        &self.matrices[id.0].schedule
    }

    /// CVB layout of a registered matrix.
    pub fn layout_of(&self, id: MatrixId) -> &CvbLayout {
        &self.matrices[id.0].layout
    }

    /// Cumulative statistics since the last [`Machine::reset_stats`].
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Clears the cycle counters.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Executes a program to completion and returns the statistics of
    /// **this run alone**. The cumulative [`Machine::stats`] keep
    /// accumulating across runs as before; callers that need per-run
    /// accounting (per-KKT-solve cycle/fault deltas) use the return value
    /// instead of differencing the cumulative counters themselves.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] on operand mismatches, stale CVB reads, or
    /// a loop-trip overflow.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, ArchError> {
        let before = self.stats;
        let mut pc = 0usize;
        let mut trips = 0usize;
        let instrs = program.instrs();
        while pc < instrs.len() {
            let i = &instrs[pc];
            let cycles = self.execute(i)?;
            self.stats.cycles += cycles;
            self.stats.breakdown.add(class_of(i), cycles);
            self.stats.instructions += 1;
            match i {
                Instr::LoopEndIfLess { a, b } => {
                    let exit = self.sregs[a.0] < self.sregs[b.0];
                    if exit {
                        pc += 1;
                    } else {
                        trips += 1;
                        self.stats.loop_trips += 1;
                        if trips >= program.max_trips() {
                            return Err(ArchError::LoopCapReached { cap: program.max_trips() });
                        }
                        let (start, _) = program
                            .loop_bounds()
                            .ok_or_else(|| ArchError::MalformedLoop("no loop bounds".into()))?;
                        pc = start + 1;
                    }
                }
                _ => pc += 1,
            }
        }
        Ok(self.stats.since(before))
    }

    fn execute(&mut self, i: &Instr) -> Result<u64, ArchError> {
        let cost = *self.config.cost();
        match *i {
            Instr::LoopStart => Ok(0),
            Instr::LoopEndIfLess { .. } => Ok(cost.control_latency),
            Instr::SetScalar { dst, value } => {
                self.check_sreg(dst)?;
                self.sregs[dst.0] = value;
                Ok(0)
            }
            Instr::Scalar { op, dst, a, b } => {
                self.check_sreg(dst)?;
                self.check_sreg(a)?;
                self.check_sreg(b)?;
                let (x, y) = (self.sregs[a.0], self.sregs[b.0]);
                self.sregs[dst.0] = match op {
                    ScalarOp::Add => x + y,
                    ScalarOp::Sub => x - y,
                    ScalarOp::Mul => x * y,
                    ScalarOp::Div => x / y,
                    ScalarOp::Max => x.max(y),
                };
                self.round_scalar(dst);
                Ok(cost.scalar_latency)
            }
            Instr::LoadHbm { vec } => {
                self.check_vec(vec)?;
                // An HBM read is where a memory upset becomes visible: the
                // corrupted word lands in the vector buffer silently (no
                // version bump — downstream consumers cannot tell).
                if let Some((idx, bit)) =
                    self.fault_draw(|f| f.hbm_read_flip_prob, self.vecs[vec.0].len())
                {
                    let v = &mut self.vecs[vec.0][idx];
                    *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
                    self.stats.faults += 1;
                }
                self.stats.hbm_bytes += 8 * self.vecs[vec.0].len() as u64;
                Ok(self.config.transfer_cycles(self.vecs[vec.0].len()))
            }
            Instr::StoreHbm { vec } => {
                self.check_vec(vec)?;
                self.stats.hbm_bytes += 8 * self.vecs[vec.0].len() as u64;
                Ok(self.config.transfer_cycles(self.vecs[vec.0].len()))
            }
            Instr::Lincomb { dst, alpha, a, beta, b } => {
                let l = self.binary_lengths("lincomb", dst, a, b)?;
                self.check_sreg(alpha)?;
                self.check_sreg(beta)?;
                let (al, be) = (self.sregs[alpha.0], self.sregs[beta.0]);
                for k in 0..l {
                    let v = al * self.vecs[a.0][k] + be * self.vecs[b.0][k];
                    self.vecs[dst.0][k] = v;
                }
                self.bump(dst);
                Ok(self.config.vector_cycles(l))
            }
            Instr::EwMul { dst, a, b } => {
                let l = self.binary_lengths("ew_mul", dst, a, b)?;
                for k in 0..l {
                    self.vecs[dst.0][k] = self.vecs[a.0][k] * self.vecs[b.0][k];
                }
                self.bump(dst);
                Ok(self.config.vector_cycles(l))
            }
            Instr::EwMax { dst, a, b } => {
                let l = self.binary_lengths("ew_max", dst, a, b)?;
                for k in 0..l {
                    self.vecs[dst.0][k] = self.vecs[a.0][k].max(self.vecs[b.0][k]);
                }
                self.bump(dst);
                Ok(self.config.vector_cycles(l))
            }
            Instr::EwMin { dst, a, b } => {
                let l = self.binary_lengths("ew_min", dst, a, b)?;
                for k in 0..l {
                    self.vecs[dst.0][k] = self.vecs[a.0][k].min(self.vecs[b.0][k]);
                }
                self.bump(dst);
                Ok(self.config.vector_cycles(l))
            }
            Instr::Dot { dst, a, b } => {
                self.check_vec(a)?;
                self.check_vec(b)?;
                self.check_sreg(dst)?;
                let (va, vb) = (&self.vecs[a.0], &self.vecs[b.0]);
                if va.len() != vb.len() {
                    return Err(ArchError::LengthMismatch {
                        instr: "dot".into(),
                        expected: va.len(),
                        found: vb.len(),
                    });
                }
                let l = va.len();
                self.sregs[dst.0] = va.iter().zip(vb).map(|(x, y)| x * y).sum();
                self.round_scalar(dst);
                Ok(self.config.vector_cycles(l) + cost.dot_drain)
            }
            Instr::Duplicate { vec, matrix } => {
                self.check_vec(vec)?;
                self.check_matrix(matrix)?;
                let unit = &self.matrices[matrix.0];
                if self.vecs[vec.0].len() != unit.csr.ncols() {
                    return Err(ArchError::LengthMismatch {
                        instr: "duplicate".into(),
                        expected: unit.csr.ncols(),
                        found: self.vecs[vec.0].len(),
                    });
                }
                let version = self.vec_versions[vec.0];
                let cycles = cost.dup_latency + unit.layout.update_cycles() as u64;
                self.matrices[matrix.0].cvb = Some((vec, version));
                Ok(cycles)
            }
            Instr::Spmv { matrix, input, output } => {
                self.check_matrix(matrix)?;
                self.check_vec(input)?;
                self.check_vec(output)?;
                let unit = &self.matrices[matrix.0];
                match unit.cvb {
                    Some((v, ver)) if v == input && ver == self.vec_versions[input.0] => {}
                    _ => return Err(ArchError::StaleCvb { matrix: matrix.0 }),
                }
                if self.vecs[output.0].len() != unit.csr.nrows() {
                    return Err(ArchError::LengthMismatch {
                        instr: "spmv output".into(),
                        expected: unit.csr.nrows(),
                        found: self.vecs[output.0].len(),
                    });
                }
                let mut result = if self.lane_exact {
                    spmv_via_datapath(unit, self.config.set(), &self.vecs[input.0])
                } else {
                    let mut y = vec![0.0; unit.csr.nrows()];
                    unit.csr.spmv(&self.vecs[input.0], &mut y).expect("lengths checked above");
                    y
                };
                let cycles = cost.spmv_latency + unit.schedule.cycles() as u64;
                // A MAC-tree upset corrupts one freshly reduced output word.
                if let Some((idx, bit)) = self.fault_draw(|f| f.mac_output_flip_prob, result.len())
                {
                    result[idx] = f64::from_bits(result[idx].to_bits() ^ (1u64 << bit));
                    self.stats.faults += 1;
                }
                self.vecs[output.0] = result;
                self.bump(output);
                Ok(cycles)
            }
        }
    }

    /// Decides whether the current instruction suffers a bit flip.
    ///
    /// Returns the (element index, bit position) of the strike, or `None`
    /// when fault injection is disarmed or the dice spare this instruction.
    /// Consumes exactly one stream draw per armed strike site, so fault
    /// patterns are a pure function of `(program, FaultConfig)`.
    fn fault_draw(
        &mut self,
        prob_of: impl Fn(&crate::FaultConfig) -> f64,
        len: usize,
    ) -> Option<(usize, u32)> {
        let fault = self.config.fault()?;
        let prob = prob_of(&fault);
        if prob <= 0.0 || len == 0 {
            return None;
        }
        // Uniform in [0, 1) from the top 53 bits.
        let unit = (self.next_fault_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit >= prob {
            return None;
        }
        let idx = (self.next_fault_u64() % len as u64) as usize;
        let bit = (self.next_fault_u64() % 64) as u32;
        Some((idx, bit))
    }

    /// SplitMix64 step of the fault stream.
    fn next_fault_u64(&mut self) -> u64 {
        self.fault_rng = self.fault_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.fault_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bump(&mut self, id: VecId) {
        if self.config.single_precision() {
            for v in &mut self.vecs[id.0] {
                *v = *v as f32 as f64;
            }
        }
        self.vec_versions[id.0] += 1;
    }

    fn round_scalar(&mut self, id: SReg) {
        if self.config.single_precision() {
            self.sregs[id.0] = self.sregs[id.0] as f32 as f64;
        }
    }

    fn check_vec(&self, id: VecId) -> Result<(), ArchError> {
        if id.0 >= self.vecs.len() {
            return Err(ArchError::BadRegister(format!("vector v{}", id.0)));
        }
        Ok(())
    }

    fn check_sreg(&self, id: SReg) -> Result<(), ArchError> {
        if id.0 >= self.sregs.len() {
            return Err(ArchError::BadRegister(format!("scalar s{}", id.0)));
        }
        Ok(())
    }

    fn check_matrix(&self, id: MatrixId) -> Result<(), ArchError> {
        if id.0 >= self.matrices.len() {
            return Err(ArchError::BadRegister(format!("matrix m{}", id.0)));
        }
        Ok(())
    }

    fn binary_lengths(
        &self,
        name: &str,
        dst: VecId,
        a: VecId,
        b: VecId,
    ) -> Result<usize, ArchError> {
        self.check_vec(dst)?;
        self.check_vec(a)?;
        self.check_vec(b)?;
        let l = self.vecs[dst.0].len();
        for v in [a, b] {
            if self.vecs[v.0].len() != l {
                return Err(ArchError::LengthMismatch {
                    instr: name.into(),
                    expected: l,
                    found: self.vecs[v.0].len(),
                });
            }
        }
        Ok(l)
    }
}

/// Lane-exact SpMV: walks the pack schedule slot by slot, fetching each
/// operand through the CVB bank translation (asserting the translation is
/// sound), multiplying lane-wise, and reducing per slot — the computation
/// the customized MAC tree performs, including the `$`-chunk partial-sum
/// accumulation.
fn spmv_via_datapath(unit: &MatrixUnit, set: &rsqp_encode::StructureSet, x: &[f64]) -> Vec<f64> {
    let banks = unit.layout.bank_contents(&unit.access);
    let mut y = vec![0.0; unit.csr.nrows()];
    // Rows split across packs ($ chunks) accumulate partial sums into y —
    // the acc_complete/FADD path of the paper's Figure 5.
    for pack in unit.schedule.packs() {
        let st = &set.structures()[pack.structure];
        let offsets = st.slot_offsets();
        for (slot, &lane0) in offsets.iter().enumerate().take(pack.len) {
            let src = unit.string.sources()[pack.pos + slot];
            let (cols, vals) = unit.csr.row(src.row);
            let mut acc = 0.0;
            for t in 0..src.count {
                let j = cols[src.offset + t];
                let lane = lane0 + t;
                // Fetch through the CVB index translation.
                let addr =
                    unit.layout.addr_of(j).expect("accessed element must be stored") as usize;
                let served = banks[lane][addr].expect("bank must serve this element");
                assert_eq!(served, j, "CVB translation fetched the wrong element");
                acc += vals[src.offset + t] * x[served];
            }
            y[src.row] += acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn machine4() -> Machine {
        Machine::new(ArchConfig::baseline(4))
    }

    #[test]
    fn vector_ops_compute_and_cost() {
        let mut m = machine4();
        let a = m.alloc_vec(8);
        let b = m.alloc_vec(8);
        let d = m.alloc_vec(8);
        let s1 = m.alloc_scalar();
        let s2 = m.alloc_scalar();
        m.write_vec(a, &[1.0; 8]);
        m.write_vec(b, &[2.0; 8]);
        m.write_scalar(s1, 3.0);
        m.write_scalar(s2, -1.0);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Lincomb { dst: d, alpha: s1, a, beta: s2, b });
        let p = pb.build().unwrap();
        m.run(&p).unwrap();
        assert_eq!(m.read_vec(d), &[1.0; 8]);
        // 8 elements at C=4 -> 2 streaming cycles + latency.
        let lat = default_vector_latency();
        assert_eq!(m.stats().cycles, lat + 2);
        assert_eq!(m.stats().breakdown.vector, lat + 2);
    }

    fn default_vector_latency() -> u64 {
        crate::CostModel::default().vector_latency
    }

    #[test]
    fn dot_product_and_scalar_ops() {
        let mut m = machine4();
        let a = m.alloc_vec(4);
        let b = m.alloc_vec(4);
        let s = m.alloc_scalar();
        let t = m.alloc_scalar();
        let u = m.alloc_scalar();
        m.write_vec(a, &[1.0, 2.0, 3.0, 4.0]);
        m.write_vec(b, &[1.0, 1.0, 1.0, 1.0]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Dot { dst: s, a, b });
        pb.push(Instr::SetScalar { dst: t, value: 2.0 });
        pb.push(Instr::Scalar { op: ScalarOp::Div, dst: u, a: s, b: t });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.read_scalar(s), 10.0);
        assert_eq!(m.read_scalar(u), 5.0);
        assert!(m.stats().breakdown.scalar > 0);
    }

    #[test]
    fn spmv_requires_duplicate_first() {
        let mut m = machine4();
        let mat = m.add_matrix(&CsrMatrix::identity(4));
        let x = m.alloc_vec(4);
        let y = m.alloc_vec(4);
        m.write_vec(x, &[1.0, 2.0, 3.0, 4.0]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Spmv { matrix: mat, input: x, output: y });
        let err = m.run(&pb.build().unwrap());
        assert!(matches!(err, Err(ArchError::StaleCvb { .. })));
    }

    #[test]
    fn spmv_after_duplicate_computes() {
        let mut m = machine4();
        let csr = CsrMatrix::from_dense(&[vec![1.0, 2.0], vec![0.0, 3.0]]);
        let mat = m.add_matrix(&csr);
        let x = m.alloc_vec(2);
        let y = m.alloc_vec(2);
        m.write_vec(x, &[1.0, 1.0]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Duplicate { vec: x, matrix: mat });
        pb.push(Instr::Spmv { matrix: mat, input: x, output: y });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.read_vec(y), &[3.0, 3.0]);
        assert!(m.stats().breakdown.spmv > 0);
        assert!(m.stats().breakdown.duplication > 0);
    }

    #[test]
    fn stale_cvb_detected_after_input_rewrite() {
        let mut m = machine4();
        let mat = m.add_matrix(&CsrMatrix::identity(2));
        let x = m.alloc_vec(2);
        let y = m.alloc_vec(2);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Duplicate { vec: x, matrix: mat });
        pb.push(Instr::Spmv { matrix: mat, input: x, output: y });
        let p = pb.build().unwrap();
        m.write_vec(x, &[1.0, 2.0]);
        m.run(&p).unwrap();
        // Rewriting x invalidates the CVB contents.
        m.write_vec(x, &[3.0, 4.0]);
        let mut pb2 = ProgramBuilder::new();
        pb2.push(Instr::Spmv { matrix: mat, input: x, output: y });
        assert!(matches!(m.run(&pb2.build().unwrap()), Err(ArchError::StaleCvb { .. })));
    }

    #[test]
    fn loop_executes_until_condition() {
        let mut m = machine4();
        let acc = m.alloc_scalar();
        let one = m.alloc_scalar();
        let limit = m.alloc_scalar();
        m.write_scalar(one, 1.0);
        m.write_scalar(limit, 5.5);
        let mut pb = ProgramBuilder::new();
        pb.loop_start();
        pb.push(Instr::Scalar { op: ScalarOp::Add, dst: acc, a: acc, b: one });
        // exit when limit < acc  (i.e. acc > 5.5 -> 6 trips)
        pb.loop_end_if_less(limit, acc);
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.read_scalar(acc), 6.0);
        assert_eq!(m.stats().loop_trips, 5);
    }

    #[test]
    fn loop_cap_errors() {
        let mut m = machine4();
        let a = m.alloc_scalar();
        let b = m.alloc_scalar();
        m.write_scalar(a, 1.0); // never < b = 0
        let mut pb = ProgramBuilder::new();
        pb.loop_start();
        pb.push(Instr::SetScalar { dst: b, value: 0.0 });
        pb.loop_end_if_less(a, b);
        pb.max_trips(3);
        assert!(matches!(m.run(&pb.build().unwrap()), Err(ArchError::LoopCapReached { cap: 3 })));
    }

    #[test]
    fn length_mismatches_are_reported() {
        let mut m = machine4();
        let a = m.alloc_vec(4);
        let b = m.alloc_vec(3);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::EwMul { dst: a, a, b });
        assert!(matches!(m.run(&pb.build().unwrap()), Err(ArchError::LengthMismatch { .. })));
    }

    #[test]
    fn projection_ops_compute_clamp() {
        let mut m = machine4();
        let x = m.alloc_vec(4);
        let lo = m.alloc_vec(4);
        let hi = m.alloc_vec(4);
        m.write_vec(x, &[-5.0, 0.5, 5.0, 2.0]);
        m.write_vec(lo, &[0.0; 4]);
        m.write_vec(hi, &[1.0; 4]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::EwMax { dst: x, a: x, b: lo });
        pb.push(Instr::EwMin { dst: x, a: x, b: hi });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.read_vec(x), &[0.0, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn transfer_instructions_cost_cycles() {
        let mut m = machine4();
        let x = m.alloc_vec(16);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: x });
        pb.push(Instr::StoreHbm { vec: x });
        m.run(&pb.build().unwrap()).unwrap();
        let per = crate::CostModel::default().transfer_latency + 4;
        assert_eq!(m.stats().breakdown.transfer, 2 * per);
    }

    fn faulty_machine(c: usize, fault: crate::FaultConfig) -> Machine {
        Machine::new(ArchConfig::baseline(c).with_fault_injection(Some(fault)))
    }

    #[test]
    fn armed_hbm_faults_corrupt_loads_and_are_counted() {
        let fault = crate::FaultConfig::new(7).with_hbm_read_flips(1.0);
        let mut m = faulty_machine(4, fault);
        let x = m.alloc_vec(8);
        m.write_vec(x, &[1.0; 8]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: x });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.stats().faults, 1);
        assert_ne!(m.read_vec(x), &[1.0; 8], "flip left the vector untouched");
    }

    #[test]
    fn store_and_unarmed_sites_never_fault() {
        // MAC probability 0 with HBM armed: stores and SpMVs stay clean.
        let fault = crate::FaultConfig::new(7).with_hbm_read_flips(1.0);
        let mut m = faulty_machine(4, fault);
        let x = m.alloc_vec(8);
        m.write_vec(x, &[1.0; 8]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::StoreHbm { vec: x });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.stats().faults, 0);
        assert_eq!(m.read_vec(x), &[1.0; 8]);
    }

    #[test]
    fn mac_faults_corrupt_spmv_outputs() {
        let fault = crate::FaultConfig::new(3).with_mac_output_flips(1.0);
        let mut m = faulty_machine(4, fault);
        let mat = m.add_matrix(&CsrMatrix::identity(4));
        let x = m.alloc_vec(4);
        let y = m.alloc_vec(4);
        m.write_vec(x, &[1.0, 2.0, 3.0, 4.0]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Duplicate { vec: x, matrix: mat });
        pb.push(Instr::Spmv { matrix: mat, input: x, output: y });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.stats().faults, 1);
        assert_ne!(m.read_vec(y), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fault_streams_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let fault =
                crate::FaultConfig::new(seed).with_hbm_read_flips(0.5).with_mac_output_flips(0.5);
            let mut m = faulty_machine(4, fault);
            let mat = m.add_matrix(&CsrMatrix::identity(8));
            let x = m.alloc_vec(8);
            let y = m.alloc_vec(8);
            m.write_vec(x, &[1.0; 8]);
            let mut pb = ProgramBuilder::new();
            for _ in 0..16 {
                pb.push(Instr::LoadHbm { vec: x });
                pb.push(Instr::Duplicate { vec: x, matrix: mat });
                pb.push(Instr::Spmv { matrix: mat, input: x, output: y });
            }
            let p = pb.build().unwrap();
            m.run(&p).unwrap();
            (m.stats().faults, m.read_vec(x).to_vec(), m.read_vec(y).to_vec())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn disarmed_machine_reports_zero_faults() {
        let mut m = machine4();
        let x = m.alloc_vec(8);
        m.write_vec(x, &[2.0; 8]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: x });
        m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(m.stats().faults, 0);
        assert_eq!(m.read_vec(x), &[2.0; 8]);
    }

    #[test]
    fn run_stats_are_per_run_not_cumulative() {
        // Regression: `run` used to return `()` and callers differenced the
        // cumulative counters by hand — and the fault count was easy to
        // misread as per-run when it never reset between runs.
        let fault = crate::FaultConfig::new(7).with_hbm_read_flips(1.0);
        let mut m = faulty_machine(4, fault);
        let x = m.alloc_vec(8);
        m.write_vec(x, &[1.0; 8]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: x });
        let p = pb.build().unwrap();
        let first = m.run(&p).unwrap();
        let second = m.run(&p).unwrap();
        assert_eq!(first.faults, 1);
        assert_eq!(second.faults, 1, "second run's stats must not include the first run's fault");
        assert_eq!(first.instructions, 1);
        assert_eq!(second.instructions, 1);
        assert_eq!(first.hbm_bytes, 64);
        assert_eq!(second.hbm_bytes, 64);
        assert_eq!(first.cycles, second.cycles);
        // The cumulative view still accumulates (perf models rely on it).
        assert_eq!(m.stats().faults, 2);
        assert_eq!(m.stats().hbm_bytes, 128);
        assert_eq!(m.stats().since(first), second, "cumulative = sum of the per-run deltas");
    }

    #[test]
    fn hbm_traffic_is_counted_in_bytes() {
        let mut m = machine4();
        let x = m.alloc_vec(16);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: x });
        pb.push(Instr::StoreHbm { vec: x });
        let stats = m.run(&pb.build().unwrap()).unwrap();
        assert_eq!(stats.hbm_bytes, 2 * 16 * 8);
    }

    #[test]
    fn run_stats_fold_into_a_registry() {
        let mut m = machine4();
        let x = m.alloc_vec(8);
        m.write_vec(x, &[1.0; 8]);
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: x });
        pb.push(Instr::StoreHbm { vec: x });
        let stats = m.run(&pb.build().unwrap()).unwrap();
        let registry = rsqp_obs::MetricsRegistry::new();
        stats.fold_into(&registry);
        stats.fold_into(&registry); // folding accumulates
        let snap = registry.snapshot();
        assert_eq!(snap.counter("machine_cycles"), 2 * stats.cycles);
        assert_eq!(snap.counter("machine_hbm_bytes"), 2 * stats.hbm_bytes);
        assert_eq!(snap.counter("machine_instructions"), 4);
        assert_eq!(snap.counter("machine_faults"), 0);
        assert_eq!(snap.counter("machine_cycles_transfer"), 2 * stats.breakdown.transfer);
    }

    #[test]
    fn bad_registers_error() {
        let mut m = machine4();
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::LoadHbm { vec: VecId(9) });
        assert!(matches!(m.run(&pb.build().unwrap()), Err(ArchError::BadRegister(_))));
    }
}
