//! The RSQP instruction set (Table 1 of the paper).

/// Vector-register identifier (a region of the VB, one logical vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecId(pub(crate) usize);

/// Scalar-register identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SReg(pub(crate) usize);

/// Matrix identifier (one SpMV operand resident in HBM, with its pack
/// schedule and CVB layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixId(pub(crate) usize);

impl VecId {
    /// Raw index (for display/debug).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index. Intended for ROM decoding and test
    /// harnesses; the machine validates ids at execution time and reports
    /// [`crate::ArchError::BadRegister`] for out-of-range values.
    pub fn from_raw(index: usize) -> Self {
        VecId(index)
    }
}

impl SReg {
    /// Raw index (for display/debug).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index. Intended for ROM decoding and test
    /// harnesses; the machine validates ids at execution time and reports
    /// [`crate::ArchError::BadRegister`] for out-of-range values.
    pub fn from_raw(index: usize) -> Self {
        SReg(index)
    }
}

impl MatrixId {
    /// Raw index (for display/debug).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index. Intended for ROM decoding and test
    /// harnesses; the machine validates ids at execution time and reports
    /// [`crate::ArchError::BadRegister`] for out-of-range values.
    pub fn from_raw(index: usize) -> Self {
        MatrixId(index)
    }
}

/// Scalar ALU operations ("scalar arithmetic" row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarOp {
    /// `dst = a + b`
    Add,
    /// `dst = a - b`
    Sub,
    /// `dst = a * b`
    Mul,
    /// `dst = a / b`
    Div,
    /// `dst = max(a, b)`
    Max,
}

/// One RSQP instruction.
///
/// The mapping to Table 1:
///
/// | Table 1 class | Variants |
/// |---|---|
/// | Control | [`Instr::LoopStart`], [`Instr::LoopEndIfLess`] |
/// | Scalar arithmetic | [`Instr::Scalar`], [`Instr::SetScalar`] |
/// | Data transfer | [`Instr::LoadHbm`], [`Instr::StoreHbm`] |
/// | Vector operations | [`Instr::Lincomb`], [`Instr::EwMul`], [`Instr::EwMax`], [`Instr::EwMin`], [`Instr::Dot`] |
/// | Vector duplication | [`Instr::Duplicate`] |
/// | SpMV | [`Instr::Spmv`] |
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Marks the top of the (single) hardware loop.
    LoopStart,
    /// Bottom of the loop: exit when `sregs[a] < sregs[b]`, otherwise jump
    /// back to [`Instr::LoopStart`]. ("Exit the algorithm loop if residual
    /// is less than threshold".)
    LoopEndIfLess {
        /// Residual-like scalar.
        a: SReg,
        /// Threshold scalar.
        b: SReg,
    },
    /// `sregs[dst] = op(sregs[a], sregs[b])`.
    Scalar {
        /// Operation.
        op: ScalarOp,
        /// Destination scalar.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
    },
    /// `sregs[dst] = value` (an immediate; free in hardware, folded into
    /// the instruction word).
    SetScalar {
        /// Destination scalar.
        dst: SReg,
        /// Immediate value.
        value: f64,
    },
    /// Streams a vector from HBM into a VB (host → accelerator transfer).
    LoadHbm {
        /// Destination vector.
        vec: VecId,
    },
    /// Streams a vector from a VB back to HBM.
    StoreHbm {
        /// Source vector.
        vec: VecId,
    },
    /// `vecs[dst] = sregs[alpha]·vecs[a] + sregs[beta]·vecs[b]` — the
    /// "linear combination of two vectors" vector-engine op.
    Lincomb {
        /// Destination vector.
        dst: VecId,
        /// Scale of `a`.
        alpha: SReg,
        /// First operand.
        a: VecId,
        /// Scale of `b`.
        beta: SReg,
        /// Second operand.
        b: VecId,
    },
    /// Element-wise product `dst = a ∘ b`.
    EwMul {
        /// Destination vector.
        dst: VecId,
        /// First operand.
        a: VecId,
        /// Second operand.
        b: VecId,
    },
    /// Element-wise maximum `dst = max(a, b)` (used by the projection Π).
    EwMax {
        /// Destination vector.
        dst: VecId,
        /// First operand.
        a: VecId,
        /// Second operand.
        b: VecId,
    },
    /// Element-wise minimum `dst = min(a, b)`.
    EwMin {
        /// Destination vector.
        dst: VecId,
        /// First operand.
        a: VecId,
        /// Second operand.
        b: VecId,
    },
    /// Dot product `sregs[dst] = vecs[a]ᵀ·vecs[b]`.
    Dot {
        /// Destination scalar.
        dst: SReg,
        /// First operand.
        a: VecId,
        /// Second operand.
        b: VecId,
    },
    /// Writes `vec` into the CVB feeding `matrix` (the vector-duplication
    /// instruction; costs one cycle per compressed CVB address).
    Duplicate {
        /// Vector to duplicate.
        vec: VecId,
        /// Target matrix whose CVB is loaded.
        matrix: MatrixId,
    },
    /// `vecs[output] = matrix · vecs[input]`; `input` must be resident in
    /// the matrix's CVB (enforced by the machine).
    Spmv {
        /// The matrix operand.
        matrix: MatrixId,
        /// Input vector (must match the last [`Instr::Duplicate`]).
        input: VecId,
        /// Output vector.
        output: VecId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_expose_indices() {
        assert_eq!(VecId(3).index(), 3);
        assert_eq!(SReg(1).index(), 1);
        assert_eq!(MatrixId(0).index(), 0);
    }

    #[test]
    fn instructions_are_copy_and_comparable() {
        let i = Instr::SetScalar { dst: SReg(0), value: 1.5 };
        let j = i;
        assert_eq!(i, j);
    }
}
