//! HLS code generation analog (Figures 4–6 of the paper).
//!
//! RSQP emits problem-specific High-Level-Synthesis C++ for the alignment
//! and routing logic between the MAC tree and the vector buffers. We cannot
//! run Vitis, but the *generation* step is pure string templating driven by
//! the structure set, so we reproduce it faithfully: the output of
//! [`alignment_switch`] matches the shape of the paper's
//! `align_acc_cnt_switch.h` (Figure 4 generates it, Figure 5 includes it).

use rsqp_encode::StructureSet;

/// Generates the `align_acc_cnt_switch.h` routing snippet for a structure
/// set: a nested switch over the per-cycle output count (`acc_cnt`) and the
/// current alignment pointer, rotating variable-length MAC-tree outputs
/// into the fixed `C`-wide vector-buffer lanes.
pub fn alignment_switch(set: &StructureSet) -> String {
    let c = set.alphabet().c();
    // Distinct per-cycle output counts across the structures.
    let mut counts: Vec<usize> = set.structures().iter().map(|s| s.num_slots()).collect();
    counts.sort_unstable();
    counts.dedup();
    let acc_pack_width = counts.iter().copied().max().unwrap_or(1);

    let mut out = String::new();
    if counts == [1] {
        out.push_str("align_out[0] << acc_pack.data[0];\n");
        return out;
    }
    out.push_str("switch (acc_cnt) {\n");
    for &case_width in &counts {
        out.push_str(&format!("case {case_width}:\n"));
        out.push_str("\tswitch (align_ptr) {\n");
        for i in 0..acc_pack_width {
            out.push_str(&format!("\tcase {i}:\n"));
            for j in 0..case_width {
                out.push_str(&format!(
                    "\t\talign_out[{}] << acc_pack.data[{}];\n",
                    (j + i) % acc_pack_width,
                    j
                ));
            }
            out.push_str("\t\tbreak;\n");
        }
        out.push_str("\t}\n\tbreak;\n");
    }
    out.push_str("}\nalign_ptr += acc_cnt;\n");
    out.push_str(&format!("// generated for {} (C = {c})\n", set));
    out
}

/// Generates the enclosing `spmv_align` HLS function (the paper's Figure 5)
/// with the snippet inlined.
pub fn spmv_align_function(set: &StructureSet) -> String {
    let snippet = alignment_switch(set)
        .lines()
        .map(|l| format!("        {l}"))
        .collect::<Vec<_>>()
        .join("\n");
    let mut f = String::new();
    f.push_str("void spmv_align(int align_cnt,\n");
    f.push_str("                data_stream align_out[ACC_PACK_NUM],\n");
    f.push_str("                cnt_pack_stream &acc_cnt_in,\n");
    f.push_str("                data_stream &acc_complete_in,\n");
    f.push_str("                spmv_pack_stream &spmv_pack_in)\n");
    f.push_str("{\n");
    f.push_str("    ap_uint<ALIGN_PTR_BITWIDTH> align_ptr = 0;\n");
    f.push_str("align_loop:\n");
    f.push_str("    for (int loc = 0; loc < align_cnt; loc++)\n");
    f.push_str("    {\n");
    f.push_str("#pragma HLS pipeline II = 1\n");
    f.push_str("        u16_t acc_cnt = acc_cnt_in.read();\n");
    f.push_str("        spmv_pack_t acc_pack;\n");
    f.push_str("        if (acc_cnt == CNT_AS_FADD_FLAG) {\n");
    f.push_str("            acc_pack.data[0] = acc_complete_in.read();\n");
    f.push_str("            acc_cnt = 1;\n");
    f.push_str("        } else {\n");
    f.push_str("            acc_pack = spmv_pack_in.read();\n");
    f.push_str("        }\n");
    f.push_str(&snippet);
    f.push_str("\n    }\n}\n");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_encode::Alphabet;

    #[test]
    fn baseline_emits_single_line() {
        let set = StructureSet::baseline(Alphabet::new(16));
        let code = alignment_switch(&set);
        assert_eq!(code, "align_out[0] << acc_pack.data[0];\n");
    }

    #[test]
    fn customized_set_emits_switch_cases() {
        let set = StructureSet::parse("4d1f", Alphabet::new(32));
        let code = alignment_switch(&set);
        assert!(code.contains("switch (acc_cnt)"));
        assert!(code.contains("case 4:"));
        assert!(code.contains("case 1:"));
        assert!(code.contains("align_ptr += acc_cnt;"));
        // Rotation: with pack width 4, case 4 at ptr 1 routes data[3] to
        // out[(3+1)%4] = out[0].
        assert!(code.contains("align_out[0] << acc_pack.data[3];"));
    }

    #[test]
    fn function_wrapper_includes_fadd_path() {
        let set = StructureSet::parse("16a1e", Alphabet::new(16));
        let f = spmv_align_function(&set);
        assert!(f.contains("CNT_AS_FADD_FLAG"));
        assert!(f.contains("#pragma HLS pipeline II = 1"));
        assert!(f.contains("switch (acc_cnt)"));
    }

    #[test]
    fn output_grows_with_structure_variety() {
        let small = alignment_switch(&StructureSet::parse("2b1c", Alphabet::new(4)));
        let big = alignment_switch(&StructureSet::parse("16a8b4c2d1e", Alphabet::new(16)));
        assert!(big.len() > small.len());
    }
}
