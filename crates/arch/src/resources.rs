//! FPGA resource and clock-frequency models, calibrated against the
//! synthesis results the paper reports in Table 3.
//!
//! The models are regressions over the 11 published design points, not a
//! synthesis flow; `DESIGN.md` documents the substitution. What matters for
//! the reproduction is the *trend* Table 3 demonstrates: more structures and
//! wider datapaths raise throughput per cycle but grow FF/LUT roughly
//! linearly in the number of dedicated adder-tree outputs, and large
//! many-output structures (e.g. `64a`) depress the achievable clock through
//! routing congestion.

use rsqp_encode::StructureSet;

/// Estimated FPGA resource usage of one architecture instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Fixed-point DSP blocks (3 per single-precision FLOP unit; 5·C total,
    /// matching Table 3's 80/160/320 at C = 16/32/64).
    pub dsp: usize,
    /// Flip-flops.
    pub ff: usize,
    /// Look-up tables.
    pub lut: usize,
    /// Achievable clock frequency in MHz.
    pub fmax_mhz: f64,
}

/// The calibrated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceModel;

impl ResourceModel {
    /// Device f_max ceiling (MHz) — the paper's designs top out at 300 MHz.
    pub const FMAX_CEILING: f64 = 300.0;

    /// Estimates resources and f_max for a structure set.
    pub fn estimate(&self, set: &StructureSet) -> ResourceEstimate {
        let c = set.alphabet().c();
        let outputs = set.total_outputs();
        let max_slots = set.structures().iter().map(|s| s.num_slots()).max().unwrap_or(1);

        let dsp = 5 * c;
        // FF: base grows sublinearly-per-lane with C (12218 at C=16 →
        // ~41 000 at C=64), plus ~300 per extra adder-tree output.
        let ff_base = 12218.0 * (c as f64 / 16.0).powf(0.88);
        let ff = (ff_base + 300.0 * (outputs.saturating_sub(1)) as f64).round() as usize;
        // LUT: base 8556 at C=16 with a flatter growth, plus ~270 per
        // extra output.
        let lut_base = 8556.0 * (c as f64 / 16.0).powf(0.68);
        let lut = (lut_base + 270.0 * (outputs.saturating_sub(1)) as f64).round() as usize;
        // f_max: routing pressure is driven by the widest structure's output
        // count times the lane fan (√C); calibrated so 64{64a4e1g} lands
        // near the observed 121 MHz and small sets stay at the 300 MHz cap.
        let pressure = max_slots as f64 * (c as f64).sqrt() / 346.0;
        let fmax_mhz = (Self::FMAX_CEILING / (1.0 + pressure)).min(Self::FMAX_CEILING);
        ResourceEstimate { dsp, ff, lut, fmax_mhz }
    }

    /// Throughput of one SpMV in operations per microsecond given a cycle
    /// count — the "SpMV/µs" column of Table 3.
    pub fn spmv_per_us(&self, set: &StructureSet, cycles_per_spmv: u64) -> f64 {
        if cycles_per_spmv == 0 {
            return 0.0;
        }
        let est = self.estimate(set);
        est.fmax_mhz / cycles_per_spmv as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_encode::Alphabet;

    fn set(notation: &str, c: usize) -> StructureSet {
        StructureSet::parse(notation, Alphabet::new(c))
    }

    #[test]
    fn dsp_matches_table3_exactly() {
        let m = ResourceModel;
        assert_eq!(m.estimate(&set("1e", 16)).dsp, 80);
        assert_eq!(m.estimate(&set("4d1f", 32)).dsp, 160);
        assert_eq!(m.estimate(&set("4e1g", 64)).dsp, 320);
    }

    #[test]
    fn ff_lut_within_25_percent_of_table3() {
        let m = ResourceModel;
        // (notation, C, FF, LUT) from Table 3.
        let rows = [
            ("1e", 16, 12218, 8556),
            ("16a1e", 16, 17190, 12502),
            ("32a4d1f", 32, 32441, 23648),
            ("4d1f", 32, 22958, 13880),
            ("64a4e1g", 64, 60202, 50405),
            ("4e1g", 64, 42562, 23099),
            ("8d4e1g", 64, 44403, 24245),
        ];
        for (nota, c, ff, lut) in rows {
            let est = m.estimate(&set(nota, c));
            let ff_err = (est.ff as f64 - ff as f64).abs() / ff as f64;
            let lut_err = (est.lut as f64 - lut as f64).abs() / lut as f64;
            assert!(ff_err < 0.25, "{nota}: FF {} vs {} ({ff_err:.2})", est.ff, ff);
            assert!(lut_err < 0.40, "{nota}: LUT {} vs {} ({lut_err:.2})", est.lut, lut);
        }
    }

    #[test]
    fn fmax_reproduces_table3_ordering() {
        let m = ResourceModel;
        let f = |n: &str, c: usize| m.estimate(&set(n, c)).fmax_mhz;
        // Small sets hit the ceiling.
        assert!(f("1e", 16) > 250.0);
        assert!(f("4d1f", 32) > 240.0);
        // Big all-'a' structures are routing-bound, in order.
        let f16a = f("16a1e", 16);
        let f32a = f("32a4d1f", 32);
        let f64a = f("64a4e1g", 64);
        assert!(f16a > f32a && f32a > f64a);
        // Within ±30% of the published values.
        assert!((f32a - 173.0).abs() / 173.0 < 0.30, "{f32a}");
        assert!((f64a - 121.0).abs() / 121.0 < 0.30, "{f64a}");
    }

    #[test]
    fn spmv_throughput_scales_with_fewer_cycles() {
        let m = ResourceModel;
        let s = set("4e1g", 64);
        assert!(m.spmv_per_us(&s, 1000) > m.spmv_per_us(&s, 2000));
        assert_eq!(m.spmv_per_us(&s, 0), 0.0);
    }
}
