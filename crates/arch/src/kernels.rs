//! Canned instruction sequences: the PCG solve of Algorithm 2 and the cycle
//! cost of Algorithm 1's outer vector updates.
//!
//! The PCG kernel is the program the RSQP accelerator spends >95 % of its
//! time in. It computes, entirely on the machine,
//!
//! ```text
//! b  = σx − q + Aᵀ(ρ∘z − y)            (right-hand side of Eq. 3)
//! x  = PCG(K, b, x₀ = x)                (Algorithm 2, Jacobi precond.)
//! z̃ = A x
//! ```
//!
//! with `K·v` evaluated incrementally as `P·v + σ·v + Aᵀ(ρ∘(A·v))`, never
//! forming `AᵀA` (§2.2). Degenerate denominators (an exact warm start gives
//! `δ = pᵀKp = 0`) are guarded with a `max(·, tiny)` — the hardware
//! equivalent of a saturating divider.

use crate::{Instr, Machine, MatrixId, Program, ProgramBuilder, SReg, ScalarOp, VecId};

/// Register map and program of the on-accelerator PCG solve.
#[derive(Debug, Clone)]
pub struct PcgKernel {
    /// The compiled program.
    pub program: Program,
    /// In/out: warm-start and solution vector (length n).
    pub x: VecId,
    /// Input: current slack iterate `z` (length m).
    pub z: VecId,
    /// Input: current dual iterate `y` (length m).
    pub y: VecId,
    /// Input: linear cost `q` (length n).
    pub q: VecId,
    /// Input: per-constraint ρ vector (length m).
    pub rho_vec: VecId,
    /// Input: inverse Jacobi diagonal `M⁻¹` (length n).
    pub minv: VecId,
    /// Output: `z̃ = A·x` (length m).
    pub ztilde: VecId,
    /// Host-set scalar: σ.
    pub sigma: SReg,
    /// Host-set scalar: relative CG tolerance ε.
    pub eps: SReg,
    /// Host-set scalar: squared absolute tolerance floor.
    pub eps_abs_sq: SReg,
}

/// Builds the PCG kernel on `machine` for matrices `p` (n×n), `a` (m×n) and
/// `at` (n×m) already registered with the machine.
///
/// `max_iter` caps the hardware loop.
///
/// # Panics
///
/// Panics if the builder produces a malformed program (a bug, not a user
/// error).
pub fn build_pcg(
    machine: &mut Machine,
    p: MatrixId,
    a: MatrixId,
    at: MatrixId,
    n: usize,
    m: usize,
    max_iter: usize,
) -> PcgKernel {
    // Vector registers.
    let x = machine.alloc_vec(n);
    let z = machine.alloc_vec(m);
    let y = machine.alloc_vec(m);
    let q = machine.alloc_vec(n);
    let rho_vec = machine.alloc_vec(m);
    let minv = machine.alloc_vec(n);
    let ztilde = machine.alloc_vec(m);
    let b = machine.alloc_vec(n);
    let r = machine.alloc_vec(n);
    let d = machine.alloc_vec(n);
    let pv = machine.alloc_vec(n);
    let kp = machine.alloc_vec(n);
    let px = machine.alloc_vec(n);
    let am = machine.alloc_vec(m);

    // Scalar registers.
    let sigma = machine.alloc_scalar();
    let eps = machine.alloc_scalar();
    let eps_abs_sq = machine.alloc_scalar();
    let one = machine.alloc_scalar();
    let neg_one = machine.alloc_scalar();
    let zero = machine.alloc_scalar();
    let tiny = machine.alloc_scalar();
    let lambda = machine.alloc_scalar();
    let mu = machine.alloc_scalar();
    let delta = machine.alloc_scalar();
    let delta_new = machine.alloc_scalar();
    let pkp = machine.alloc_scalar();
    let res2 = machine.alloc_scalar();
    let normb2 = machine.alloc_scalar();
    let thr = machine.alloc_scalar();
    let eps2 = machine.alloc_scalar();
    let guard = machine.alloc_scalar();

    let mut pb = ProgramBuilder::new();
    pb.max_trips(max_iter.max(1));
    // Constants.
    pb.push(Instr::SetScalar { dst: one, value: 1.0 });
    pb.push(Instr::SetScalar { dst: neg_one, value: -1.0 });
    pb.push(Instr::SetScalar { dst: zero, value: 0.0 });
    pb.push(Instr::SetScalar { dst: tiny, value: 1e-300 });

    // b = σx − q + Aᵀ(ρ∘z − y)
    pb.push(Instr::EwMul { dst: am, a: rho_vec, b: z });
    pb.push(Instr::Lincomb { dst: am, alpha: one, a: am, beta: neg_one, b: y });
    pb.push(Instr::Duplicate { vec: am, matrix: at });
    pb.push(Instr::Spmv { matrix: at, input: am, output: b });
    pb.push(Instr::Lincomb { dst: b, alpha: sigma, a: x, beta: one, b });
    pb.push(Instr::Lincomb { dst: b, alpha: neg_one, a: q, beta: one, b });

    // K·x -> kp  (initial residual).
    emit_kapply(&mut pb, p, a, at, x, kp, px, am, rho_vec, sigma, one);
    // r = kp − b ; d = M⁻¹∘r ; p = −d
    pb.push(Instr::Lincomb { dst: r, alpha: one, a: kp, beta: neg_one, b });
    pb.push(Instr::EwMul { dst: d, a: minv, b: r });
    pb.push(Instr::Lincomb { dst: pv, alpha: neg_one, a: d, beta: zero, b: d });
    pb.push(Instr::Dot { dst: delta, a: r, b: d });
    pb.push(Instr::Dot { dst: normb2, a: b, b });
    pb.push(Instr::Scalar { op: ScalarOp::Mul, dst: eps2, a: eps, b: eps });
    pb.push(Instr::Scalar { op: ScalarOp::Mul, dst: thr, a: eps2, b: normb2 });
    pb.push(Instr::Scalar { op: ScalarOp::Max, dst: thr, a: thr, b: eps_abs_sq });
    pb.push(Instr::Dot { dst: res2, a: r, b: r });

    // Main loop (Algorithm 2, lines 3–9).
    pb.loop_start();
    emit_kapply(&mut pb, p, a, at, pv, kp, px, am, rho_vec, sigma, one);
    pb.push(Instr::Dot { dst: pkp, a: pv, b: kp });
    pb.push(Instr::Scalar { op: ScalarOp::Max, dst: guard, a: pkp, b: tiny });
    pb.push(Instr::Scalar { op: ScalarOp::Div, dst: lambda, a: delta, b: guard });
    pb.push(Instr::Lincomb { dst: x, alpha: lambda, a: pv, beta: one, b: x });
    pb.push(Instr::Lincomb { dst: r, alpha: lambda, a: kp, beta: one, b: r });
    pb.push(Instr::Dot { dst: res2, a: r, b: r });
    pb.push(Instr::EwMul { dst: d, a: minv, b: r });
    pb.push(Instr::Dot { dst: delta_new, a: r, b: d });
    pb.push(Instr::Scalar { op: ScalarOp::Max, dst: guard, a: delta, b: tiny });
    pb.push(Instr::Scalar { op: ScalarOp::Div, dst: mu, a: delta_new, b: guard });
    pb.push(Instr::Scalar { op: ScalarOp::Mul, dst: delta, a: delta_new, b: one });
    pb.push(Instr::Lincomb { dst: pv, alpha: mu, a: pv, beta: neg_one, b: d });
    pb.loop_end_if_less(res2, thr);

    // z̃ = A·x.
    pb.push(Instr::Duplicate { vec: x, matrix: a });
    pb.push(Instr::Spmv { matrix: a, input: x, output: ztilde });

    let program = pb.build().expect("PCG kernel builder is loop-balanced");
    PcgKernel { program, x, z, y, q, rho_vec, minv, ztilde, sigma, eps, eps_abs_sq }
}

/// Emits `out = P·v + σ·v + Aᵀ(ρ∘(A·v))`.
#[allow(clippy::too_many_arguments)]
fn emit_kapply(
    pb: &mut ProgramBuilder,
    p: MatrixId,
    a: MatrixId,
    at: MatrixId,
    v: VecId,
    out: VecId,
    px: VecId,
    am: VecId,
    rho_vec: VecId,
    sigma: SReg,
    one: SReg,
) {
    pb.push(Instr::Duplicate { vec: v, matrix: p });
    pb.push(Instr::Spmv { matrix: p, input: v, output: px });
    pb.push(Instr::Duplicate { vec: v, matrix: a });
    pb.push(Instr::Spmv { matrix: a, input: v, output: am });
    pb.push(Instr::EwMul { dst: am, a: rho_vec, b: am });
    pb.push(Instr::Duplicate { vec: am, matrix: at });
    pb.push(Instr::Spmv { matrix: at, input: am, output: out });
    pb.push(Instr::Lincomb { dst: out, alpha: one, a: px, beta: one, b: out });
    pb.push(Instr::Lincomb { dst: out, alpha: sigma, a: v, beta: one, b: out });
}

/// Analytic cycle cost of one ADMM outer update (Algorithm 1 lines 4–7 plus
/// the periodic residual check amortized in): the x-relaxation (length n),
/// the z-candidate/projection/dual updates (4 vector ops of length m), and
/// the projection's two element-wise clamps.
///
/// These instructions have data-independent cycle counts (`⌈L/C⌉` streaming
/// plus fixed latency), so an analytic sum is exactly what the machine
/// would report; the solver-side backend uses this to extend the measured
/// PCG cycles to full-iteration cycles.
pub fn admm_outer_cycles(config: &crate::ArchConfig, n: usize, m: usize) -> u64 {
    // x update: 1 lincomb over n.
    let x_ops = config.vector_cycles(n);
    // z candidate (lincomb), + rho_inv*y (ewmul+lincomb), clamp (max+min),
    // dual update (lincomb + ewmul): 7 vector ops over m.
    let z_ops = 7 * config.vector_cycles(m);
    x_ops + z_ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchConfig;
    use rsqp_sparse::CsrMatrix;

    fn setup(c: usize) -> (Machine, PcgKernel, CsrMatrix, CsrMatrix) {
        let pm = CsrMatrix::from_dense(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
        let am = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 0.0]]);
        let atm = am.transpose();
        let mut machine = Machine::new(ArchConfig::baseline(c));
        let p = machine.add_matrix(&pm);
        let a = machine.add_matrix(&am);
        let at = machine.add_matrix(&atm);
        let k = build_pcg(&mut machine, p, a, at, 2, 2, 500);
        (machine, k, pm, am)
    }

    #[test]
    fn pcg_kernel_matches_reference_solver() {
        let (mut machine, k, pm, am) = setup(4);
        let sigma = 1e-6;
        let rho = vec![0.5, 0.25];
        let xv = vec![0.1, -0.2];
        let zv = vec![0.3, 0.4];
        let yv = vec![-0.1, 0.2];
        let qv = vec![1.0, -1.0];
        // Jacobi inverse diag.
        let mut diag = pm.diagonal();
        for (j, dj) in diag.iter_mut().enumerate() {
            *dj += sigma;
            for i in 0..2 {
                let v = am.get(i, j);
                *dj += rho[i] * v * v;
            }
        }
        let minv: Vec<f64> = diag.iter().map(|v| 1.0 / v).collect();

        machine.write_vec(k.x, &xv);
        machine.write_vec(k.z, &zv);
        machine.write_vec(k.y, &yv);
        machine.write_vec(k.q, &qv);
        machine.write_vec(k.rho_vec, &rho);
        machine.write_vec(k.minv, &minv);
        machine.write_scalar(k.sigma, sigma);
        machine.write_scalar(k.eps, 1e-10);
        machine.write_scalar(k.eps_abs_sq, 1e-28);
        machine.run(&k.program).unwrap();

        // Reference: dense solve of (P + σI + Aᵀdiag(ρ)A)x = rhs.
        let kk =
            [[4.0 + sigma + rho[0] + rho[1], 1.0 + rho[0]], [1.0 + rho[0], 2.0 + sigma + rho[0]]];
        let rhs = [
            sigma * xv[0] - qv[0] + (rho[0] * zv[0] - yv[0]) + (rho[1] * zv[1] - yv[1]),
            sigma * xv[1] - qv[1] + (rho[0] * zv[0] - yv[0]),
        ];
        let det = kk[0][0] * kk[1][1] - kk[0][1] * kk[1][0];
        let want = [
            (kk[1][1] * rhs[0] - kk[0][1] * rhs[1]) / det,
            (-kk[1][0] * rhs[0] + kk[0][0] * rhs[1]) / det,
        ];
        let got = machine.read_vec(k.x);
        for i in 0..2 {
            assert!((got[i] - want[i]).abs() < 1e-7, "x[{i}] {} vs {}", got[i], want[i]);
        }
        // ztilde = A x.
        let zt = machine.read_vec(k.ztilde);
        assert!((zt[0] - (got[0] + got[1])).abs() < 1e-9);
        assert!((zt[1] - got[0]).abs() < 1e-9);
        // Cycle accounting happened.
        let stats = machine.stats();
        assert!(stats.cycles > 0);
        assert!(stats.breakdown.spmv > 0);
        assert!(stats.breakdown.duplication > 0);
        assert!(stats.loop_trips >= 1);
    }

    #[test]
    fn exact_warm_start_is_numerically_safe() {
        let (mut machine, k, _pm, _am) = setup(4);
        // All-zero inputs: b = 0, x0 = 0 -> residual 0; guarded divisions
        // must not produce NaN.
        machine.write_vec(k.rho_vec, &[0.5, 0.5]);
        machine.write_vec(k.minv, &[1.0, 1.0]);
        machine.write_scalar(k.sigma, 1e-6);
        machine.write_scalar(k.eps, 1e-8);
        machine.write_scalar(k.eps_abs_sq, 1e-24);
        machine.run(&k.program).unwrap();
        let x = machine.read_vec(k.x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(x.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn cycle_count_scales_with_iterations() {
        let (mut machine, k, _pm, _am) = setup(4);
        machine.write_vec(k.q, &[1.0, -1.0]);
        machine.write_vec(k.rho_vec, &[0.5, 0.25]);
        machine.write_vec(k.minv, &[0.2, 0.3]);
        machine.write_scalar(k.sigma, 1e-6);
        machine.write_scalar(k.eps_abs_sq, 1e-28);
        // Loose tolerance -> fewer trips -> fewer cycles.
        machine.write_scalar(k.eps, 1e-2);
        machine.run(&k.program).unwrap();
        let loose = machine.stats();
        machine.reset_stats();
        machine.write_vec(k.x, &[0.0, 0.0]);
        machine.write_scalar(k.eps, 1e-12);
        machine.run(&k.program).unwrap();
        let tight = machine.stats();
        assert!(tight.loop_trips >= loose.loop_trips);
        assert!(tight.cycles >= loose.cycles);
    }

    #[test]
    fn outer_cycles_scale_with_dims_and_width() {
        let c16 = ArchConfig::baseline(16);
        let c64 = ArchConfig::baseline(64);
        assert!(admm_outer_cycles(&c16, 1000, 2000) > admm_outer_cycles(&c64, 1000, 2000));
        assert!(admm_outer_cycles(&c16, 1000, 2000) > admm_outer_cycles(&c16, 100, 200));
    }
}

/// Register map and program of the on-accelerator ADMM outer update
/// (Algorithm 1, lines 5–7): given `x̃`, `z̃` from the PCG kernel and the
/// current iterates, computes
///
/// ```text
/// x ← α·x̃ + (1−α)·x
/// w ← α·z̃ + (1−α)·z + ρ⁻¹∘y          (the projection candidate)
/// z ← min(max(w, l), u)                (Π, via EwMax/EwMin)
/// y ← ρ∘(w − z)
/// ```
///
/// The instruction mix matches Table 1's usage column for A1-4,5,6,7.
#[derive(Debug, Clone)]
pub struct AdmmUpdateKernel {
    /// The compiled program.
    pub program: Program,
    /// In/out: primal iterate `x` (length n).
    pub x: VecId,
    /// Input: `x̃` from the KKT solve (length n).
    pub xtilde: VecId,
    /// In/out: slack iterate `z` (length m).
    pub z: VecId,
    /// Input: `z̃` from the KKT solve (length m).
    pub ztilde: VecId,
    /// In/out: dual iterate `y` (length m).
    pub y: VecId,
    /// Input: per-constraint ρ (length m).
    pub rho_vec: VecId,
    /// Input: per-constraint `1/ρ` (length m).
    pub rho_inv_vec: VecId,
    /// Input: lower bounds (length m).
    pub l: VecId,
    /// Input: upper bounds (length m).
    pub u: VecId,
    /// Host-set scalar: relaxation α.
    pub alpha: SReg,
}

/// Builds the ADMM outer-update kernel.
pub fn build_admm_update(machine: &mut Machine, n: usize, m: usize) -> AdmmUpdateKernel {
    let x = machine.alloc_vec(n);
    let xtilde = machine.alloc_vec(n);
    let z = machine.alloc_vec(m);
    let ztilde = machine.alloc_vec(m);
    let y = machine.alloc_vec(m);
    let rho_vec = machine.alloc_vec(m);
    let rho_inv_vec = machine.alloc_vec(m);
    let l = machine.alloc_vec(m);
    let u = machine.alloc_vec(m);
    let w = machine.alloc_vec(m);
    let alpha = machine.alloc_scalar();
    let one = machine.alloc_scalar();
    let one_minus_alpha = machine.alloc_scalar();
    let neg_one = machine.alloc_scalar();

    let mut pb = ProgramBuilder::new();
    pb.push(Instr::SetScalar { dst: one, value: 1.0 });
    pb.push(Instr::SetScalar { dst: neg_one, value: -1.0 });
    pb.push(Instr::Scalar { op: ScalarOp::Sub, dst: one_minus_alpha, a: one, b: alpha });
    // x = alpha*xtilde + (1-alpha)*x
    pb.push(Instr::Lincomb { dst: x, alpha, a: xtilde, beta: one_minus_alpha, b: x });
    // w = alpha*ztilde + (1-alpha)*z
    pb.push(Instr::Lincomb { dst: w, alpha, a: ztilde, beta: one_minus_alpha, b: z });
    // w += rho_inv .* y   (EwMul into z-slot? need temp: reuse ztilde? ztilde
    // is an input we may not clobber mid-iteration on hardware either; use z
    // as scratch *after* reading it: z = rho_inv .* y; w = w + z.)
    pb.push(Instr::EwMul { dst: z, a: rho_inv_vec, b: y });
    pb.push(Instr::Lincomb { dst: w, alpha: one, a: w, beta: one, b: z });
    // z = clamp(w, l, u)
    pb.push(Instr::EwMax { dst: z, a: w, b: l });
    pb.push(Instr::EwMin { dst: z, a: z, b: u });
    // y = rho .* (w - z)
    pb.push(Instr::Lincomb { dst: w, alpha: one, a: w, beta: neg_one, b: z });
    pb.push(Instr::EwMul { dst: y, a: rho_vec, b: w });

    let program = pb.build().expect("straight-line program");
    AdmmUpdateKernel { program, x, xtilde, z, ztilde, y, rho_vec, rho_inv_vec, l, u, alpha }
}

#[cfg(test)]
mod admm_kernel_tests {
    use super::*;
    use crate::ArchConfig;

    #[test]
    fn admm_update_matches_reference_formulas() {
        let (n, m) = (3, 4);
        let mut machine = Machine::new(ArchConfig::baseline(4));
        let k = build_admm_update(&mut machine, n, m);
        let alpha = 1.6;
        let xv = vec![0.1, -0.2, 0.3];
        let xt = vec![1.0, 2.0, -1.0];
        let zv = vec![0.5, -0.5, 2.0, 0.0];
        let zt = vec![1.5, -2.0, 0.5, 3.0];
        let yv = vec![0.2, -0.1, 0.0, 0.4];
        let rho = vec![0.5, 1.0, 2.0, 4.0];
        let rho_inv: Vec<f64> = rho.iter().map(|r| 1.0 / r).collect();
        let lv = vec![-1.0, -1.0, -1.0, -1.0];
        let uv = vec![1.0, 1.0, 1.0, 1.0];

        machine.write_vec(k.x, &xv);
        machine.write_vec(k.xtilde, &xt);
        machine.write_vec(k.z, &zv);
        machine.write_vec(k.ztilde, &zt);
        machine.write_vec(k.y, &yv);
        machine.write_vec(k.rho_vec, &rho);
        machine.write_vec(k.rho_inv_vec, &rho_inv);
        machine.write_vec(k.l, &lv);
        machine.write_vec(k.u, &uv);
        machine.write_scalar(k.alpha, alpha);
        machine.run(&k.program).unwrap();

        for i in 0..n {
            let want = alpha * xt[i] + (1.0 - alpha) * xv[i];
            assert!((machine.read_vec(k.x)[i] - want).abs() < 1e-12);
        }
        for i in 0..m {
            let w = alpha * zt[i] + (1.0 - alpha) * zv[i] + rho_inv[i] * yv[i];
            let z_new = w.max(lv[i]).min(uv[i]);
            let y_new = rho[i] * (w - z_new);
            assert!((machine.read_vec(k.z)[i] - z_new).abs() < 1e-12, "z[{i}]");
            assert!((machine.read_vec(k.y)[i] - y_new).abs() < 1e-12, "y[{i}]");
        }
    }

    #[test]
    fn admm_update_cycles_match_analytic_model() {
        let (n, m) = (64, 128);
        let config = ArchConfig::baseline(16);
        let mut machine = Machine::new(config.clone());
        let k = build_admm_update(&mut machine, n, m);
        machine.write_scalar(k.alpha, 1.6);
        machine.run(&k.program).unwrap();
        let measured = machine.stats().cycles;
        // The analytic estimate counts 1 n-op + 7 m-ops; the kernel runs
        // exactly that many vector instructions plus 1 scalar op.
        let analytic = admm_outer_cycles(&config, n, m) + config.cost().scalar_latency;
        assert_eq!(measured, analytic, "analytic model must match the kernel");
    }
}
